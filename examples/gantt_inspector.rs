//! Gantt inspector: watch the HTM reason about a placement.
//!
//! ```sh
//! cargo run --release --example gantt_inspector
//! ```
//!
//! Recreates §2.3's "usefulness of the HTM" example — two equally *loaded*
//! servers that differ only in remaining work — then shows the per-server
//! Gantt charts, the what-if predictions for a new task on each server, and
//! the decision each heuristic takes. This is the paper's Fig. 1 machinery
//! exposed as an API walk-through.

use casgrid::core::heuristics::SchedView;
use casgrid::prelude::*;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn main() {
    // Two identical servers solving one problem type; durations chosen as
    // in §2.3: tasks of 100 s and 200 s mapped at t=0, decision at t=80.
    let mut costs = CostTable::new(2);
    let p100 = costs.add_uniform_problem(
        Problem::new("p-100s", 0.0, 0.0, 0.0),
        PhaseCosts::new(0.0, 100.0, 0.0),
    );
    let p200 = costs.add_uniform_problem(
        Problem::new("p-200s", 0.0, 0.0, 0.0),
        PhaseCosts::new(0.0, 200.0, 0.0),
    );

    let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
    htm.enable_recording(ServerId(0));
    htm.enable_recording(ServerId(1));
    htm.commit(
        t(0.0),
        ServerId(0),
        &TaskInstance::new(TaskId(0), p100, t(0.0)),
    );
    htm.commit(
        t(0.0),
        ServerId(1),
        &TaskInstance::new(TaskId(1), p200, t(0.0)),
    );

    // At t=80 a client submits a new 100 s task.
    let new_task = TaskInstance::new(TaskId(2), p100, t(80.0));
    println!("At t=80, both servers run exactly one task — a load monitor sees no");
    println!("difference. The HTM knows the remaining durations are 20 s vs 120 s:\n");
    for server in [ServerId(0), ServerId(1)] {
        let p = htm.predict(t(80.0), server, &new_task).unwrap();
        println!(
            "  what-if on {server}: completion f = {:>5.1} s, sum perturbation = {:>5.1} s, MSF objective = {:>5.1}",
            p.completion.as_secs(),
            p.sum_perturbation(),
            p.msf_objective()
        );
    }

    // Ask each heuristic for its pick.
    println!("\ndecisions:");
    let loads: Vec<_> = (0..2u32)
        .map(|i| casgrid::platform::LoadReport::initial(ServerId(i)))
        .collect();
    for kind in [
        HeuristicKind::Hmct,
        HeuristicKind::Mp,
        HeuristicKind::Msf,
        HeuristicKind::Mct,
    ] {
        let mut rng = RngStream::derive(1, StreamKind::TieBreak);
        let mut view = SchedView::new(
            t(80.0),
            new_task,
            costs.solvers(new_task.problem),
            &costs,
            &loads,
            &mut htm,
            &mut rng,
        );
        let pick = kind.build().select(&mut view).unwrap();
        println!("  {:>5} → {pick}", kind.name());
    }

    // Commit to S0 (every HTM heuristic's choice) and draw the charts.
    htm.commit(t(80.0), ServerId(0), &new_task);
    println!("\nGantt chart of S0 after committing the new task:\n");
    let mut trace = htm.trace(ServerId(0)).clone();
    trace.drain();
    println!("{}", Gantt::from_trace(&trace).render_ascii(72));
    println!("Gantt chart of S1 (untouched):\n");
    let mut trace = htm.trace(ServerId(1)).clone();
    trace.drain();
    println!("{}", Gantt::from_trace(&trace).render_ascii(72));
}

//! Where does each heuristic win? A compact arrival-rate exploration.
//!
//! ```sh
//! cargo run --release --example rate_explorer
//! ```
//!
//! §5.3's qualitative analysis — MP is sub-optimal at low rates but strong
//! at high rates; MSF tracks the best policy everywhere — as a single
//! self-contained program over a synthetic heterogeneous platform (so it
//! also demonstrates `SyntheticPlatform` for studies beyond the paper's
//! testbed).

use casgrid::prelude::*;
use casgrid::workload::synthetic::SyntheticPlatform;

fn main() {
    // A 6-server platform, 6× speed spread — harsher heterogeneity than
    // the paper's testbed.
    let platform = SyntheticPlatform {
        n_servers: 6,
        heterogeneity: 6.0,
        n_problems: 4,
        base_cost: 12.0,
        cost_spread: 4.0,
        comm_fraction: 0.01,
        mem_fraction: 0.0,
    };
    let costs = platform.cost_table(1);
    let servers = platform.servers(1);

    let kinds = [
        HeuristicKind::Mct,
        HeuristicKind::Hmct,
        HeuristicKind::Mp,
        HeuristicKind::Msf,
    ];
    let mut table = Table::new(
        "Winner (lowest sum-flow) and MSF's gap to it, by arrival gap",
        vec![
            "winner".into(),
            "MSF vs winner".into(),
            "MP vs winner".into(),
        ],
    );
    for gap in [3.0, 5.0, 8.0, 12.0, 20.0, 40.0] {
        let tasks = MetataskSpec {
            n_tasks: 400,
            mean_gap: gap,
            gaps: GapDistribution::Exponential,
            n_problems: 4,
        }
        .generate(123);
        let mut sums = Vec::new();
        for kind in kinds {
            let cfg = ExperimentConfig::paper(kind, 55);
            let recs = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
            sums.push((kind, MetricSet::compute(&recs).sumflow));
        }
        let (winner, best) = sums
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(k, v)| (k, v))
            .unwrap();
        let msf = sums
            .iter()
            .find(|(k, _)| *k == HeuristicKind::Msf)
            .unwrap()
            .1;
        let mp = sums
            .iter()
            .find(|(k, _)| *k == HeuristicKind::Mp)
            .unwrap()
            .1;
        table.push_row(
            format!("gap {gap:>4.0} s"),
            vec![
                winner.name().to_string(),
                format!("+{:.1}%", 100.0 * (msf - best) / best),
                format!("+{:.1}%", 100.0 * (mp - best) / best),
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "\nMSF stays within a few percent of the per-rate winner across the whole\n\
         range — the paper's argument for deploying it when the agent cannot\n\
         know the future request rate."
    );
}

//! Quickstart: schedule one metatask four ways and compare the metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's waste-cpu platform (Table 4), generates a 200-task
//! metatask with Poisson-process arrivals, runs it under MCT, HMCT, MP and
//! MSF, and prints the §3 metrics side by side.

use casgrid::prelude::*;

fn main() {
    // The paper's second testbed: valette, spinnaker, cabestan, artimon.
    let costs = casgrid::workload::wastecpu::cost_table();
    let servers = casgrid::workload::testbed::set2_servers();

    // 200 independent tasks; mean inter-arrival 15 s (the "high rate").
    let spec = MetataskSpec {
        n_tasks: 200,
        ..MetataskSpec::paper(15.0)
    };
    let tasks = spec.generate(2026);
    println!(
        "metatask: {} tasks over ~{:.0} s, {} problem types\n",
        tasks.len(),
        tasks.last().unwrap().arrival.as_secs(),
        spec.n_problems
    );

    let mut table = Table::new(
        "Quickstart: one metatask under four heuristics",
        HeuristicKind::PAPER
            .iter()
            .map(|k| k.name().into())
            .collect(),
    );
    let mut all_runs = Vec::new();
    for kind in HeuristicKind::PAPER {
        let cfg = ExperimentConfig::paper(kind, 7);
        let records = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        all_runs.push((kind, records));
    }
    let baseline = all_runs[0].1.clone(); // MCT

    for metric in MetricSet::PAPER_ROWS {
        let row: Vec<f64> = all_runs
            .iter()
            .map(|(_, recs)| MetricSet::compute(recs).by_name(metric).unwrap())
            .collect();
        table.push_row_f64(metric, &row, 1);
    }
    let sooner: Vec<f64> = all_runs
        .iter()
        .map(|(k, recs)| {
            if *k == HeuristicKind::Mct {
                f64::NAN
            } else {
                finish_sooner_count(recs, &baseline) as f64
            }
        })
        .collect();
    table.push_row(
        "finish sooner than MCT",
        sooner
            .iter()
            .map(|v| {
                if v.is_nan() {
                    "-".into()
                } else {
                    format!("{v:.0}")
                }
            })
            .collect(),
    );
    println!("{}", table.render());

    println!(
        "\nReading: MSF should show the lowest sum-flow (its objective), MP the\n\
         lowest max-stretch (it shields running tasks), and a large majority of\n\
         tasks finishing sooner than under MCT — the paper's §5.3 conclusions."
    );
}

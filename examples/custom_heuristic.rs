//! Extending the library: plug a custom heuristic into the full engine.
//!
//! ```sh
//! cargo run --release --example custom_heuristic
//! ```
//!
//! Implements **MMP** (Minimum *Maximum* Perturbation) — a variant the
//! paper does not study: instead of minimising the *sum* of perturbations
//! (MP), minimise the single worst delay inflicted on any running task,
//! tie-breaking on completion date. Then compares it against the paper's
//! four on a common metatask.
//!
//! Because [`Heuristic`] is a public trait and the engine takes any
//! implementor, no library changes are needed — but the stock engine is
//! driven by [`HeuristicKind`]; for custom policies we drive the middleware
//! world's own pieces through the public [`SchedView`] the same way the
//! bundled heuristics do, using the simulation-free harness below (an HTM
//! replay over a generated metatask).

use casgrid::core::heuristics::SchedView;
use casgrid::prelude::*;

/// Minimum Maximum Perturbation: protect the worst-hit task.
#[derive(Debug, Default)]
struct Mmp;

impl Heuristic for Mmp {
    fn name(&self) -> &'static str {
        "MMP"
    }
    fn uses_htm(&self) -> bool {
        true
    }
    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        // Lexicographic (max perturbation, completion) argmin.
        let candidates = view.candidates.clone();
        let mut best: Option<(ServerId, f64, f64)> = None;
        for &s in candidates.iter() {
            let Some(p) = view.predict(s) else { continue };
            let key = (p.max_perturbation(), p.completion.as_secs());
            best = match best {
                None => Some((s, key.0, key.1)),
                Some((_, bm, bc)) if key.0 < bm - 1e-9 || (key.0 <= bm + 1e-9 && key.1 < bc) => {
                    Some((s, key.0, key.1))
                }
                other => other,
            };
        }
        best.map(|(s, _, _)| s)
    }
}

/// Replays a metatask against an HTM with a pluggable heuristic and
/// returns the simulated records — an idealised (noise-free) arena that is
/// exactly the agent's model, useful for rapid heuristic prototyping
/// before a full middleware run.
fn replay(
    heuristic: &mut dyn Heuristic,
    costs: &CostTable,
    tasks: &[TaskInstance],
) -> Vec<(TaskId, f64, f64)> {
    let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
    let loads: Vec<_> = (0..costs.n_servers() as u32)
        .map(|i| casgrid::platform::LoadReport::initial(ServerId(i)))
        .collect();
    let mut rng = RngStream::derive(99, StreamKind::TieBreak);
    let mut placements = Vec::new();
    for task in tasks {
        let mut view = SchedView::new(
            task.arrival,
            *task,
            costs.solvers(task.problem),
            costs,
            &loads,
            &mut htm,
            &mut rng,
        );
        let server = heuristic.select(&mut view).expect("candidates exist");
        htm.commit(task.arrival, server, task);
        placements.push((task.id, server));
    }
    let completions = htm.simulated_completions();
    tasks
        .iter()
        .map(|t| {
            let f = completions[&t.id].as_secs();
            (t.id, t.arrival.as_secs(), f)
        })
        .collect()
}

fn main() {
    let costs = casgrid::workload::wastecpu::cost_table();
    let tasks = MetataskSpec {
        n_tasks: 300,
        ..MetataskSpec::paper(15.0)
    }
    .generate(77);

    println!("HTM-replay comparison on a 300-task waste-cpu metatask (high rate):\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "policy", "sum-flow", "max-flow", "makespan"
    );
    let mut policies: Vec<Box<dyn Heuristic>> = vec![
        HeuristicKind::Hmct.build(),
        HeuristicKind::Mp.build(),
        HeuristicKind::Msf.build(),
        Box::new(Mmp),
    ];
    for p in &mut policies {
        let rows = replay(p.as_mut(), &costs, &tasks);
        let sumflow: f64 = rows.iter().map(|(_, a, f)| f - a).sum();
        let maxflow = rows.iter().map(|(_, a, f)| f - a).fold(0.0, f64::max);
        let makespan = rows.iter().map(|(_, _, f)| *f).fold(0.0, f64::max);
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>12.0}",
            p.name(),
            sumflow,
            maxflow,
            makespan
        );
    }
    println!(
        "\nMMP greedily protects the single worst-hit task at each decision, but\n\
         that per-decision guarantee does not compound into better aggregate\n\
         metrics — it lands near HMCT on sum-flow and can even inflate max-flow.\n\
         Negative results are cheap here: one trait impl and a replay, no\n\
         testbed. That is the workflow the HTM enables."
    );
}

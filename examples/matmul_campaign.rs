//! A full experiment campaign: the paper's matmul workload across both
//! arrival rates, with parallel replications and summary statistics.
//!
//! ```sh
//! cargo run --release --example matmul_campaign
//! ```
//!
//! This is the template for running your own studies: pick workload and
//! servers, generate metatasks, fan replications out over threads, and
//! aggregate with confidence intervals.
//!
//! Scaling up? On farms past ~1k servers, federate the agent with
//! `cfg.with_shards(Sharding::Auto)` (the `--shards auto` of the
//! `casgrid` CLI): the farm partitions across per-shard engines behind a
//! deterministic router, so no decision structure scales with the farm.
//! `Sharding::Federated { shards: 1 }` is proven bit-identical to the
//! default single agent — results never depend on how you shard a
//! 4-server paper testbed like this one, which is why this example
//! leaves the default alone.

use casgrid::prelude::*;

fn main() {
    let costs = casgrid::workload::matmul::cost_table();
    let servers = casgrid::workload::testbed::set1_servers();

    for (label, gap) in [("low rate (20 s)", 20.0), ("high rate (15 s)", 15.0)] {
        println!("=== matmul metatask, {label} ===\n");
        // Three replications of the same metatask with different noise
        // seeds, as the paper repeats each experiment.
        let tasks = MetataskSpec::paper(gap).generate(0xFEED);
        let workloads: Vec<_> = (0..4).map(|_| tasks.clone()).collect();
        let mut table = Table::new(
            format!(
                "matmul {label}: mean ± 95% CI over {} replications",
                workloads.len()
            ),
            HeuristicKind::PAPER
                .iter()
                .map(|k| k.name().into())
                .collect(),
        );
        let results = run_heuristic_matrix(
            ExperimentConfig::paper(HeuristicKind::Mct, 0xACE),
            &HeuristicKind::PAPER,
            &costs,
            &servers,
            &workloads,
        );
        for metric in MetricSet::PAPER_ROWS {
            let cells: Vec<String> = results
                .iter()
                .map(|r| {
                    let vals: Vec<f64> = r
                        .metrics()
                        .iter()
                        .filter_map(|m| m.by_name(metric))
                        .collect();
                    Summary::of(&vals).unwrap().display_mean_ci()
                })
                .collect();
            table.push_row(metric, cells);
        }
        println!("{}", table.render());

        // Memory behaviour: how hard did servers get hit?
        let failures: Vec<usize> = results
            .iter()
            .map(|r| {
                r.runs
                    .iter()
                    .flat_map(|run| run.iter())
                    .filter(|rec| !rec.is_completed())
                    .count()
            })
            .collect();
        println!(
            "failed tasks per heuristic (all replications): {:?}\n",
            HeuristicKind::PAPER
                .iter()
                .zip(&failures)
                .map(|(k, f)| format!("{}={f}", k.name()))
                .collect::<Vec<_>>()
        );
    }
    println!(
        "At the high rate the memory model bites: heuristics that pile work on\n\
         the fast (memory-limited) servers lose tasks, reproducing Table 6's\n\
         completion-count story."
    );
}

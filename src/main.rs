//! `casgrid` — command-line front end.
//!
//! ```text
//! casgrid run     --workload wastecpu --heuristic MSF --gap 15 --tasks 500
//! casgrid run     --workload wastecpu --burst 8 --selector topk:2
//! casgrid compare --workload matmul --gap 20 --reps 3 --format csv
//! casgrid list
//! ```
//!
//! `run` executes one experiment and prints the §3 metrics; `compare` runs
//! every paper heuristic (plus any extras via `--heuristics`) on the same
//! metatask and prints the paper-style table including the
//! finish-sooner-than-MCT row. `--burst R` swaps the homogeneous-Poisson
//! metatask for the thinning-sampled inhomogeneous process
//! ([`BurstArrivals`]) with peak/trough ratio `R` at the same mean rate;
//! `--selector` picks the stage-1 candidate-selection backend
//! (`exhaustive`, `topk[:K]`, `adaptive[:MIN:MAX]`). Argument parsing is
//! hand-rolled to keep the dependency set to the sanctioned list.

use casgrid::metrics::prof;
use casgrid::platform::RankingsBackend;
use casgrid::prelude::*;
use casgrid::workload::synthetic::BurstArrivals;
use std::process::ExitCode;
use std::time::Instant;

/// Parses a numeric flag value into a one-line error naming the flag and
/// the accepted form — never the raw `ParseIntError`/`ParseFloatError`
/// text.
fn num_flag<T: std::str::FromStr>(flag: &str, value: &str, expected: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: expected {expected}, got {value:?}"))
}

#[derive(Debug, Clone)]
struct Args {
    workload: String,
    heuristic: String,
    heuristics: Option<Vec<String>>,
    gap: f64,
    /// Peak/trough ratio of the bursty arrival process; 1 (default) keeps
    /// the paper's homogeneous-Poisson metatask.
    burst: f64,
    /// Burst period, seconds.
    burst_period: f64,
    selector: String,
    shards: String,
    skyline: String,
    index_scoring: String,
    rankings: String,
    stage2: String,
    /// Print the always-on phase profiler's per-phase wall-time table
    /// after the run. Replications fan out over the pool as usual: each
    /// one flushes its spans into the process-wide ledger and the table
    /// renders the merged cross-thread view.
    profile: bool,
    /// Mean time between failures per server, seconds; infinite (the
    /// default) freezes the farm.
    mtbf: f64,
    /// Mean time to repair per server, seconds.
    mttr: f64,
    /// Seed of the fault schedule — independent of the workload seed, so
    /// the same schedule can replay against different campaigns.
    churn_seed: u64,
    /// Admission backpressure: "off" (default) or "CAP:BUF:DEADLINE"
    /// (concurrency gate, buffer bound, buffered-wait deadline in
    /// seconds or "inf").
    admission: String,
    tasks: usize,
    seed: u64,
    reps: usize,
    noise: f64,
    format: String,
    memory: bool,
    sync: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: "wastecpu".into(),
            heuristic: "MSF".into(),
            heuristics: None,
            gap: 20.0,
            burst: 1.0,
            burst_period: 1800.0,
            selector: "exhaustive".into(),
            shards: "single".into(),
            skyline: "on".into(),
            index_scoring: "work".into(),
            rankings: "flat".into(),
            stage2: "fast".into(),
            profile: false,
            mtbf: f64::INFINITY,
            mttr: 60.0,
            churn_seed: 0,
            admission: "off".into(),
            tasks: 500,
            seed: 1,
            reps: 1,
            noise: 0.03,
            format: "table".into(),
            memory: true,
            sync: false,
        }
    }
}

fn usage() -> &'static str {
    "casgrid — dynamic heuristics in the client-agent-server model\n\
     \n\
     USAGE:\n\
     casgrid run     [OPTS]   run one experiment, print metrics\n\
     casgrid compare [OPTS]   run several heuristics on the same metatask\n\
     casgrid list             list available heuristics and workloads\n\
     \n\
     OPTIONS:\n\
     --workload matmul|wastecpu|synthetic:N|trace:FILE\n\
                                  workload family        [wastecpu]\n\
                                  (trace:FILE replays an\n\
                                  arrival_s,user,duration_s CSV on a\n\
                                  synthetic farm; `run` only)\n\
     --heuristic NAME             policy for `run`       [MSF]\n\
     --heuristics A,B,C           policies for `compare` [MCT,HMCT,MP,MSF]\n\
     --gap SECONDS                mean inter-arrival gap [20]\n\
     --burst RATIO                peak/trough ratio of bursty (IPPP\n\
                                  thinning) arrivals at the same mean\n\
                                  rate; 1 = homogeneous Poisson  [1]\n\
     --burst-period SECONDS       burst period           [1800]\n\
     --selector NAME              stage-1 candidate selection:\n\
                                  exhaustive | topk[:K] | adaptive[:MIN:MAX]\n\
                                  [exhaustive]\n\
     --shards N|auto[:G]          federate the agent across N shards\n\
                                  (auto picks from the farm size; auto:G\n\
                                  also sets the skyline tree's shards-\n\
                                  per-group fan-out; omit for the single-\n\
                                  agent path; 1 runs the router over one\n\
                                  shard, bit-identical to the single\n\
                                  agent)  [single]\n\
     --skyline on|off             lazy federation merge: visit shards in\n\
                                  skyline order, skip shards that cannot\n\
                                  contribute (proven decision-identical;\n\
                                  off replays the eager full scatter for\n\
                                  differential runs)     [on]\n\
     --index-scoring work|count   stage-1 static-index proxy: predicted\n\
                                  remaining work, or the count-based\n\
                                  baseline              [work]\n\
     --rankings flat|btree        stage-1 ranking storage: the cache-\n\
                                  friendly flat ladder, or the BTree\n\
                                  executable spec (bit-identical\n\
                                  decisions, differentially proven)\n\
                                  [flat]\n\
     --stage2 fast|full           stage-2 drain engine: truncated\n\
                                  prefix-sharing drains with the\n\
                                  parallel scatter, or the full pre-\n\
                                  optimisation executable spec (bit-\n\
                                  identical decisions, differentially\n\
                                  proven)                [fast]\n\
     --profile                    print the always-on phase profiler's\n\
                                  per-phase wall-time table after the\n\
                                  run (merged across the pool's\n\
                                  parallel replications)\n\
     --mtbf SECONDS               mean time between failures per server\n\
                                  (exponential); \"inf\" freezes the farm\n\
                                  [inf]\n\
     --mttr SECONDS               mean time to repair a crashed server\n\
                                  (exponential)          [60]\n\
     --churn-seed N               fault-schedule seed, independent of\n\
                                  --seed                 [0]\n\
     --admission CAP:BUF:DEADLINE admission backpressure: at most CAP\n\
                                  tasks past the gate, BUF buffered\n\
                                  behind it, each at most DEADLINE\n\
                                  seconds (\"inf\" = wait forever)\n\
                                  before being shed; \"off\" disables\n\
                                  the gate entirely      [off]\n\
     --tasks N                    metatask size          [500]\n\
     --seed N                     root seed              [1]\n\
     --reps N                     replications           [1]\n\
     --noise SIGMA                speed-noise sigma      [0.03]\n\
     --format table|csv|json      output format          [table]\n\
     --no-memory                  disable the memory model\n\
     --sync                       HTM force-finish synchronisation"
}

fn parse(argv: &[String]) -> Result<(String, Args), String> {
    let mut args = Args::default();
    let cmd = argv.first().cloned().ok_or_else(|| usage().to_string())?;
    let mut i = 1;
    while i < argv.len() {
        let flag = &argv[i];
        let take = |args_i: &mut usize| -> Result<String, String> {
            *args_i += 1;
            argv.get(*args_i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--workload" => args.workload = take(&mut i)?,
            "--heuristic" => args.heuristic = take(&mut i)?,
            "--heuristics" => {
                args.heuristics = Some(
                    take(&mut i)?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--gap" => {
                args.gap = num_flag("--gap", &take(&mut i)?, "a number of seconds (e.g. 15)")?
            }
            "--burst" => {
                let v = take(&mut i)?;
                args.burst = num_flag("--burst", &v, "a peak/trough RATIO >= 1 (e.g. 8)")?;
                if args.burst < 1.0 {
                    return Err(format!(
                        "--burst: expected a peak/trough RATIO >= 1 (e.g. 8), got {v:?}"
                    ));
                }
            }
            "--burst-period" => {
                let v = take(&mut i)?;
                args.burst_period = num_flag(
                    "--burst-period",
                    &v,
                    "a positive number of seconds (e.g. 1800)",
                )?;
                if args.burst_period <= 0.0 {
                    return Err(format!(
                        "--burst-period: expected a positive number of seconds, got {v:?}"
                    ));
                }
            }
            "--selector" => {
                let v = take(&mut i)?;
                if SelectorKind::parse(&v).is_none() {
                    return Err(format!(
                        "--selector: expected exhaustive | topk[:K] | adaptive[:MIN:MAX], got {v:?}"
                    ));
                }
                args.selector = v;
            }
            "--shards" => {
                let v = take(&mut i)?;
                if !v.eq_ignore_ascii_case("single") && Sharding::parse(&v).is_none() {
                    return Err(format!(
                        "--shards: expected a shard count >= 1, \"auto\" or \"auto:GROUPSIZE\", got {v:?}"
                    ));
                }
                args.shards = v;
            }
            "--skyline" => {
                let v = take(&mut i)?;
                if !v.eq_ignore_ascii_case("on") && !v.eq_ignore_ascii_case("off") {
                    return Err(format!("--skyline: expected \"on\" or \"off\", got {v:?}"));
                }
                args.skyline = v;
            }
            "--index-scoring" => {
                let v = take(&mut i)?;
                if IndexScoring::parse(&v).is_none() {
                    return Err(format!(
                        "--index-scoring: expected \"work\" or \"count\", got {v:?}"
                    ));
                }
                args.index_scoring = v;
            }
            "--rankings" => {
                let v = take(&mut i)?;
                if RankingsBackend::parse(&v).is_none() {
                    return Err(format!(
                        "--rankings: expected \"flat\" or \"btree\", got {v:?}"
                    ));
                }
                args.rankings = v;
            }
            "--stage2" => {
                let v = take(&mut i)?;
                if Stage2Mode::parse(&v).is_none() {
                    return Err(format!(
                        "--stage2: expected \"fast\" or \"full\", got {v:?}"
                    ));
                }
                args.stage2 = v;
            }
            "--profile" => args.profile = true,
            "--mtbf" => {
                let v = take(&mut i)?;
                args.mtbf = num_flag(
                    "--mtbf",
                    &v,
                    "a positive number of seconds or \"inf\" (e.g. 3600)",
                )?;
                if args.mtbf <= 0.0 || args.mtbf.is_nan() {
                    return Err(format!(
                        "--mtbf: expected a positive number of seconds or \"inf\", got {v:?}"
                    ));
                }
            }
            "--mttr" => {
                let v = take(&mut i)?;
                args.mttr = num_flag(
                    "--mttr",
                    &v,
                    "a positive, finite number of seconds (e.g. 60)",
                )?;
                if args.mttr <= 0.0 || !args.mttr.is_finite() {
                    return Err(format!(
                        "--mttr: expected a positive, finite number of seconds, got {v:?}"
                    ));
                }
            }
            "--churn-seed" => {
                args.churn_seed = num_flag(
                    "--churn-seed",
                    &take(&mut i)?,
                    "a non-negative integer (e.g. 42)",
                )?
            }
            "--admission" => {
                let v = take(&mut i)?;
                if parse_admission(&v).is_none() {
                    return Err(format!(
                        "--admission: expected CAP:BUF:DEADLINE (CAP >= 1, deadline in seconds or \"inf\", e.g. 8:64:120) or \"off\", got {v:?}"
                    ));
                }
                args.admission = v;
            }
            "--tasks" => {
                args.tasks = num_flag("--tasks", &take(&mut i)?, "a positive integer (e.g. 500)")?
            }
            "--seed" => {
                args.seed = num_flag("--seed", &take(&mut i)?, "a non-negative integer (e.g. 1)")?
            }
            "--reps" => {
                args.reps = num_flag("--reps", &take(&mut i)?, "a positive integer (e.g. 3)")?
            }
            "--noise" => {
                args.noise = num_flag("--noise", &take(&mut i)?, "a sigma >= 0 (e.g. 0.03)")?
            }
            "--format" => args.format = take(&mut i)?,
            "--no-memory" => args.memory = false,
            "--sync" => args.sync = true,
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
        i += 1;
    }
    Ok((cmd, args))
}

/// Parses the `--admission` grammar: "off" or "CAP:BUF:DEADLINE" with
/// CAP ≥ 1 and a positive deadline in seconds ("inf" = wait forever).
fn parse_admission(s: &str) -> Option<(usize, usize, f64)> {
    if s.eq_ignore_ascii_case("off") {
        return Some((0, 0, f64::INFINITY));
    }
    let mut it = s.split(':');
    let cap = it.next()?.parse::<usize>().ok().filter(|&c| c >= 1)?;
    let buf = it.next()?.parse::<usize>().ok()?;
    let d = it.next()?;
    let deadline = if d.eq_ignore_ascii_case("inf") {
        f64::INFINITY
    } else {
        d.parse::<f64>().ok().filter(|&x| x > 0.0 && !x.is_nan())?
    };
    if it.next().is_some() {
        return None;
    }
    Some((cap, buf, deadline))
}

fn workload_of(args: &Args) -> Result<(CostTable, Vec<ServerSpec>), String> {
    match args.workload.as_str() {
        "matmul" => Ok((
            casgrid::workload::matmul::cost_table(),
            casgrid::workload::testbed::set1_servers(),
        )),
        "wastecpu" => Ok((
            casgrid::workload::wastecpu::cost_table(),
            casgrid::workload::testbed::set2_servers(),
        )),
        // `synthetic:N` — the bench farm at N servers, for driving the
        // shard federation at sizes the paper testbeds can't reach.
        other => {
            if let Some(n) = other
                .get(..10)
                .filter(|p| p.eq_ignore_ascii_case("synthetic:"))
                .and(other.get(10..))
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| n >= 1)
            {
                let platform = casgrid::workload::synthetic::SyntheticPlatform {
                    n_servers: n,
                    ..Default::default()
                };
                return Ok((platform.cost_table(args.seed), platform.servers(args.seed)));
            }
            Err(format!(
                "unknown workload {other} (matmul|wastecpu|synthetic:N|trace:FILE)"
            ))
        }
    }
}

fn config_of(args: &Args, kind: HeuristicKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(kind, args.seed);
    cfg.noise_sigma = args.noise;
    cfg.selector = SelectorKind::parse(&args.selector).expect("validated at parse time");
    cfg.shards = if args.shards.eq_ignore_ascii_case("single") {
        Sharding::Single
    } else {
        Sharding::parse(&args.shards).expect("validated at parse time")
    };
    cfg.index_scoring = IndexScoring::parse(&args.index_scoring).expect("validated at parse time");
    cfg.rankings = RankingsBackend::parse(&args.rankings).expect("validated at parse time");
    cfg.stage2 = Stage2Mode::parse(&args.stage2).expect("validated at parse time");
    cfg.skyline = args.skyline.eq_ignore_ascii_case("on");
    if !args.memory {
        cfg.memory = MemoryModel::disabled();
    }
    if args.sync {
        cfg.sync = SyncPolicy::ForceFinish;
    }
    let (cap, buf, deadline) = parse_admission(&args.admission).expect("validated at parse time");
    cfg.with_churn(args.mtbf, args.mttr)
        .with_churn_seed(args.churn_seed)
        .with_admission(cap, buf, deadline)
}

/// The metatask: the paper's homogeneous-Poisson process by default, or
/// the thinning-sampled bursty process at the same mean rate when
/// `--burst` exceeds 1.
fn tasks_of(args: &Args, costs: &CostTable) -> Vec<TaskInstance> {
    if args.burst > 1.0 {
        // Hold the mean rate at 1/gap: base + peak = 2 · mean.
        let base_rate = 2.0 / (args.gap * (1.0 + args.burst));
        BurstArrivals {
            n_tasks: args.tasks,
            base_rate,
            peak_rate: args.burst * base_rate,
            period: args.burst_period,
            n_problems: costs.n_problems(),
        }
        .generate(args.seed)
    } else {
        MetataskSpec {
            n_tasks: args.tasks,
            ..MetataskSpec::paper(args.gap)
        }
        .generate(args.seed)
    }
}

fn emit(table: &Table, format: &str) -> Result<(), String> {
    match format {
        "table" => print!("{}", table.render()),
        "csv" => print!("{}", casgrid::metrics::render_csv(table)),
        "json" => println!("{}", table.to_json()),
        other => return Err(format!("unknown format {other} (table|csv|json)")),
    }
    Ok(())
}

/// Replays a CSV trace end to end: compiles it onto the synthetic
/// demand-ladder farm, runs one campaign per replication (seed + rep)
/// through the admission gate, and prints the paper metrics plus the
/// per-user-class SLO table (p50/p99 stretch, drop rate, buffered
/// time) of the first replication.
fn cmd_run_trace(args: &Args, path: &str, kind: HeuristicKind) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("--workload trace:{path}: cannot read file ({e})"))?;
    let mut trace = CsvTrace::parse(&text).map_err(|e| format!("--workload trace:{path}: {e}"))?;
    let compiled = TraceWorkload::default()
        .compile(&mut trace, args.seed)
        .map_err(|e| format!("--workload trace:{path}: {e}"))?;
    let base = config_of(args, kind);
    let mut runs = Vec::with_capacity(args.reps);
    let mut first_slo: Option<Vec<ClassSlo>> = None;
    for rep in 0..args.reps.max(1) {
        let cfg = base.with_seed(args.seed + rep as u64);
        let (records, stats, waits) = run_experiment_with_users(
            cfg,
            compiled.costs.clone(),
            compiled.servers.clone(),
            compiled.tasks.clone(),
            compiled.users.clone(),
        );
        if first_slo.is_none() {
            let _ = stats;
            first_slo = Some(per_class_slo(&records, &compiled.users, &waits));
        }
        runs.push(records);
    }
    let mut table = Table::new(
        format!(
            "{} on trace:{} ({} tasks, {} class(es), admission {}, shards {}, {} rep(s))",
            kind.name(),
            path,
            compiled.tasks.len(),
            first_slo.as_ref().map_or(0, |s| s.len()),
            args.admission,
            args.shards,
            args.reps
        ),
        vec!["mean".into(), "min".into(), "max".into()],
    );
    for metric in MetricSet::PAPER_ROWS {
        let vals: Vec<f64> = runs
            .iter()
            .filter_map(|r| MetricSet::compute(r).by_name(metric))
            .collect();
        if let Some(s) = Summary::of(&vals) {
            table.push_row_f64(metric, &[s.mean, s.min, s.max], 1);
        }
    }
    emit(&table, &args.format)?;
    let slo = first_slo.expect("at least one replication ran");
    let mut slo_table = Table::new(
        format!("per-user-class SLOs (seed {})", args.seed),
        vec![
            "tasks".into(),
            "completed".into(),
            "drop %".into(),
            "p50 stretch".into(),
            "p99 stretch".into(),
            "buffered s".into(),
        ],
    );
    for class in &slo {
        slo_table.push_row_f64(
            format!("user {}", class.user),
            &[
                class.tasks as f64,
                class.completed as f64,
                class.drop_rate_pct,
                class.p50_stretch.unwrap_or(f64::NAN),
                class.p99_stretch.unwrap_or(f64::NAN),
                class.mean_buffered_s,
            ],
            2,
        );
    }
    emit(&slo_table, &args.format)
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let kind = HeuristicKind::parse(&args.heuristic)
        .ok_or_else(|| format!("unknown heuristic {}", args.heuristic))?;
    if let Some(path) = args.workload.strip_prefix("trace:") {
        return cmd_run_trace(args, path, kind);
    }
    let (costs, servers) = workload_of(args)?;
    let tasks = tasks_of(args, &costs);
    let workloads: Vec<_> = (0..args.reps).map(|_| tasks.clone()).collect();
    // `--profile` renders the merged cross-thread view: the runner
    // flushes each replication's spans into the process-wide ledger
    // from whichever pool thread ran it, so the replications fan out
    // in parallel exactly as an unprofiled run would.
    let (runs, profiled) = if args.profile {
        prof::reset();
        prof::reset_merged();
        let t0 = Instant::now();
        let runs = run_replications(config_of(args, kind), &costs, &servers, &workloads);
        let wall_s = t0.elapsed().as_secs_f64();
        (runs, Some((prof::merged_snapshot(), wall_s)))
    } else {
        (
            run_replications(config_of(args, kind), &costs, &servers, &workloads),
            None,
        )
    };
    let mut table = Table::new(
        format!(
            "{} on {} ({} tasks, gap {} s, burst {}x, selector {}, shards {}, {} rep(s))",
            kind.name(),
            args.workload,
            args.tasks,
            args.gap,
            args.burst,
            args.selector,
            args.shards,
            args.reps
        ),
        vec!["mean".into(), "min".into(), "max".into()],
    );
    for metric in MetricSet::PAPER_ROWS {
        let vals: Vec<f64> = runs
            .iter()
            .filter_map(|r| MetricSet::compute(r).by_name(metric))
            .collect();
        let s = Summary::of(&vals).expect("at least one rep");
        table.push_row_f64(metric, &[s.mean, s.min, s.max], 1);
    }
    emit(&table, &args.format)?;
    if let Some((totals, wall_s)) = profiled {
        print!(
            "\nphase profile over {wall_s:.3} s wall:\n{}",
            prof::render_profile_table(&totals, wall_s)
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    if args.profile {
        return Err("--profile: supported by `run` only (one campaign, one table)".into());
    }
    if args.workload.starts_with("trace:") {
        return Err(
            "--workload trace:FILE: supported by `run` only (a trace binds its own farm)".into(),
        );
    }
    let names = args
        .heuristics
        .clone()
        .unwrap_or_else(|| vec!["MCT".into(), "HMCT".into(), "MP".into(), "MSF".into()]);
    let kinds: Vec<HeuristicKind> = names
        .iter()
        .map(|n| HeuristicKind::parse(n).ok_or_else(|| format!("unknown heuristic {n}")))
        .collect::<Result<_, _>>()?;
    let (costs, servers) = workload_of(args)?;
    let tasks = tasks_of(args, &costs);
    let workloads: Vec<_> = (0..args.reps).map(|_| tasks.clone()).collect();
    let results = run_heuristic_matrix(
        config_of(args, kinds[0]),
        &kinds,
        &costs,
        &servers,
        &workloads,
    );
    let mut table = Table::new(
        format!(
            "{} tasks on {}, gap {} s, burst {}x, selector {}, shards {}, {} rep(s)",
            args.tasks, args.workload, args.gap, args.burst, args.selector, args.shards, args.reps
        ),
        names.clone(),
    );
    for metric in MetricSet::PAPER_ROWS {
        let row: Vec<f64> = results.iter().map(|r| r.mean_metric(metric)).collect();
        table.push_row_f64(metric, &row, 1);
    }
    // Finish-sooner row against the first heuristic (MCT by default).
    let baseline = &results[0];
    let sooner: Vec<String> = results
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i == 0 {
                "-".into()
            } else {
                let counts: Vec<f64> = r
                    .runs
                    .iter()
                    .zip(&baseline.runs)
                    .map(|(c, b)| finish_sooner_count(c, b) as f64)
                    .collect();
                format!("{:.0}", counts.iter().sum::<f64>() / counts.len() as f64)
            }
        })
        .collect();
    table.push_row(format!("sooner than {}", names[0]), sooner);
    emit(&table, &args.format)
}

fn cmd_list() {
    println!("heuristics:");
    for k in HeuristicKind::ALL {
        println!("  {:8} (HTM: {})", k.name(), k.build().uses_htm());
    }
    println!("\nworkloads:\n  matmul    Table 3, servers chamagne/cabestan/artimon/pulney");
    println!("  wastecpu  Table 4, servers valette/spinnaker/cabestan/artimon");
    println!("  synthetic:N  the bench farm at N servers (federation scale)");
    println!(
        "  trace:FILE   replay an arrival_s,user,duration_s CSV on the\n  \
         \x20          synthetic demand-ladder farm (per-class SLOs;\n  \
         \x20          pair with --admission for backpressure; run only)"
    );
    println!(
        "\nselectors (stage-1 candidate pruning):\n  \
         exhaustive        every solver gets an HTM query (paper behaviour)\n  \
         topk[:K]          K best by stage-1 score               [K=16]\n  \
         adaptive[:MIN:MAX] self-adjusting width: near-tie, regret and\n  \
                    completed-task stretch driven"
    );
    println!(
        "\nsharding (--shards):\n  \
         single (default)  one agent owns the whole farm (the paper)\n  \
         N | auto[:G]      partition the farm across N per-shard engines\n  \
                    behind the deterministic router; auto picks from\n  \
                    the farm size, auto:G overrides the skyline tree's\n  \
                    shards-per-group fan-out (default 16);\n  \
                    --shards 1 is bit-identical to single\n  \
         --skyline on|off  lazy merge: shards visited in skyline order,\n  \
                    non-contributing shards skipped (on by default;\n  \
                    proven decision-identical to the eager scatter)"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, args) = match parse(&argv) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "list" => {
            cmd_list();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let (cmd, args) = parse(&argv("run")).unwrap();
        assert_eq!(cmd, "run");
        assert_eq!(args.workload, "wastecpu");
        assert_eq!(args.gap, 20.0);
        assert_eq!(args.burst, 1.0);
        assert_eq!(args.selector, "exhaustive");
        assert_eq!(args.tasks, 500);
        assert!(args.memory);
        assert!(!args.sync);
    }

    #[test]
    fn parse_full_flag_set() {
        let (cmd, args) = parse(&argv(
            "compare --workload matmul --heuristics MCT,MSF --gap 15 --tasks 100 \
             --seed 7 --reps 2 --noise 0.1 --format csv --no-memory --sync \
             --burst 8 --burst-period 600 --selector topk:4",
        ))
        .unwrap();
        assert_eq!(cmd, "compare");
        assert_eq!(args.workload, "matmul");
        assert_eq!(args.heuristics, Some(vec!["MCT".into(), "MSF".into()]));
        assert_eq!(args.gap, 15.0);
        assert_eq!(args.tasks, 100);
        assert_eq!(args.seed, 7);
        assert_eq!(args.reps, 2);
        assert_eq!(args.noise, 0.1);
        assert_eq!(args.format, "csv");
        assert!(!args.memory);
        assert!(args.sync);
        assert_eq!(args.burst, 8.0);
        assert_eq!(args.burst_period, 600.0);
        assert_eq!(args.selector, "topk:4");
    }

    #[test]
    fn parse_rejects_bad_burst_and_selector() {
        assert!(parse(&argv("run --burst 0.5")).is_err());
        assert!(parse(&argv("run --burst-period 0")).is_err());
        assert!(parse(&argv("run --selector nope")).is_err());
        assert!(parse(&argv("run --selector topk:0")).is_err());
        // The retired runner knob is gone for good.
        assert!(parse(&argv("run --workers 3")).is_err());
    }

    #[test]
    fn parse_skyline_flag() {
        let (_, args) = parse(&argv("run")).unwrap();
        assert_eq!(args.skyline, "on");
        assert!(config_of(&args, HeuristicKind::Hmct).skyline);
        let (_, args) = parse(&argv("run --shards 4 --skyline off")).unwrap();
        assert!(!config_of(&args, HeuristicKind::Hmct).skyline);
        let (_, args) = parse(&argv("run --skyline ON")).unwrap();
        assert!(config_of(&args, HeuristicKind::Hmct).skyline);
        let err = parse(&argv("run --skyline sideways")).unwrap_err();
        assert!(
            err.starts_with("--skyline") && err.contains("expected"),
            "{err}"
        );
        assert!(parse(&argv("run --skyline")).is_err());
    }

    #[test]
    fn parse_shards_and_index_scoring() {
        let (_, args) = parse(&argv("run --shards auto --index-scoring count")).unwrap();
        assert_eq!(args.shards, "auto");
        assert_eq!(args.index_scoring, "count");
        let cfg = config_of(&args, HeuristicKind::Hmct);
        assert_eq!(cfg.shards, Sharding::AUTO);
        assert_eq!(cfg.index_scoring, IndexScoring::ActiveCount);
        let (_, args) = parse(&argv("run --shards auto:4")).unwrap();
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).shards,
            Sharding::Auto {
                group_size: Some(4)
            }
        );
        let (_, args) = parse(&argv("run --shards 4")).unwrap();
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).shards,
            Sharding::Federated { shards: 4 }
        );
        let (_, args) = parse(&argv("run")).unwrap();
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).shards,
            Sharding::Single
        );
        assert!(parse(&argv("run --shards 0")).is_err());
        assert!(parse(&argv("run --shards sideways")).is_err());
        assert!(parse(&argv("run --shards auto:0")).is_err());
        assert!(parse(&argv("run --shards auto:big")).is_err());
        assert!(parse(&argv("run --index-scoring nope")).is_err());
    }

    #[test]
    fn parse_rankings_and_profile_flags() {
        let (_, args) = parse(&argv("run")).unwrap();
        assert_eq!(args.rankings, "flat");
        assert!(!args.profile);
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).rankings,
            RankingsBackend::Flat
        );
        let (_, args) = parse(&argv("run --rankings btree --profile")).unwrap();
        assert!(args.profile);
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).rankings,
            RankingsBackend::Btree
        );
        // `tree`/`vec` are accepted spellings, like the library parser.
        let (_, args) = parse(&argv("run --rankings TREE")).unwrap();
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).rankings,
            RankingsBackend::Btree
        );
        let err = parse(&argv("run --rankings linkedlist")).unwrap_err();
        assert!(
            err.starts_with("--rankings") && err.contains("expected"),
            "{err}"
        );
        assert!(parse(&argv("run --rankings")).is_err());
        // --stage2 follows the same grammar: fast (default) or full.
        let (_, args) = parse(&argv("run")).unwrap();
        assert_eq!(args.stage2, "fast");
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).stage2,
            Stage2Mode::Fast
        );
        let (_, args) = parse(&argv("run --stage2 FULL")).unwrap();
        assert_eq!(
            config_of(&args, HeuristicKind::Hmct).stage2,
            Stage2Mode::Full
        );
        assert!(parse(&argv("run --stage2")).is_err());
        // `--profile` is `run`-only: compare fans replications out across
        // the pool, away from the measuring thread.
        let (_, args) = parse(&argv("compare --profile --tasks 5")).unwrap();
        let err = cmd_compare(&args).unwrap_err();
        assert!(err.starts_with("--profile"), "{err}");
        assert_eq!(err.lines().count(), 1, "{err}");
    }

    /// `casgrid run --profile` must execute end to end and leave live
    /// span counts behind: the profiler is always on, so a tiny campaign
    /// already closes stage-1, stage-2, commit and kernel spans. With
    /// the replications fanned over the pool, the counts land in the
    /// merged cross-thread view (each replication flushes its worker's
    /// spans into the process-wide ledger).
    #[test]
    fn profile_run_end_to_end_leaves_live_phases() {
        let (_, mut args) = parse(&argv("run --tasks 5 --reps 2 --profile")).unwrap();
        args.heuristic = "HMCT".into();
        prof::reset();
        assert!(cmd_run(&args).is_ok());
        let totals = prof::merged_snapshot();
        for phase in [
            prof::Phase::Stage1Walk,
            prof::Phase::Stage2Predict,
            prof::Phase::CommitHooks,
            prof::Phase::KernelPop,
        ] {
            assert!(
                totals.count_of(phase) > 0,
                "{} closed no spans",
                phase.name()
            );
        }
    }

    /// `--workload synthetic:N` builds the bench farm at N servers — the
    /// only workload family big enough for `--shards auto` to resolve to
    /// a real federation from the CLI.
    #[test]
    fn synthetic_workload_scales_the_farm() {
        let (_, args) = parse(&argv("run --workload synthetic:1500 --shards auto")).unwrap();
        let (costs, servers) = workload_of(&args).unwrap();
        assert_eq!(servers.len(), 1500);
        assert_eq!(costs.n_servers(), 1500);
        assert_eq!(Sharding::AUTO.resolve(1500), Some(3));
        for bad in ["synthetic:", "synthetic:0", "synthetic:x", "synth"] {
            let (_, mut args) = parse(&argv("run")).unwrap();
            args.workload = bad.into();
            let err = workload_of(&args).unwrap_err();
            assert!(err.contains("synthetic:N"), "{bad}: {err}");
        }
    }

    /// Flag parse failures must name the flag and the accepted forms —
    /// one line, no raw `ParseIntError`/`ParseFloatError` text.
    #[test]
    fn parse_errors_name_flag_and_accepted_forms() {
        for (cmdline, flag) in [
            ("run --tasks many", "--tasks"),
            ("run --seed x", "--seed"),
            ("run --reps -2", "--reps"),
            ("run --gap fast", "--gap"),
            ("run --noise loud", "--noise"),
            ("run --burst 0.2", "--burst"),
            ("run --burst-period -5", "--burst-period"),
            ("run --shards none", "--shards"),
            ("run --shards auto:", "--shards"),
            ("run --selector best", "--selector"),
            ("run --skyline maybe", "--skyline"),
            ("run --index-scoring vibes", "--index-scoring"),
            ("run --rankings linkedlist", "--rankings"),
            ("run --stage2 turbo", "--stage2"),
            ("run --mtbf sometimes", "--mtbf"),
            ("run --mtbf 0", "--mtbf"),
            ("run --mtbf -100", "--mtbf"),
            ("run --mttr inf", "--mttr"),
            ("run --mttr 0", "--mttr"),
            ("run --mttr soon", "--mttr"),
            ("run --churn-seed x", "--churn-seed"),
            ("run --churn-seed -1", "--churn-seed"),
        ] {
            let err = parse(&argv(cmdline)).unwrap_err();
            assert!(err.starts_with(flag), "{cmdline}: {err}");
            assert!(err.contains("expected"), "{cmdline}: {err}");
            assert!(
                !err.contains("invalid digit") && !err.contains("invalid float"),
                "{cmdline} leaked a raw parse error: {err}"
            );
            assert_eq!(err.lines().count(), 1, "{cmdline}: {err}");
        }
    }

    #[test]
    fn parse_churn_flags() {
        let (_, args) = parse(&argv("run")).unwrap();
        assert!(args.mtbf.is_infinite());
        assert_eq!(args.mttr, 60.0);
        assert_eq!(args.churn_seed, 0);
        assert!(
            !config_of(&args, HeuristicKind::Hmct)
                .churn_model()
                .enabled(),
            "the default farm is frozen"
        );
        let (_, args) = parse(&argv("run --mtbf 3600 --mttr 120 --churn-seed 42")).unwrap();
        assert_eq!(args.mtbf, 3600.0);
        assert_eq!(args.mttr, 120.0);
        assert_eq!(args.churn_seed, 42);
        let cfg = config_of(&args, HeuristicKind::Hmct);
        assert!(cfg.churn_model().enabled());
        assert_eq!(cfg.churn_seed, 42);
        // "inf" is the explicit spelling of the frozen default.
        let (_, args) = parse(&argv("run --mtbf inf")).unwrap();
        assert!(args.mtbf.is_infinite());
        assert!(parse(&argv("run --mtbf")).is_err());
        assert!(parse(&argv("run --mttr")).is_err());
        assert!(parse(&argv("run --churn-seed")).is_err());
    }

    #[test]
    fn parse_admission_flag() {
        let (_, args) = parse(&argv("run")).unwrap();
        assert_eq!(args.admission, "off");
        assert!(!config_of(&args, HeuristicKind::Hmct).admission_enabled());
        let (_, args) = parse(&argv("run --admission 8:64:120")).unwrap();
        let cfg = config_of(&args, HeuristicKind::Hmct);
        assert!(cfg.admission_enabled());
        assert_eq!(cfg.admission_capacity, 8);
        assert_eq!(cfg.admission_buffer, 64);
        assert_eq!(cfg.admission_deadline, 120.0);
        let (_, args) = parse(&argv("run --admission 4:16:inf")).unwrap();
        assert!(config_of(&args, HeuristicKind::Hmct)
            .admission_deadline
            .is_infinite());
        let (_, args) = parse(&argv("run --admission OFF")).unwrap();
        assert!(!config_of(&args, HeuristicKind::Hmct).admission_enabled());
        for bad in [
            "run --admission 8:64",
            "run --admission 8:64:120:7",
            "run --admission 0:64:120",
            "run --admission 8:64:0",
            "run --admission 8:64:-5",
            "run --admission lots",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert!(err.starts_with("--admission"), "{bad}: {err}");
            assert!(err.contains("expected"), "{bad}: {err}");
            assert_eq!(err.lines().count(), 1, "{bad}: {err}");
        }
        assert!(parse(&argv("run --admission")).is_err());
    }

    const GOLDEN: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/workload/fixtures/golden_trace.csv"
    );

    /// `casgrid run --workload trace:FILE --admission ...` replays the
    /// golden fixture end to end; `compare` rejects trace workloads
    /// with a one-line error; a missing file names the path.
    #[test]
    fn trace_workload_runs_end_to_end_and_compare_rejects_it() {
        let (_, mut args) =
            parse(&argv("run --admission 2:4:25 --heuristic HMCT --reps 2")).unwrap();
        args.workload = format!("trace:{GOLDEN}");
        assert!(cmd_run(&args).is_ok());
        let err = cmd_compare(&args).unwrap_err();
        assert!(err.starts_with("--workload trace:"), "{err}");
        assert_eq!(err.lines().count(), 1, "{err}");
        args.workload = "trace:/does/not/exist.csv".into();
        let err = cmd_run(&args).unwrap_err();
        assert!(err.contains("/does/not/exist.csv"), "{err}");
    }

    #[test]
    fn burst_tasks_share_mean_rate_with_metatask() {
        let (_, mut args) = parse(&argv("run --tasks 400 --gap 10")).unwrap();
        let (costs, _) = workload_of(&args).unwrap();
        args.burst = 6.0;
        let bursty = tasks_of(&args, &costs);
        assert_eq!(bursty.len(), 400);
        let span = bursty.last().unwrap().arrival.as_secs();
        let mean_gap = span / bursty.len() as f64;
        assert!(
            (mean_gap - 10.0).abs() < 2.0,
            "bursty mean gap drifted: {mean_gap}"
        );
        args.burst = 1.0;
        assert_eq!(tasks_of(&args, &costs).len(), 400);
    }

    #[test]
    fn parse_rejects_unknown_flag() {
        assert!(parse(&argv("run --bogus 1")).is_err());
    }

    #[test]
    fn parse_rejects_missing_value() {
        assert!(parse(&argv("run --gap")).is_err());
    }

    #[test]
    fn parse_rejects_bad_number() {
        assert!(parse(&argv("run --tasks many")).is_err());
    }

    #[test]
    fn workload_and_config_resolution() {
        let (_, mut args) = parse(&argv("run --workload matmul")).unwrap();
        assert!(workload_of(&args).is_ok());
        args.workload = "nope".into();
        assert!(workload_of(&args).is_err());
        args.workload = "wastecpu".into();
        args.sync = true;
        args.memory = false;
        let cfg = config_of(&args, HeuristicKind::Msf);
        assert_eq!(cfg.sync, SyncPolicy::ForceFinish);
        assert!(!cfg.memory.enabled);
    }

    #[test]
    fn tiny_end_to_end_run() {
        let (_, mut args) = parse(&argv("run --tasks 5 --reps 1")).unwrap();
        args.heuristic = "MSF".into();
        assert!(cmd_run(&args).is_ok());
    }
}

//! # casgrid — dynamic scheduling heuristics in the client-agent-server model
//!
//! A faithful, self-contained reproduction of *"New Dynamic Heuristics in
//! the Client-Agent-Server Model"* (Yves Caniou & Emmanuel Jeannot, IEEE
//! Heterogeneous Computing Workshop, 2003): the **Historical Trace
//! Manager** — an online simulation the scheduling agent keeps of every
//! task it has mapped onto time-shared servers — and the heuristics built
//! on it (**HMCT**, **MP**, **MSF**), evaluated against NetSolve's **MCT**
//! baseline inside a complete discrete-event simulation of the
//! client-agent-server protocol.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `cas-sim` | discrete-event kernel: time, stable event queue, RNG streams, distributions |
//! | [`platform`] | `cas-platform` | servers (fair-share CPU, memory/swap), links, monitors, cost tables |
//! | [`core`] | `cas-core` | the HTM, perturbations, Gantt charts, and all heuristics |
//! | [`middleware`] | `cas-middleware` | the client-agent-server engine and parallel experiment runner |
//! | [`workload`] | `cas-workload` | the paper's testbed (Table 2) and workloads (Tables 3–4), metatask generators |
//! | [`metrics`] | `cas-metrics` | makespan / sum-flow / max-flow / max-stretch / finish-sooner, stats, tables |
//!
//! ## Quickstart
//!
//! ```
//! use casgrid::prelude::*;
//!
//! // The paper's waste-cpu workload: 4 servers, 3 task types (Table 4).
//! let costs = casgrid::workload::wastecpu::cost_table();
//! let servers = casgrid::workload::testbed::set2_servers();
//!
//! // A small metatask: 50 tasks, Poisson-process arrivals, mean gap 20 s.
//! let tasks = MetataskSpec { n_tasks: 50, ..MetataskSpec::paper(20.0) }.generate(42);
//!
//! // Schedule it with Minimum Sum Flow and with the MCT baseline.
//! let msf = run_experiment(
//!     ExperimentConfig::paper(HeuristicKind::Msf, 1),
//!     costs.clone(), servers.clone(), tasks.clone());
//! let mct = run_experiment(
//!     ExperimentConfig::paper(HeuristicKind::Mct, 1),
//!     costs, servers, tasks);
//!
//! let m_msf = MetricSet::compute(&msf);
//! let m_mct = MetricSet::compute(&mct);
//! assert_eq!(m_msf.completed, 50);
//! // MSF's whole point: less total time in system.
//! assert!(m_msf.sumflow <= m_mct.sumflow * 1.2);
//! println!("sum-flow: MSF {:.0} vs MCT {:.0}; {} of 50 tasks finish sooner",
//!          m_msf.sumflow, m_mct.sumflow, finish_sooner_count(&msf, &mct));
//! ```

pub use cas_core as core;
pub use cas_metrics as metrics;
pub use cas_middleware as middleware;
pub use cas_platform as platform;
pub use cas_sim as sim;
pub use cas_workload as workload;

/// The commonly used names in one import.
pub mod prelude {
    pub use cas_core::heuristics::{Heuristic, HeuristicKind, SchedView};
    pub use cas_core::{
        CandidateSelector, Gantt, Htm, Prediction, SelectorKind, ServerTrace, Stage2Mode,
        SyncPolicy,
    };
    pub use cas_metrics::{
        finish_sooner_count, per_class_slo, ClassSlo, MetricSet, Summary, Table, TaskOutcome,
        TaskRecord,
    };
    pub use cas_middleware::{
        run_experiment, run_experiment_with_users, run_heuristic_matrix, run_replications,
        run_replications_sequential, AdmissionStats, AgentRouter, DecisionAgent, DiffHarness,
        ExperimentConfig, FaultTolerance, Sharding, SingleAgentReference, SkylineStats,
    };
    pub use cas_platform::{
        CostTable, IndexScoring, MemoryModel, PhaseCosts, Problem, ProblemId, ServerId, ServerSpec,
        ShardMap, StaticIndex, TaskId, TaskInstance,
    };
    pub use cas_sim::{RngStream, SimTime, StreamKind};
    pub use cas_workload::metatask::{GapDistribution, MetataskSpec};
    pub use cas_workload::trace::{
        CompiledTrace, CsvTrace, FittedTraceSpec, Trace, TraceEntry, TraceError, TraceWorkload,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let costs = crate::workload::wastecpu::cost_table();
        let servers = crate::workload::testbed::set2_servers();
        let tasks = MetataskSpec {
            n_tasks: 10,
            ..MetataskSpec::paper(20.0)
        }
        .generate(1);
        let recs = run_experiment(
            ExperimentConfig::paper(HeuristicKind::Msf, 1),
            costs,
            servers,
            tasks,
        );
        assert_eq!(MetricSet::compute(&recs).completed, 10);
    }
}

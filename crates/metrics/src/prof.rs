//! Reporting surface of the always-on phase profiler.
//!
//! The accumulators themselves live in `cas_sim::prof` (the kernel
//! crate — the event-queue pop must be attributable, and `cas-metrics`
//! sits above the kernel in the dependency order); this module
//! re-exports them and adds what the reporting layers share: the
//! per-phase wall-time table behind `casgrid --profile` and the
//! `profile` JSON section every bench writes, including the
//! overhead-bound verdict the benches gate on.

pub use cas_sim::prof::*;

/// The measured-overhead estimate for a profiled section: span cost ×
/// span count against wall time. Conservative — real spans amortise
/// their two counter reads over actual work — which is the right
/// direction for a gate.
#[derive(Debug, Clone, Copy)]
pub struct OverheadEstimate {
    /// Calibrated cost of one open/close span pair, nanoseconds.
    pub span_ns: f64,
    /// Spans closed in the section.
    pub spans: u64,
    /// Estimated profiler seconds (`span_ns × spans`).
    pub est_s: f64,
    /// Estimate as a share of wall time, `[0, 1]`.
    pub share_of_wall: f64,
}

impl OverheadEstimate {
    /// Estimates the profiler's overhead for a section that closed
    /// `totals` spans over `wall_s` seconds, using a fresh calibration.
    pub fn measure(totals: &PhaseTotals, wall_s: f64) -> OverheadEstimate {
        let span_ns = calibrate_span_ns(100_000);
        let spans = totals.total_spans();
        let est_s = span_ns * spans as f64 * 1e-9;
        OverheadEstimate {
            span_ns,
            spans,
            est_s,
            share_of_wall: if wall_s > 0.0 { est_s / wall_s } else { 0.0 },
        }
    }
}

/// Renders the per-phase wall-time table `casgrid --profile` prints:
/// one row per phase (declaration order), with span counts, phase
/// seconds, share of profiled time and share of wall time.
pub fn render_profile_table(totals: &PhaseTotals, wall_s: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>9} {:>9}\n",
        "phase", "spans", "seconds", "of-prof", "of-wall"
    ));
    for &phase in &ALL_PHASES {
        let secs = totals.nanos_of(phase) as f64 * 1e-9;
        let of_wall = if wall_s > 0.0 { secs / wall_s } else { 0.0 };
        out.push_str(&format!(
            "{:<16} {:>12} {:>12.3} {:>8.1}% {:>8.1}%\n",
            phase.name(),
            totals.count_of(phase),
            secs,
            totals.share_of(phase) * 100.0,
            of_wall * 100.0
        ));
    }
    let profiled = totals.total_nanos() as f64 * 1e-9;
    out.push_str(&format!(
        "{:<16} {:>12} {:>12.3} {:>8.1}% {:>8.1}%\n",
        "total",
        totals.total_spans(),
        profiled,
        100.0,
        if wall_s > 0.0 {
            profiled / wall_s * 100.0
        } else {
            0.0
        }
    ));
    out
}

/// Renders the `profile` JSON section the benches embed: per-phase
/// nanos/spans/wall-shares, the overhead estimate, and the two gates
/// the caller folds into its acceptance block — `overhead_ok`
/// (estimate ≤ `max_overhead_share` of wall) and `phases_live` (every
/// phase closed at least one span). Returns the JSON object string and
/// the conjunction of both gates.
pub fn render_profile_json(
    totals: &PhaseTotals,
    wall_s: f64,
    max_overhead_share: f64,
) -> (String, bool) {
    let overhead = OverheadEstimate::measure(totals, wall_s);
    let overhead_ok = overhead.share_of_wall <= max_overhead_share;
    let phases_live = ALL_PHASES.iter().all(|&p| totals.count_of(p) > 0);
    let mut s = String::from("{\n      \"phases\": {\n");
    for (i, &phase) in ALL_PHASES.iter().enumerate() {
        let secs = totals.nanos_of(phase) as f64 * 1e-9;
        let of_wall = if wall_s > 0.0 { secs / wall_s } else { 0.0 };
        s.push_str(&format!(
            "        \"{}\": {{ \"spans\": {}, \"seconds\": {:.6}, \"share_of_wall\": {:.6} }}{}\n",
            phase.name(),
            totals.count_of(phase),
            secs,
            of_wall,
            if i + 1 < ALL_PHASES.len() { "," } else { "" }
        ));
    }
    s.push_str("      },\n");
    s.push_str(&format!("      \"wall_s\": {wall_s:.6},\n"));
    s.push_str(&format!(
        "      \"overhead\": {{ \"span_ns\": {:.2}, \"spans\": {}, \"est_s\": {:.6}, \"share_of_wall\": {:.6}, \"max_share\": {:.6}, \"ok\": {} }},\n",
        overhead.span_ns, overhead.spans, overhead.est_s, overhead.share_of_wall,
        max_overhead_share, overhead_ok
    ));
    s.push_str(&format!("      \"phases_live\": {phases_live}\n    }}"));
    (s, overhead_ok && phases_live)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_totals() -> PhaseTotals {
        let mut t = PhaseTotals::default();
        for (i, _) in ALL_PHASES.iter().enumerate() {
            t.nanos[i] = (i as u64 + 1) * 1_000_000;
            t.counts[i] = (i as u64 + 1) * 10;
        }
        t
    }

    #[test]
    fn table_has_one_row_per_phase_plus_header_and_total() {
        let table = render_profile_table(&fake_totals(), 1.0);
        assert_eq!(table.lines().count(), N_PHASES + 2);
        for &p in &ALL_PHASES {
            assert!(table.contains(p.name()), "missing {}", p.name());
        }
    }

    #[test]
    fn json_gates_overhead_and_liveness() {
        let totals = fake_totals();
        let (json, ok) = render_profile_json(&totals, 1000.0, 0.02);
        assert!(ok, "tiny span count over long wall must pass");
        assert!(json.contains("\"phases_live\": true"));
        assert!(json.contains("\"stage1_walk\""));
        assert!(json.contains("\"kernel_pop\""));
        // A dead phase flips the liveness gate.
        let mut dead = totals;
        dead.counts[Phase::Churn as usize] = 0;
        let (json, ok) = render_profile_json(&dead, 1000.0, 0.02);
        assert!(!ok);
        assert!(json.contains("\"phases_live\": false"));
        // An absurd overhead bound flips the overhead gate.
        let (_, ok) = render_profile_json(&totals, 1e-12, 0.02);
        assert!(!ok);
    }

    #[test]
    fn json_is_structurally_balanced() {
        let (json, _) = render_profile_json(&fake_totals(), 2.5, 0.02);
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "balanced braces");
        assert!(json.contains("\"reports\": { \"spans\": 60,"));
        assert!(json.contains("\"wall_s\": 2.5"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}

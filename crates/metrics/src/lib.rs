//! # cas-metrics — the paper's metrics (§3), statistics and table rendering
//!
//! * [`record`] — [`TaskRecord`]: everything an experiment learns about one
//!   task (arrival, server, phase boundaries, completion or failure,
//!   unloaded duration on its server).
//! * [`metrics`] — [`MetricSet`]: makespan, sum-flow, max-flow, max-stretch
//!   and completed-task counts computed from a set of records, plus the
//!   paper's pairwise "number of tasks that finish sooner" comparison.
//! * [`slo`] — per-user-class production SLOs (p50/p99 stretch, drop rate,
//!   buffered time) for trace-driven campaigns.
//! * [`stats`] — means, standard deviations, confidence intervals and
//!   medians for aggregating replications.
//! * [`table`] — fixed-width text tables in the layout of the paper's
//!   Tables 5–8, and CSV/JSON export for further analysis.
//! * [`prof`] — the always-on phase profiler (re-exported from the
//!   kernel crate, where the accumulators must live so the event-queue
//!   pop itself can be attributed): spans, snapshots, calibration, plus
//!   the table/JSON rendering helpers reporting layers use.

pub mod metrics;
pub mod prof;
pub mod record;
pub mod slo;
pub mod stats;
pub mod table;

pub use metrics::{finish_sooner_count, MetricSet};
pub use record::{DropReason, TaskOutcome, TaskRecord};
pub use slo::{per_class_slo, ClassSlo};
pub use stats::{percentile, Summary};
pub use table::{render_csv, Table};

//! Per-task experiment records.

use cas_platform::{ProblemId, ServerId, TaskId};
use cas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Why a task was dropped by the fault-handling path (reason codes the
/// churn accounting reports: every non-completed task under churn must
/// carry one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The task's server crashed and the re-dispatch budget
    /// (`ExperimentConfig::redispatch_budget`) was exhausted.
    RedispatchBudget,
    /// The task's server crashed while no live server could solve its
    /// problem (the whole solver set was down or excluded).
    NoLiveSolver,
    /// The task waited in the bounded admission buffer past its admission
    /// deadline (or arrived to a full buffer) and was shed by the
    /// backpressure path before ever reaching a server.
    AdmissionDeadline,
}

impl DropReason {
    /// Stable reason-code string for bench JSON output.
    pub fn code(&self) -> &'static str {
        match self {
            DropReason::RedispatchBudget => "redispatch_budget",
            DropReason::NoLiveSolver => "no_live_solver",
            DropReason::AdmissionDeadline => "admission_deadline",
        }
    }
}

/// How a task's life ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// Output data arrived back at the client at this time — the paper's
    /// real completion date `F(i,j)`.
    Completed {
        /// When the client received the results.
        finished: SimTime,
    },
    /// Every candidate server rejected the task (memory exhaustion /
    /// collapse) — the tasks missing from the "number of completed tasks"
    /// row of Table 6.
    Failed,
    /// Still in flight when the experiment's horizon was reached.
    InFlight,
    /// Explicitly dropped by the fault-handling path, with a reason code
    /// (crash re-dispatch budget exhausted, no live solver, …).
    Dropped {
        /// Why the task was given up on.
        reason: DropReason,
    },
}

/// Everything the harness records about one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task.
    pub task: TaskId,
    /// The problem it instantiates.
    pub problem: ProblemId,
    /// Submission time `a(i,j)`.
    pub arrival: SimTime,
    /// The server it finally ran on (the last one tried, for failures).
    pub server: Option<ServerId>,
    /// Unloaded duration `d(i,j)` on that server, from the static table.
    pub unloaded_duration: f64,
    /// The HTM's *final* simulated completion date `f(i,j)` — updated as
    /// later tasks arrived and shared the server. This is the "simulated
    /// completion date" column of Table 1. `None` when the task was never
    /// committed.
    pub predicted_completion: Option<SimTime>,
    /// The HTM's what-if completion estimate at commit time (before any
    /// subsequent arrival). The gap between this and
    /// [`Self::predicted_completion`] is the perturbation the task
    /// eventually suffered.
    pub commit_prediction: Option<SimTime>,
    /// How it ended.
    pub outcome: TaskOutcome,
    /// Number of placement attempts (1 = accepted first try; >1 means
    /// fault-tolerant resubmission happened).
    pub attempts: u32,
}

impl TaskRecord {
    /// Completion time, if completed.
    pub fn finished(&self) -> Option<SimTime> {
        match self.outcome {
            TaskOutcome::Completed { finished } => Some(finished),
            _ => None,
        }
    }

    /// `true` when the task completed.
    pub fn is_completed(&self) -> bool {
        matches!(self.outcome, TaskOutcome::Completed { .. })
    }

    /// Flow time `F(i,j) − a(i,j)`: the time the task spent in the system.
    pub fn flow(&self) -> Option<f64> {
        self.finished().map(|f| (f - self.arrival).as_secs())
    }

    /// Stretch: flow divided by the unloaded duration on the same server —
    /// "by what factor a query has been slowed down relative to the time it
    /// takes on the same but unloaded server".
    pub fn stretch(&self) -> Option<f64> {
        let flow = self.flow()?;
        if self.unloaded_duration <= 0.0 {
            return None;
        }
        Some(flow / self.unloaded_duration)
    }

    /// Signed HTM prediction error (predicted − actual), when both exist.
    pub fn prediction_error(&self) -> Option<f64> {
        let actual = self.finished()?;
        let predicted = self.predicted_completion?;
        Some((predicted - actual).as_secs())
    }

    /// The paper's Table 1 "percentage of error": `100 · |pred − real| /
    /// real duration of the task`.
    pub fn prediction_error_pct(&self) -> Option<f64> {
        let err = self.prediction_error()?.abs();
        let flow = self.flow()?;
        if flow <= 0.0 {
            return None;
        }
        Some(100.0 * err / flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival: f64, finished: Option<f64>, unloaded: f64) -> TaskRecord {
        TaskRecord {
            task: TaskId(1),
            problem: ProblemId(0),
            arrival: SimTime::from_secs(arrival),
            server: Some(ServerId(0)),
            unloaded_duration: unloaded,
            predicted_completion: None,
            commit_prediction: None,
            outcome: match finished {
                Some(f) => TaskOutcome::Completed {
                    finished: SimTime::from_secs(f),
                },
                None => TaskOutcome::Failed,
            },
            attempts: 1,
        }
    }

    #[test]
    fn flow_and_stretch() {
        let r = rec(10.0, Some(60.0), 25.0);
        assert_eq!(r.flow(), Some(50.0));
        assert_eq!(r.stretch(), Some(2.0));
        assert!(r.is_completed());
    }

    #[test]
    fn failed_task_has_no_flow() {
        let r = rec(10.0, None, 25.0);
        assert_eq!(r.flow(), None);
        assert_eq!(r.stretch(), None);
        assert!(!r.is_completed());
    }

    #[test]
    fn prediction_error_table1_definition() {
        let mut r = rec(33.0, Some(80.79), 40.0);
        r.predicted_completion = Some(SimTime::from_secs(79.99));
        let err = r.prediction_error().unwrap();
        assert!((err - (-0.8)).abs() < 1e-9);
        // Table 1 row 1: |−0.8| / (80.79 − 33.00) × 100 ≈ 1.67 %.
        let pct = r.prediction_error_pct().unwrap();
        assert!((pct - 1.674).abs() < 0.01, "pct = {pct}");
    }

    #[test]
    fn zero_unloaded_duration_gives_no_stretch() {
        let r = rec(0.0, Some(5.0), 0.0);
        assert_eq!(r.stretch(), None);
    }

    #[test]
    fn dropped_task_has_reason_code_and_no_flow() {
        let mut r = rec(10.0, None, 25.0);
        r.outcome = TaskOutcome::Dropped {
            reason: DropReason::RedispatchBudget,
        };
        assert_eq!(r.flow(), None);
        assert!(!r.is_completed());
        assert_eq!(DropReason::RedispatchBudget.code(), "redispatch_budget");
        assert_eq!(DropReason::NoLiveSolver.code(), "no_live_solver");
        assert_eq!(DropReason::AdmissionDeadline.code(), "admission_deadline");
    }
}

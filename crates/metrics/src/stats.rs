//! Summary statistics for aggregating replications.
//!
//! The paper reports, per cell, the mean over repeated executions of the
//! same metatask ("values of a metatask are the mean of N executions").
//! [`Summary`] carries the mean plus dispersion measures so EXPERIMENTS.md
//! can report uncertainty alongside.

use serde::{Deserialize, Serialize};

/// Mean / std / min / max / median / 95 % CI half-width of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Median.
    pub median: f64,
    /// Half-width of the 95 % normal-approximation confidence interval of
    /// the mean (`1.96 · std / √n`; 0 for n ≤ 1).
    pub ci95: f64,
}

impl Summary {
    /// Computes a summary. Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values are finite"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            mean,
            std,
            min: sorted[0],
            max: sorted[n - 1],
            median,
            ci95: if n > 1 {
                1.96 * std / (n as f64).sqrt()
            } else {
                0.0
            },
        })
    }

    /// `mean ± ci95` as a compact string.
    pub fn display_mean_ci(&self) -> String {
        if self.n > 1 {
            format!("{:.1}±{:.1}", self.mean, self.ci95)
        } else {
            format!("{:.1}", self.mean)
        }
    }
}

/// Nearest-rank percentile of a sample: the smallest value such that at
/// least `q · n` of the sample is ≤ it (`q` in `(0, 1]`; `q = 0.5` is the
/// lower median, `q = 0.99` the p99). Returns `None` for an empty sample.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values are finite"));
    let n = sorted.len();
    let rank = ((n as f64 * q).ceil() as usize).max(1) - 1;
    Some(sorted[rank.min(n - 1)])
}

/// The relative change `100 · (b − a) / a` in percent — used when comparing
/// a heuristic's metric to the MCT baseline in EXPERIMENTS.md.
pub fn relative_change_pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        return 0.0;
    }
    100.0 * (b - a) / a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std - 1.5811).abs() < 1e-3);
        assert!((s.ci95 - 1.96 * 1.5811 / 5f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn even_length_median() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.display_mean_ci(), "7.0");
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn relative_change() {
        assert_eq!(relative_change_pct(100.0, 80.0), -20.0);
        assert_eq!(relative_change_pct(50.0, 75.0), 50.0);
        assert_eq!(relative_change_pct(0.0, 10.0), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.5), Some(3.0));
        assert_eq!(percentile(&v, 0.99), Some(5.0));
        assert_eq!(percentile(&v, 1.0), Some(5.0));
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn display_with_ci() {
        let s = Summary::of(&[10.0, 12.0]).unwrap();
        assert!(s.display_mean_ci().contains('±'));
    }
}

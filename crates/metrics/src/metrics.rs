//! The observed metrics of §3.
//!
//! All five quantities the paper reports per experiment, computed over a
//! slice of [`TaskRecord`]s:
//!
//! * **makespan** — completion time of the last finished task,
//!   `max_j F(i,j)`;
//! * **sum-flow** — `Σ_j (F(i,j) − a(i,j))`, "the amount of time that the
//!   completion of all tasks has taken on all the resources";
//! * **max-flow** — `max_j (F(i,j) − a(i,j))`;
//! * **max-stretch** — `max_j (F(i,j) − a(i,j)) / d(i,j)`;
//! * **completed** — number of tasks that finished (500 in the paper's
//!   tables unless servers collapsed).
//!
//! Plus [`finish_sooner_count`] — the paper's quality-of-service indicator:
//! on the same metatask, how many tasks finish strictly sooner under
//! heuristic H than under MCT: `|{ t : F_H(t) < F_MCT(t) }|`.

use crate::record::TaskRecord;
use serde::{Deserialize, Serialize};

/// The metric values of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSet {
    /// Tasks submitted.
    pub submitted: usize,
    /// Tasks completed.
    pub completed: usize,
    /// Completion time of the last finished task, seconds.
    pub makespan: f64,
    /// Sum of flow times, seconds.
    pub sumflow: f64,
    /// Largest flow time, seconds.
    pub maxflow: f64,
    /// Largest stretch (dimensionless, ≥ 1 in the fair-share model).
    pub maxstretch: f64,
    /// Mean flow time, seconds (not in the paper's tables but useful in
    /// sweeps).
    pub meanflow: f64,
    /// Mean stretch (Weissman's comparison metric).
    pub meanstretch: f64,
}

impl MetricSet {
    /// Computes the metric set over `records`. Tasks that failed or were
    /// still in flight count as submitted but contribute to no time metric.
    pub fn compute(records: &[TaskRecord]) -> MetricSet {
        let mut completed = 0usize;
        let mut makespan: f64 = 0.0;
        let mut sumflow = 0.0;
        let mut maxflow: f64 = 0.0;
        let mut maxstretch: f64 = 0.0;
        let mut sumstretch = 0.0;
        let mut stretch_n = 0usize;
        for r in records {
            let Some(finished) = r.finished() else {
                continue;
            };
            completed += 1;
            makespan = makespan.max(finished.as_secs());
            let flow = r.flow().expect("completed task has flow");
            sumflow += flow;
            maxflow = maxflow.max(flow);
            if let Some(s) = r.stretch() {
                maxstretch = maxstretch.max(s);
                sumstretch += s;
                stretch_n += 1;
            }
        }
        MetricSet {
            submitted: records.len(),
            completed,
            makespan,
            sumflow,
            maxflow,
            maxstretch,
            meanflow: if completed > 0 {
                sumflow / completed as f64
            } else {
                0.0
            },
            meanstretch: if stretch_n > 0 {
                sumstretch / stretch_n as f64
            } else {
                0.0
            },
        }
    }

    /// The metric value by the row name used in the paper's tables.
    pub fn by_name(&self, name: &str) -> Option<f64> {
        Some(match name {
            "completed" => self.completed as f64,
            "makespan" => self.makespan,
            "sumflow" => self.sumflow,
            "maxflow" => self.maxflow,
            "maxstretch" => self.maxstretch,
            "meanflow" => self.meanflow,
            "meanstretch" => self.meanstretch,
            _ => return None,
        })
    }

    /// The row names of the paper's tables, in order.
    pub const PAPER_ROWS: [&'static str; 5] =
        ["completed", "makespan", "sumflow", "maxflow", "maxstretch"];
}

/// The paper's pairwise comparison: the number of tasks that finish
/// strictly sooner under `candidate` than under `baseline`.
///
/// Records are matched by task id; tasks that completed under the candidate
/// but failed under the baseline count as "sooner" (they got service at
/// all), matching the paper's user-centric reading. Tasks that failed under
/// the candidate never count.
pub fn finish_sooner_count(candidate: &[TaskRecord], baseline: &[TaskRecord]) -> usize {
    let mut count = 0;
    for c in candidate {
        let Some(fc) = c.finished() else { continue };
        let base = baseline.iter().find(|b| b.task == c.task);
        match base.and_then(|b| b.finished()) {
            Some(fb) => {
                if fc < fb {
                    count += 1;
                }
            }
            None => count += 1,
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TaskOutcome;
    use cas_platform::{ProblemId, ServerId, TaskId};
    use cas_sim::SimTime;

    fn rec(id: u64, arrival: f64, finished: Option<f64>, unloaded: f64) -> TaskRecord {
        TaskRecord {
            task: TaskId(id),
            problem: ProblemId(0),
            arrival: SimTime::from_secs(arrival),
            server: Some(ServerId(0)),
            unloaded_duration: unloaded,
            predicted_completion: None,
            commit_prediction: None,
            outcome: match finished {
                Some(f) => TaskOutcome::Completed {
                    finished: SimTime::from_secs(f),
                },
                None => TaskOutcome::Failed,
            },
            attempts: 1,
        }
    }

    #[test]
    fn metric_set_small_example() {
        let records = vec![
            rec(1, 0.0, Some(10.0), 5.0),  // flow 10, stretch 2
            rec(2, 5.0, Some(30.0), 10.0), // flow 25, stretch 2.5
            rec(3, 10.0, None, 5.0),       // failed
        ];
        let m = MetricSet::compute(&records);
        assert_eq!(m.submitted, 3);
        assert_eq!(m.completed, 2);
        assert_eq!(m.makespan, 30.0);
        assert_eq!(m.sumflow, 35.0);
        assert_eq!(m.maxflow, 25.0);
        assert_eq!(m.maxstretch, 2.5);
        assert_eq!(m.meanflow, 17.5);
        assert_eq!(m.meanstretch, 2.25);
    }

    #[test]
    fn empty_records() {
        let m = MetricSet::compute(&[]);
        assert_eq!(m.completed, 0);
        assert_eq!(m.makespan, 0.0);
        assert_eq!(m.meanflow, 0.0);
    }

    #[test]
    fn by_name_covers_paper_rows() {
        let m = MetricSet::compute(&[rec(1, 0.0, Some(10.0), 5.0)]);
        for row in MetricSet::PAPER_ROWS {
            assert!(m.by_name(row).is_some(), "{row}");
        }
        assert!(m.by_name("bogus").is_none());
    }

    #[test]
    fn finish_sooner_counts_strict_improvements() {
        let mct = vec![
            rec(1, 0.0, Some(100.0), 1.0),
            rec(2, 0.0, Some(50.0), 1.0),
            rec(3, 0.0, Some(80.0), 1.0),
        ];
        let h = vec![
            rec(1, 0.0, Some(90.0), 1.0), // sooner
            rec(2, 0.0, Some(50.0), 1.0), // tie → not sooner
            rec(3, 0.0, Some(85.0), 1.0), // later
        ];
        assert_eq!(finish_sooner_count(&h, &mct), 1);
        assert_eq!(finish_sooner_count(&mct, &h), 1);
    }

    #[test]
    fn finish_sooner_handles_failures() {
        let baseline = vec![rec(1, 0.0, None, 1.0), rec(2, 0.0, Some(10.0), 1.0)];
        let candidate = vec![rec(1, 0.0, Some(99.0), 1.0), rec(2, 0.0, None, 1.0)];
        // Task 1: candidate completed, baseline failed → sooner.
        // Task 2: candidate failed → never counts.
        assert_eq!(finish_sooner_count(&candidate, &baseline), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::record::TaskOutcome;
    use cas_platform::{ProblemId, ServerId, TaskId};
    use cas_sim::SimTime;
    use proptest::prelude::*;

    prop_compose! {
        fn arb_record(id: u64)(
            arrival in 0.0f64..1000.0,
            flow in proptest::option::of(0.1f64..500.0),
            unloaded in 0.1f64..100.0,
        ) -> TaskRecord {
            TaskRecord {
                task: TaskId(id),
                problem: ProblemId(0),
                arrival: SimTime::from_secs(arrival),
                server: Some(ServerId(0)),
                unloaded_duration: unloaded,
                predicted_completion: None,
                commit_prediction: None,
                outcome: match flow {
                    Some(f) => TaskOutcome::Completed {
                        finished: SimTime::from_secs(arrival + f),
                    },
                    None => TaskOutcome::Failed,
                },
                attempts: 1,
            }
        }
    }

    fn arb_records(n: usize) -> impl Strategy<Value = Vec<TaskRecord>> {
        (0..n as u64).map(arb_record).collect::<Vec<_>>()
    }

    proptest! {
        /// Aggregate identities: sumflow is the sum of flows, maxima bound
        /// means, completed counts match, makespan covers every completion.
        #[test]
        fn metric_set_identities(records in arb_records(30)) {
            let m = MetricSet::compute(&records);
            let completed: Vec<&TaskRecord> =
                records.iter().filter(|r| r.is_completed()).collect();
            prop_assert_eq!(m.completed, completed.len());
            prop_assert_eq!(m.submitted, records.len());
            let sumflow: f64 = completed.iter().filter_map(|r| r.flow()).sum();
            prop_assert!((m.sumflow - sumflow).abs() < 1e-9);
            prop_assert!(m.maxflow >= m.meanflow - 1e-12);
            prop_assert!(m.maxstretch >= m.meanstretch - 1e-12);
            for r in &completed {
                prop_assert!(m.makespan + 1e-12 >= r.finished().unwrap().as_secs());
            }
        }

        /// Pairwise counts cannot double-count: tasks sooner under A vs B
        /// plus sooner under B vs A never exceed the number of tasks both
        /// completed (ties and failures belong to neither side).
        #[test]
        fn finish_sooner_antisymmetry(
            a in arb_records(25),
            b in arb_records(25),
        ) {
            let ab = finish_sooner_count(&a, &b);
            let ba = finish_sooner_count(&b, &a);
            let both = a.iter().filter(|r| r.is_completed()).count()
                .max(b.iter().filter(|r| r.is_completed()).count());
            prop_assert!(ab + ba <= both + 25); // loose structural bound
            // Exact property on the strictly-comparable subset:
            let comparable = a.iter().zip(&b)
                .filter(|(x, y)| x.is_completed() && y.is_completed())
                .count();
            let strict_ab = a.iter().zip(&b)
                .filter(|(x, y)| match (x.finished(), y.finished()) {
                    (Some(fx), Some(fy)) => fx < fy,
                    _ => false,
                }).count();
            let strict_ba = a.iter().zip(&b)
                .filter(|(x, y)| match (x.finished(), y.finished()) {
                    (Some(fx), Some(fy)) => fy < fx,
                    _ => false,
                }).count();
            prop_assert!(strict_ab + strict_ba <= comparable);
        }

        /// A summary always brackets its sample.
        #[test]
        fn summary_brackets_sample(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = crate::stats::Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-6 && s.mean <= s.max + 1e-6);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.std >= 0.0);
            prop_assert_eq!(s.n, values.len());
        }
    }
}

//! Fixed-width text tables in the layout of the paper's result tables.
//!
//! The experiment binaries print their reproduction of each paper table
//! through [`Table`]; the same structure serialises to CSV and JSON so
//! EXPERIMENTS.md and downstream analysis read from one source.

use serde::Serialize;
use std::fmt::Write as _;

/// A rectangular table: row labels × column labels, string cells.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers (not counting the row-label column).
    pub columns: Vec<String>,
    /// Rows: label plus one cell per column.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push((label.into(), cells));
    }

    /// Appends a row of numbers with `prec` decimal places.
    pub fn push_row_f64(&mut self, label: impl Into<String>, values: &[f64], prec: usize) {
        let cells = values.iter().map(|v| format!("{v:.prec$}")).collect();
        self.push_row(label, cells);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(0))
            .max()
            .unwrap_or(0);
        widths.push(label_w);
        for (i, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, cells)| cells[i].len())
                .chain(std::iter::once(col.len()))
                .max()
                .unwrap_or(col.len());
            widths.push(w);
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len();
        let _ = writeln!(out, "{}", "=".repeat(total.min(120)));
        let _ = write!(out, "{:w$}", "", w = widths[0]);
        for (col, w) in self.columns.iter().zip(&widths[1..]) {
            let _ = write!(out, " | {col:>w$}");
        }
        out.push('\n');
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:w$}", w = widths[0]);
            for (cell, w) in cells.iter().zip(&widths[1..]) {
                let _ = write!(out, " | {cell:>w$}");
            }
            out.push('\n');
        }
        out
    }

    /// Serialises to JSON (for EXPERIMENTS.md regeneration tooling).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialises")
    }
}

/// Renders any table as CSV (row label in the first column).
pub fn render_csv(table: &Table) -> String {
    let mut out = String::new();
    let _ = write!(out, "metric");
    for col in &table.columns {
        let _ = write!(out, ",{col}");
    }
    out.push('\n');
    for (label, cells) in &table.rows {
        let _ = write!(out, "{label}");
        for cell in cells {
            let _ = write!(out, ",{cell}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Table 5-style",
            vec!["MCT".into(), "HMCT".into(), "MP".into(), "MSF".into()],
        );
        t.push_row_f64("makespan", &[9906.0, 9908.0, 10162.0, 9905.0], 0);
        t.push_row_f64("sumflow", &[25922.0, 19934.0, 26383.0, 19702.0], 0);
        t
    }

    #[test]
    fn render_aligns_and_includes_everything() {
        let s = sample().render();
        assert!(s.contains("Table 5-style"));
        assert!(s.contains("MCT"));
        assert!(s.contains("9906"));
        assert!(s.contains("sumflow"));
        // Header separator present.
        assert!(s.contains("---"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = render_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "metric,MCT,HMCT,MP,MSF");
        assert!(lines[1].starts_with("makespan,9906"));
    }

    #[test]
    fn json_contains_rows() {
        let js = sample().to_json();
        assert!(js.contains("\"makespan\""));
        assert!(js.contains("\"columns\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row("r", vec!["1".into(), "2".into()]);
    }
}

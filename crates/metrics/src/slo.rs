//! Production SLO metrics for trace-driven campaigns.
//!
//! A replayed trace carries a user/app class per task; this module folds a
//! campaign's [`TaskRecord`]s into per-class service-level objectives —
//! p50/p99 response stretch, drop rate, mean admission-buffer wait — the
//! quantities a production operator would alert on, as opposed to the
//! paper's whole-campaign makespan/sum-flow aggregates.

use crate::record::{TaskOutcome, TaskRecord};
use crate::stats::percentile;
use serde::{Deserialize, Serialize};

/// Per-user-class SLO summary over one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSlo {
    /// The user/app class id from the trace.
    pub user: u32,
    /// Tasks this class submitted.
    pub tasks: usize,
    /// Tasks that completed.
    pub completed: usize,
    /// Tasks that ended `Dropped` (any reason, admission shedding included).
    pub dropped: usize,
    /// Tasks that ended `Failed`.
    pub failed: usize,
    /// `dropped / tasks` in percent.
    pub drop_rate_pct: f64,
    /// Median response stretch over completed tasks (`None` when none
    /// completed or no task had a positive unloaded duration).
    pub p50_stretch: Option<f64>,
    /// 99th-percentile response stretch over completed tasks.
    pub p99_stretch: Option<f64>,
    /// Mean time tasks of this class spent in the admission buffer, over
    /// all tasks of the class (0 when backpressure is off).
    pub mean_buffered_s: f64,
}

/// Folds per-task records into per-class SLOs. `users[i]` is the class of
/// `records[i]`; `buffered_s[i]` is the admission-buffer wait of
/// `records[i]` in seconds (pass `&[]` when backpressure is off — waits
/// then count as zero). Classes come back sorted by id.
pub fn per_class_slo(records: &[TaskRecord], users: &[u32], buffered_s: &[f64]) -> Vec<ClassSlo> {
    assert_eq!(records.len(), users.len(), "one user class per record");
    let mut classes: Vec<u32> = users.to_vec();
    classes.sort_unstable();
    classes.dedup();
    classes
        .into_iter()
        .map(|class| {
            let mut stretches = Vec::new();
            let (mut tasks, mut completed, mut dropped, mut failed) = (0usize, 0usize, 0, 0);
            let mut buffered_total = 0.0;
            for (i, rec) in records.iter().enumerate() {
                if users[i] != class {
                    continue;
                }
                tasks += 1;
                buffered_total += buffered_s.get(i).copied().unwrap_or(0.0);
                match rec.outcome {
                    TaskOutcome::Completed { .. } => {
                        completed += 1;
                        if let Some(s) = rec.stretch() {
                            stretches.push(s);
                        }
                    }
                    TaskOutcome::Dropped { .. } => dropped += 1,
                    TaskOutcome::Failed => failed += 1,
                    TaskOutcome::InFlight => {}
                }
            }
            ClassSlo {
                user: class,
                tasks,
                completed,
                dropped,
                failed,
                drop_rate_pct: if tasks == 0 {
                    0.0
                } else {
                    100.0 * dropped as f64 / tasks as f64
                },
                p50_stretch: percentile(&stretches, 0.5),
                p99_stretch: percentile(&stretches, 0.99),
                mean_buffered_s: if tasks == 0 {
                    0.0
                } else {
                    buffered_total / tasks as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DropReason;
    use cas_platform::{ProblemId, ServerId, TaskId};
    use cas_sim::SimTime;

    fn rec(arrival: f64, outcome: TaskOutcome, unloaded: f64) -> TaskRecord {
        TaskRecord {
            task: TaskId(0),
            problem: ProblemId(0),
            arrival: SimTime::from_secs(arrival),
            server: Some(ServerId(0)),
            unloaded_duration: unloaded,
            predicted_completion: None,
            commit_prediction: None,
            outcome,
            attempts: 1,
        }
    }

    fn done(arrival: f64, finished: f64, unloaded: f64) -> TaskRecord {
        rec(
            arrival,
            TaskOutcome::Completed {
                finished: SimTime::from_secs(finished),
            },
            unloaded,
        )
    }

    #[test]
    fn splits_by_class_and_computes_stretch_percentiles() {
        // Class 0: stretches 2.0 and 4.0. Class 7: one drop, one completion.
        let records = vec![
            done(0.0, 20.0, 10.0),
            done(0.0, 40.0, 10.0),
            rec(
                0.0,
                TaskOutcome::Dropped {
                    reason: DropReason::AdmissionDeadline,
                },
                10.0,
            ),
            done(5.0, 15.0, 10.0),
        ];
        let users = vec![0, 0, 7, 7];
        let slo = per_class_slo(&records, &users, &[0.0, 0.0, 3.0, 1.0]);
        assert_eq!(slo.len(), 2);
        assert_eq!(slo[0].user, 0);
        assert_eq!(slo[0].tasks, 2);
        assert_eq!(slo[0].p50_stretch, Some(2.0));
        assert_eq!(slo[0].p99_stretch, Some(4.0));
        assert_eq!(slo[0].drop_rate_pct, 0.0);
        assert_eq!(slo[1].user, 7);
        assert_eq!(slo[1].dropped, 1);
        assert_eq!(slo[1].completed, 1);
        assert_eq!(slo[1].drop_rate_pct, 50.0);
        assert_eq!(slo[1].p50_stretch, Some(1.0));
        assert!((slo[1].mean_buffered_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_buffered_slice_counts_as_zero_wait() {
        let records = vec![done(0.0, 10.0, 10.0)];
        let slo = per_class_slo(&records, &[3], &[]);
        assert_eq!(slo.len(), 1);
        assert_eq!(slo[0].mean_buffered_s, 0.0);
        assert_eq!(slo[0].p50_stretch, Some(1.0));
    }

    #[test]
    fn class_with_no_completions_has_no_stretch() {
        let records = vec![rec(
            0.0,
            TaskOutcome::Dropped {
                reason: DropReason::AdmissionDeadline,
            },
            10.0,
        )];
        let slo = per_class_slo(&records, &[1], &[2.5]);
        assert_eq!(slo[0].p50_stretch, None);
        assert_eq!(slo[0].p99_stretch, None);
        assert_eq!(slo[0].drop_rate_pct, 100.0);
    }
}

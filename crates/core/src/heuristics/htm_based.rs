//! The HTM-based heuristics: HMCT (Fig. 2), MP (Fig. 3), MSF (Fig. 4) and
//! Weissman's MNI.
//!
//! All four share the same skeleton — ask the HTM a what-if question per
//! candidate server, take an argmin — and differ only in the objective:
//!
//! | policy | objective                                   | tie-break      |
//! |--------|---------------------------------------------|----------------|
//! | HMCT   | `f(i, n_i+1)` (completion date)             | lowest id      |
//! | MP     | `Σ_j π(i, j)` (sum of perturbations)        | completion date|
//! | MSF    | `Σ_j π(i, j) + d(i, n_i+1)` (sum-flow delta)| lowest id      |
//! | MNI    | number of tasks with `π > 0`                | completion date|

use super::{Heuristic, SchedView, TIE_EPS};
use cas_platform::ServerId;

/// Historical Minimum Completion Time (Fig. 2): MCT's objective computed on
/// the HTM's simulation instead of load averages.
#[derive(Debug, Default, Clone, Copy)]
pub struct Hmct;

impl Heuristic for Hmct {
    fn name(&self) -> &'static str {
        "HMCT"
    }

    fn uses_htm(&self) -> bool {
        true
    }

    // HMCT's objective is the probe's completion date alone — the
    // perturbation list is never read, so drains may truncate.
    fn needs_perturbations(&self) -> bool {
        false
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        view.argmin(|v, s| v.predict(s).map(|p| p.completion.as_secs()))
    }
}

/// Minimum Perturbation (Fig. 3): delay already-mapped tasks as little as
/// possible; when every candidate perturbs equally (e.g. all idle), fall
/// back to the completion date.
#[derive(Debug, Default, Clone, Copy)]
pub struct Mp;

impl Heuristic for Mp {
    fn name(&self) -> &'static str {
        "MP"
    }

    fn uses_htm(&self) -> bool {
        true
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        // Gather per-candidate sums first to apply Fig. 3's "if all equal"
        // rule exactly.
        let candidates = view.candidates.clone();
        let mut sums: Vec<(ServerId, f64)> = Vec::with_capacity(candidates.len());
        for &s in candidates.iter() {
            if let Some(p) = view.predict(s) {
                sums.push((s, p.sum_perturbation()));
            }
        }
        let (first, rest) = sums.split_first()?;
        let all_equal = rest.iter().all(|(_, v)| (v - first.1).abs() <= TIE_EPS);
        if all_equal {
            // Fig. 3 line 5: map to the server minimising f(i, n_i+1).
            view.argmin(|v, s| v.predict(s).map(|p| p.completion.as_secs()))
        } else {
            view.argmin(|v, s| v.predict(s).map(|p| p.sum_perturbation()))
        }
    }
}

/// Minimum Sum Flow (Fig. 4): minimise the increase of the system-wide
/// sum-flow, `Σ_j π(i, j) + d(i, n_i+1)` — "the same as MTI (minimize total
/// interference) proposed by Weissman".
#[derive(Debug, Default, Clone, Copy)]
pub struct Msf;

impl Heuristic for Msf {
    fn name(&self) -> &'static str {
        "MSF"
    }

    fn uses_htm(&self) -> bool {
        true
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        view.argmin(|v, s| v.predict(s).map(|p| p.msf_objective()))
    }
}

/// Weissman's MNI: minimise the *number* of tasks that experience
/// interference; break ties on the new task's completion date.
#[derive(Debug, Default, Clone, Copy)]
pub struct Mni;

impl Heuristic for Mni {
    fn name(&self) -> &'static str {
        "MNI"
    }

    fn uses_htm(&self) -> bool {
        true
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        // Lexicographic (count, completion) argmin, encoded as a single
        // scan to stay deterministic.
        let candidates = view.candidates.clone();
        let mut best: Option<(ServerId, usize, f64)> = None;
        for &s in candidates.iter() {
            let Some(p) = view.predict(s) else { continue };
            let count = p.interfered_count(TIE_EPS);
            let completion = p.completion.as_secs();
            best = match best {
                None => Some((s, count, completion)),
                Some((_, bc, bf)) if count < bc || (count == bc && completion + TIE_EPS < bf) => {
                    Some((s, count, completion))
                }
                other => other,
            };
        }
        best.map(|(s, _, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::htm::{Htm, SyncPolicy};

    #[test]
    fn hmct_picks_fastest_idle_server() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let s = select_once(&mut Hmct, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(0)));
    }

    #[test]
    fn hmct_sees_queued_work_that_mct_misses() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3(); // stale: everyone reports idle
                              // Three tasks already committed to S0; the load report hasn't
                              // caught up but the HTM knows.
        for id in 10..13 {
            htm.commit(cas_sim::SimTime::ZERO, ServerId(0), &task(id, 0.0));
        }
        let s = select_once(&mut Hmct, &mut htm, &loads, &costs, task(1, 0.0));
        // On S0 the new task shares with 3 others (completion ≈ 400);
        // S1 idle gives 150.
        assert_eq!(s, Some(ServerId(1)));
    }

    #[test]
    fn mp_prefers_idle_slow_server() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        // S0 busy, S1 busy, S2 (slowest) idle: MP avoids all perturbation.
        htm.commit(cas_sim::SimTime::ZERO, ServerId(0), &task(10, 0.0));
        htm.commit(cas_sim::SimTime::ZERO, ServerId(1), &task(11, 0.0));
        let s = select_once(&mut Mp, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(
            s,
            Some(ServerId(2)),
            "MP loads slower servers because they are idle"
        );
    }

    #[test]
    fn mp_tie_breaks_on_completion_when_all_idle() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        // All idle → all perturbations are zero → Fig. 3 line 5: fastest.
        let s = select_once(&mut Mp, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(0)));
    }

    #[test]
    fn msf_balances_perturbation_against_duration() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        // S0 runs one task with 100 s left. Placing on S0: perturbation 100
        // (T10 delayed by sharing) + own flow 200 → 300. S1 idle: 0 + 150.
        // S2 idle: 0 + 300. MSF picks S1.
        htm.commit(cas_sim::SimTime::ZERO, ServerId(0), &task(10, 0.0));
        let s = select_once(&mut Msf, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(1)));
    }

    #[test]
    fn msf_accepts_small_perturbation_for_big_speed_gain() {
        // S0's queued task is nearly done: perturbing it slightly beats
        // running on the much slower idle S2. (Disable S1 to force the
        // choice.)
        let mut costs = cas_platform::CostTable::new(3);
        costs.add_problem(
            cas_platform::Problem::new("p", 0.0, 0.0, 0.0),
            vec![
                Some(cas_platform::PhaseCosts::new(0.0, 100.0, 0.0)),
                None,
                Some(cas_platform::PhaseCosts::new(0.0, 300.0, 0.0)),
            ],
        );
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        htm.commit(cas_sim::SimTime::ZERO, ServerId(0), &task(10, 0.0));
        // Decide at t=95: T10 has 5 s left. On S0: π = 5, own flow ≈ 105
        // → 110. On S2: 0 + 300. MSF takes the perturbation.
        let s = select_once(&mut Msf, &mut htm, &loads, &costs, task(1, 95.0));
        assert_eq!(s, Some(ServerId(0)));
        // MP, by contrast, refuses to perturb and picks the slow server.
        let mut htm2 = Htm::new(costs.clone(), SyncPolicy::None);
        htm2.commit(cas_sim::SimTime::ZERO, ServerId(0), &task(10, 0.0));
        let s2 = select_once(&mut Mp, &mut htm2, &loads, &costs, task(1, 95.0));
        assert_eq!(s2, Some(ServerId(2)));
    }

    #[test]
    fn mni_minimises_victim_count() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        // S0 runs two tasks, S1 runs one, S2 runs one.
        for (srv, id) in [(0, 10), (0, 11), (1, 12), (2, 13)] {
            htm.commit(cas_sim::SimTime::ZERO, ServerId(srv), &task(id, 0.0));
        }
        let s = select_once(&mut Mni, &mut htm, &loads, &costs, task(1, 0.0));
        // One victim on S1 or S2; S1 gives the earlier completion.
        assert_eq!(s, Some(ServerId(1)));
    }

    #[test]
    fn all_policies_handle_empty_candidates() {
        let costs = table3();
        let loads = loads3();
        for kind in [
            crate::heuristics::HeuristicKind::Hmct,
            crate::heuristics::HeuristicKind::Mp,
            crate::heuristics::HeuristicKind::Msf,
            crate::heuristics::HeuristicKind::Mni,
        ] {
            let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
            let mut rng = cas_sim::RngStream::derive(1, cas_sim::StreamKind::TieBreak);
            let t = task(1, 0.0);
            let mut view = super::super::SchedView::new(
                t.arrival,
                t,
                vec![],
                &costs,
                &loads,
                &mut htm,
                &mut rng,
            );
            assert_eq!(kind.build().select(&mut view), None, "{kind:?}");
        }
    }
}

//! Simple baselines for ablations: round-robin, random, min-load, OLB.
//!
//! None of these appear in the paper's tables, but they anchor the sweeps:
//! a heuristic that cannot beat round-robin on a metric is not extracting
//! value from its information channel.

use super::{Heuristic, SchedView};
use cas_platform::ServerId;

/// Cycles through candidates in id order, one assignment each.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin {
    next: usize,
}

impl Heuristic for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn uses_htm(&self) -> bool {
        false
    }

    // Never issues a what-if query, so no perturbation is ever read.
    fn needs_perturbations(&self) -> bool {
        false
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        if view.candidates.is_empty() {
            return None;
        }
        let pick = view.candidates[self.next % view.candidates.len()];
        self.next = (self.next + 1) % view.candidates.len().max(1);
        Some(pick)
    }
}

/// Uniform random candidate, drawn from the dedicated tie-break stream.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomChoice;

impl Heuristic for RandomChoice {
    fn name(&self) -> &'static str {
        "RAND"
    }

    fn uses_htm(&self) -> bool {
        false
    }

    // Never issues a what-if query, so no perturbation is ever read.
    fn needs_perturbations(&self) -> bool {
        false
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        if view.candidates.is_empty() {
            return None;
        }
        let n = view.candidates.len();
        let idx = view.rng().choose_index(n);
        Some(view.candidates[idx])
    }
}

/// Lowest corrected load; ignores task costs entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct MinLoad;

impl Heuristic for MinLoad {
    fn name(&self) -> &'static str {
        "MINLOAD"
    }

    fn uses_htm(&self) -> bool {
        false
    }

    // Never issues a what-if query, so no perturbation is ever read.
    fn needs_perturbations(&self) -> bool {
        false
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        view.argmin(|v, s| Some(v.load(s)))
    }
}

/// Opportunistic Load Balancing: the first (lowest-id) server the agent
/// believes idle; if none, fall back to the lowest load.
#[derive(Debug, Default, Clone, Copy)]
pub struct Olb;

impl Heuristic for Olb {
    fn name(&self) -> &'static str {
        "OLB"
    }

    fn uses_htm(&self) -> bool {
        false
    }

    // Never issues a what-if query, so no perturbation is ever read.
    fn needs_perturbations(&self) -> bool {
        false
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        let candidates = view.candidates.clone();
        if let Some(&idle) = candidates.iter().find(|&&s| view.load(s) < 0.5) {
            return Some(idle);
        }
        view.argmin(|v, s| Some(v.load(s)))
    }
}

/// KPB — *k-percent best* (Maheswaran, Ali, Siegel, Hensgen & Freund,
/// HCW'99, the paper that defined MCT): restrict the candidate list to the
/// `k` % of servers with the best *static* cost for this problem, then run
/// MCT's completion estimate among them. With `k = 100` it degenerates to
/// MCT; with `k` small it approaches fastest-server-only. It hedges MCT's
/// tendency to waste fast machines on tasks that barely benefit.
#[derive(Debug, Clone, Copy)]
pub struct Kpb {
    /// Fraction of servers retained, in (0, 1].
    pub k: f64,
}

impl Default for Kpb {
    fn default() -> Self {
        Kpb { k: 0.5 }
    }
}

impl Heuristic for Kpb {
    fn name(&self) -> &'static str {
        "KPB"
    }

    fn uses_htm(&self) -> bool {
        false
    }

    // Never issues a what-if query, so no perturbation is ever read.
    fn needs_perturbations(&self) -> bool {
        false
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        let mut by_static: Vec<(ServerId, f64)> = view
            .candidates
            .iter()
            .filter_map(|&s| {
                view.costs()
                    .unloaded_duration(view.task.problem, s)
                    .map(|d| (s, d))
            })
            .collect();
        if by_static.is_empty() {
            return None;
        }
        by_static.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        let keep = ((by_static.len() as f64 * self.k).ceil() as usize).clamp(1, by_static.len());
        let full = view.candidates.clone();
        view.candidates = by_static[..keep].iter().map(|(s, _)| *s).collect();
        let pick = view.argmin(|v, s| v.mct_estimate(s));
        view.candidates = full;
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::htm::{Htm, SyncPolicy};
    use cas_sim::SimTime;

    #[test]
    fn round_robin_cycles() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let mut rr = RoundRobin::default();
        let picks: Vec<_> = (0..6)
            .map(|i| select_once(&mut rr, &mut htm, &loads, &costs, task(i, 0.0)).unwrap())
            .collect();
        assert_eq!(
            picks,
            vec![
                ServerId(0),
                ServerId(1),
                ServerId(2),
                ServerId(0),
                ServerId(1),
                ServerId(2)
            ]
        );
    }

    #[test]
    fn random_is_deterministic_per_stream_and_covers() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let mut seen = [false; 3];
        let mut rng = cas_sim::RngStream::derive(42, cas_sim::StreamKind::TieBreak);
        for i in 0..50 {
            let t = task(i, 0.0);
            let mut view = super::super::SchedView::new(
                t.arrival,
                t,
                costs.solvers(t.problem),
                &costs,
                &loads,
                &mut htm,
                &mut rng,
            );
            let s = RandomChoice.select(&mut view).unwrap();
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn minload_follows_reports() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut loads = loads3();
        loads[0].refresh(SimTime::ZERO, 3.0);
        loads[1].refresh(SimTime::ZERO, 1.0);
        loads[2].refresh(SimTime::ZERO, 2.0);
        let s = select_once(&mut MinLoad, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(1)));
    }

    #[test]
    fn kpb_restricts_to_best_static_servers() {
        // table3: static costs 100/150/300 on S0/S1/S2. With k=0.33, only
        // S0 survives; even a huge load report on S0 cannot divert KPB.
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut loads = loads3();
        loads[0].refresh(SimTime::ZERO, 50.0);
        let mut h = Kpb { k: 0.33 };
        assert_eq!(
            select_once(&mut h, &mut htm, &loads, &costs, task(1, 0.0)),
            Some(ServerId(0))
        );
        // With k=1.0 KPB degenerates to MCT and escapes the loaded server.
        let mut h = Kpb { k: 1.0 };
        assert_eq!(
            select_once(&mut h, &mut htm, &loads, &costs, task(2, 0.0)),
            Some(ServerId(1))
        );
    }

    #[test]
    fn kpb_keeps_at_least_one_candidate() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let mut h = Kpb { k: 0.01 };
        assert!(select_once(&mut h, &mut htm, &loads, &costs, task(1, 0.0)).is_some());
    }

    #[test]
    fn olb_prefers_idle_then_min_load() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut loads = loads3();
        loads[0].refresh(SimTime::ZERO, 2.0);
        loads[1].refresh(SimTime::ZERO, 0.0);
        loads[2].refresh(SimTime::ZERO, 1.0);
        let s = select_once(&mut Olb, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(1)));
        // Nobody idle → min load.
        loads[1].refresh(SimTime::ZERO, 3.0);
        let s = select_once(&mut Olb, &mut htm, &loads, &costs, task(2, 0.0));
        assert_eq!(s, Some(ServerId(2)));
    }
}

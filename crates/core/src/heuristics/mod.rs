//! Scheduling heuristics (§4 and Figs. 2–4).
//!
//! Every policy implements [`Heuristic`]: given a [`SchedView`] — the
//! agent's window onto the world at decision time — pick a server. The view
//! offers two information channels, mirroring the paper's two worlds:
//!
//! * `load(s)` / `mct_estimate(s)` — the NetSolve information model: static
//!   costs plus stale, correction-adjusted load reports. This is all MCT
//!   ever sees.
//! * `predict(s)` — an HTM what-if query (simulated completion and
//!   perturbations). HMCT, MP, MSF and MNI are built on this.
//!
//! Selections are deterministic: all argmin scans break exact ties by
//! lowest server id (and [`RandomChoice`] draws from its own dedicated RNG
//! stream), so experiments are reproducible bit-for-bit.

mod htm_based;
mod mct;
mod memaware;
mod simple;

pub use htm_based::{Hmct, Mni, Mp, Msf};
pub use mct::Mct;
pub use memaware::MemAware;
pub use simple::{Kpb, MinLoad, Olb, RandomChoice, RoundRobin};

use crate::prediction::Prediction;
use crate::whatif::WhatIf;
use cas_platform::{CostTable, LoadReport, ServerId, TaskInstance};
use cas_sim::{RngStream, SimTime};

/// Tolerance for "equal" objective values in tie-break rules (MP's
/// "if all π are equal" test of Fig. 3). Objectives are sums of simulated
/// seconds, so an absolute epsilon in seconds is appropriate.
pub const TIE_EPS: f64 = 1e-9;

/// Reusable storage for one decision's memoised what-if answers.
///
/// A [`SchedView`] lives for one scheduling decision, but a run makes one
/// decision per task arrival — hundreds of thousands in a campaign. Owning
/// a fresh `HashMap` per view put a hash-map allocation on every decision;
/// the engine instead keeps one `DecisionMemo` for the whole run and lends
/// it to each view ([`SchedView::with_memo`]), which resets only the
/// entries the previous decision touched. Entries are dense by server
/// index: a memo probe is an array read, not a hash.
#[derive(Debug, Default)]
pub struct DecisionMemo {
    /// `entries[s]`: `None` = not yet queried this decision;
    /// `Some(None)` = queried, server cannot solve; `Some(Some(p))` =
    /// memoised prediction.
    entries: Vec<Option<Option<Prediction>>>,
    /// Indices written this decision (sparse reset).
    touched: Vec<u32>,
}

impl DecisionMemo {
    /// An empty memo; buffers grow to the server count on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new decision over `n_servers`: clears the previous
    /// decision's entries (sparse) and ensures capacity.
    fn begin(&mut self, n_servers: usize) {
        for &i in &self.touched {
            self.entries[i as usize] = None;
        }
        self.touched.clear();
        if self.entries.len() < n_servers {
            self.entries.resize_with(n_servers, || None);
        }
    }

    fn get(&self, server: ServerId) -> Option<&Option<Prediction>> {
        self.entries.get(server.index()).and_then(|e| e.as_ref())
    }

    fn set(&mut self, server: ServerId, p: Option<Prediction>) {
        // Grow on demand: a view's throw-away memo starts with no storage
        // at all, so views that are immediately upgraded via `with_memo`
        // (the engine path) never allocate here.
        if self.entries.len() <= server.index() {
            self.entries.resize_with(server.index() + 1, || None);
        }
        let slot = &mut self.entries[server.index()];
        if slot.is_none() {
            self.touched.push(server.index() as u32);
        }
        *slot = Some(p);
    }
}

/// The memo a view works against: its own (stand-alone construction, as in
/// tests and benches) or one lent by the engine for the whole run.
#[derive(Debug)]
enum MemoSlot<'a> {
    Owned(DecisionMemo),
    Shared(&'a mut DecisionMemo),
}

impl MemoSlot<'_> {
    fn get(&self) -> &DecisionMemo {
        match self {
            MemoSlot::Owned(m) => m,
            MemoSlot::Shared(m) => m,
        }
    }

    fn get_mut(&mut self) -> &mut DecisionMemo {
        match self {
            MemoSlot::Owned(m) => m,
            MemoSlot::Shared(m) => m,
        }
    }
}

/// The agent's window onto the world at one scheduling decision.
///
/// Predictions are memoised and **batched**: the first what-if query fans
/// out over the whole candidate list through [`Htm::predict_all`] (one
/// generation-cached, zero-clone drain per candidate, threaded when the
/// load justifies it), and every later query — MP re-reading the winner's
/// completion date, MNI's tie-breaks — is a memo lookup. A query for a
/// server outside the candidate list (a wrapper heuristic restoring a
/// wider list) falls back to a single [`Htm::predict`] call.
pub struct SchedView<'a> {
    /// Decision time.
    pub now: SimTime,
    /// The task to place.
    pub task: TaskInstance,
    /// Servers able to solve the task's problem (the candidate list of
    /// Figs. 2–4, line 2). Already excludes servers the agent knows to have
    /// collapsed.
    pub candidates: Vec<ServerId>,
    costs: &'a CostTable,
    loads: &'a [LoadReport],
    /// The what-if backend: one HTM, or a shard federation routing each
    /// query to the owning shard — the heuristic cannot tell.
    htm: &'a mut dyn WhatIf,
    rng: &'a mut RngStream,
    /// Memoised what-if answers, dense by server index; "cannot solve" is
    /// recorded so unsolvable servers are not re-queried.
    memo: MemoSlot<'a>,
    /// Whether the candidate list has been batch-predicted already.
    batched: bool,
    /// Per-server admission limits (RAM + swap), MB — set by the engine
    /// when memory-aware policies are in play.
    server_mem: Option<&'a [f64]>,
}

impl<'a> SchedView<'a> {
    /// Builds a view. `candidates` should come from
    /// [`CostTable::solvers`] minus known-dead servers.
    pub fn new(
        now: SimTime,
        task: TaskInstance,
        candidates: Vec<ServerId>,
        costs: &'a CostTable,
        loads: &'a [LoadReport],
        htm: &'a mut dyn WhatIf,
        rng: &'a mut RngStream,
    ) -> Self {
        SchedView {
            now,
            task,
            candidates,
            costs,
            loads,
            htm,
            rng,
            memo: MemoSlot::Owned(DecisionMemo::new()),
            batched: false,
            server_mem: None,
        }
    }

    /// Attaches per-server admission limits (RAM + swap, MB) so
    /// memory-aware policies can veto doomed placements.
    pub fn with_server_mem(mut self, mem: &'a [f64]) -> Self {
        self.server_mem = Some(mem);
        self
    }

    /// Lends the run-wide [`DecisionMemo`] to this view instead of the
    /// owned throw-away one, dropping the per-decision allocation. Call
    /// before the first query.
    pub fn with_memo(mut self, memo: &'a mut DecisionMemo) -> Self {
        memo.begin(self.costs.n_servers());
        self.memo = MemoSlot::Shared(memo);
        self
    }

    /// The admission limit of `server`, if memory information is attached.
    pub fn server_total_mem(&self, server: ServerId) -> Option<f64> {
        self.server_mem.map(|m| m[server.index()])
    }

    /// The HTM's estimate of `server`'s resident memory at decision time,
    /// MB.
    pub fn resident_estimate(&mut self, server: ServerId) -> f64 {
        self.htm.resident_estimate(self.now, server)
    }

    /// The memory need of the task being placed, MB.
    pub fn task_mem_need(&self) -> f64 {
        self.costs.problem(self.task.problem).mem_mb
    }

    /// Static cost table.
    pub fn costs(&self) -> &CostTable {
        self.costs
    }

    /// The agent's current (corrected) load estimate for a server.
    pub fn load(&self, server: ServerId) -> f64 {
        self.loads[server.index()].corrected_load()
    }

    /// The NetSolve completion estimate (§2.2): communication at face
    /// value, computation stretched by the load — the available CPU
    /// fraction on a server with load `l` is `1/(l+1)`, so the compute cost
    /// divides by it.
    ///
    /// Returns `None` if the server cannot solve the problem.
    pub fn mct_estimate(&self, server: ServerId) -> Option<f64> {
        let c = self.costs.costs(self.task.problem, server)?;
        let load = self.load(server);
        Some(c.input + c.compute * (load + 1.0) + c.output)
    }

    /// HTM what-if query, memoised per decision; the first query batch-
    /// evaluates the whole candidate list via [`Htm::predict_all`].
    ///
    /// Returns `None` if the server cannot solve the problem.
    pub fn predict(&mut self, server: ServerId) -> Option<&Prediction> {
        if self.memo.get().get(server).is_none() {
            if !self.batched && self.candidates.contains(&server) {
                self.batched = true;
                let results = self.htm.predict_all(self.now, &self.task, &self.candidates);
                let memo = self.memo.get_mut();
                for (&s, p) in self.candidates.iter().zip(results) {
                    memo.set(s, p);
                }
            } else {
                let p = self.htm.predict(self.now, server, &self.task);
                self.memo.get_mut().set(server, p);
            }
        }
        self.memo.get().get(server).and_then(|p| p.as_ref())
    }

    /// The tie-break RNG stream (only [`RandomChoice`] uses it).
    pub fn rng(&mut self) -> &mut RngStream {
        self.rng
    }

    /// Generic deterministic argmin over candidates: evaluates `objective`
    /// for each candidate (skipping `None`s) and returns the server with
    /// the smallest value, ties to the lowest id.
    pub fn argmin<F>(&mut self, mut objective: F) -> Option<ServerId>
    where
        F: FnMut(&mut Self, ServerId) -> Option<f64>,
    {
        let candidates = self.candidates.clone();
        let mut best: Option<(ServerId, f64)> = None;
        for s in candidates {
            let Some(v) = objective(self, s) else {
                continue;
            };
            debug_assert!(v.is_finite(), "objective for {s} is not finite");
            best = match best {
                None => Some((s, v)),
                Some((_, bv)) if v < bv => Some((s, v)),
                other => other,
            };
        }
        best.map(|(s, _)| s)
    }
}

/// A scheduling policy.
pub trait Heuristic: Send {
    /// Display name, as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether the policy needs HTM commits to be maintained. The
    /// middleware keeps the HTM up to date for every policy (it is also the
    /// metric oracle), but this flag documents the dependency.
    fn uses_htm(&self) -> bool;

    /// Picks a server for `view.task`, or `None` when no candidate exists.
    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId>;
}

/// Enumeration of all shipped heuristics, for configuration and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// NetSolve's Minimum Completion Time (baseline).
    Mct,
    /// Historical MCT (Fig. 2).
    Hmct,
    /// Minimum Perturbation (Fig. 3).
    Mp,
    /// Minimum Sum Flow (Fig. 4) — Weissman's MTI.
    Msf,
    /// Minimize the Number of tasks that experience Interference (Weissman).
    Mni,
    /// Round-robin over candidates.
    RoundRobin,
    /// Uniform random candidate.
    Random,
    /// Lowest corrected load.
    MinLoad,
    /// Opportunistic load balancing: first idle server, else min load.
    Olb,
    /// HMCT behind the memory admission veto (paper future work §7).
    MemHmct,
    /// MSF behind the memory admission veto (paper future work §7).
    MemMsf,
    /// k-percent best (Maheswaran et al., HCW'99) with k = 50 %.
    Kpb,
}

impl HeuristicKind {
    /// All kinds, in the order the paper's tables list them (extensions
    /// after).
    pub const ALL: [HeuristicKind; 12] = [
        HeuristicKind::Mct,
        HeuristicKind::Hmct,
        HeuristicKind::Mp,
        HeuristicKind::Msf,
        HeuristicKind::Mni,
        HeuristicKind::RoundRobin,
        HeuristicKind::Random,
        HeuristicKind::MinLoad,
        HeuristicKind::Olb,
        HeuristicKind::MemHmct,
        HeuristicKind::MemMsf,
        HeuristicKind::Kpb,
    ];

    /// The four policies evaluated in the paper's tables.
    pub const PAPER: [HeuristicKind; 4] = [
        HeuristicKind::Mct,
        HeuristicKind::Hmct,
        HeuristicKind::Mp,
        HeuristicKind::Msf,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Heuristic> {
        match self {
            HeuristicKind::Mct => Box::new(Mct),
            HeuristicKind::Hmct => Box::new(Hmct),
            HeuristicKind::Mp => Box::new(Mp),
            HeuristicKind::Msf => Box::new(Msf),
            HeuristicKind::Mni => Box::new(Mni),
            HeuristicKind::RoundRobin => Box::new(RoundRobin::default()),
            HeuristicKind::Random => Box::new(RandomChoice),
            HeuristicKind::MinLoad => Box::new(MinLoad),
            HeuristicKind::Olb => Box::new(Olb),
            HeuristicKind::MemHmct => Box::new(MemAware::new(Hmct)),
            HeuristicKind::MemMsf => Box::new(MemAware::new(Msf)),
            HeuristicKind::Kpb => Box::new(Kpb::default()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            HeuristicKind::Mct => "MCT",
            HeuristicKind::Hmct => "HMCT",
            HeuristicKind::Mp => "MP",
            HeuristicKind::Msf => "MSF",
            HeuristicKind::Mni => "MNI",
            HeuristicKind::RoundRobin => "RR",
            HeuristicKind::Random => "RAND",
            HeuristicKind::MinLoad => "MINLOAD",
            HeuristicKind::Olb => "OLB",
            HeuristicKind::MemHmct => "M-HMCT",
            HeuristicKind::MemMsf => "M-MSF",
            HeuristicKind::Kpb => "KPB",
        }
    }

    /// Parses a display name (case-insensitive).
    pub fn parse(s: &str) -> Option<HeuristicKind> {
        let up = s.to_ascii_uppercase();
        HeuristicKind::ALL.into_iter().find(|k| k.name() == up)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::htm::Htm;
    use cas_platform::{PhaseCosts, Problem, TaskId};

    /// Builds a 3-server cost table: P0 costs 100/150/300 s compute on
    /// S0/S1/S2, no transfers, no memory.
    pub fn table3() -> CostTable {
        let mut c = CostTable::new(3);
        c.add_problem(
            Problem::new("p", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 150.0, 0.0)),
                Some(PhaseCosts::new(0.0, 300.0, 0.0)),
            ],
        );
        c
    }

    pub fn loads3() -> Vec<LoadReport> {
        (0..3).map(|i| LoadReport::initial(ServerId(i))).collect()
    }

    pub fn task(id: u64, arrival: f64) -> TaskInstance {
        TaskInstance::new(
            TaskId(id),
            cas_platform::ProblemId(0),
            SimTime::from_secs(arrival),
        )
    }

    /// Runs one selection with fresh state.
    pub fn select_once(
        h: &mut dyn Heuristic,
        htm: &mut Htm,
        loads: &[LoadReport],
        costs: &CostTable,
        t: TaskInstance,
    ) -> Option<ServerId> {
        let mut rng = RngStream::derive(7, cas_sim::StreamKind::TieBreak);
        let mut view = SchedView::new(
            t.arrival,
            t,
            costs.solvers(t.problem),
            costs,
            loads,
            htm,
            &mut rng,
        );
        h.select(&mut view)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use crate::htm::{Htm, SyncPolicy};
    use cas_sim::SimTime;

    /// The run-wide memo must forget exactly the previous decision's
    /// entries on `begin` — no stale prediction may leak into the next
    /// decision, and untouched slots must not be rescanned (the reset is
    /// sparse, through the touched list).
    #[test]
    fn decision_memo_sparse_reset_between_decisions() {
        let mut memo = DecisionMemo::new();
        memo.begin(4);
        memo.set(ServerId(1), None);
        memo.set(
            ServerId(3),
            Some(Prediction {
                completion: SimTime::from_secs(5.0),
                queried_at: SimTime::ZERO,
                perturbations: vec![],
            }),
        );
        assert!(memo.get(ServerId(1)).is_some(), "cannot-solve is memoised");
        assert!(memo.get(ServerId(3)).unwrap().is_some());
        assert_eq!(memo.touched, vec![1, 3]);
        // Next decision: everything the last one touched is gone.
        memo.begin(4);
        assert!(memo.touched.is_empty());
        for s in 0..4 {
            assert!(memo.get(ServerId(s)).is_none(), "S{s} leaked");
        }
    }

    /// Setting the same server twice within one decision records it once
    /// in the touched list (the reset stays linear in distinct probes).
    #[test]
    fn decision_memo_touched_dedupes_overwrites() {
        let mut memo = DecisionMemo::new();
        memo.begin(2);
        memo.set(ServerId(0), None);
        memo.set(ServerId(0), None);
        assert_eq!(memo.touched, vec![0]);
    }

    /// A memo created before the platform grew (or used stand-alone with
    /// no `begin`) grows on demand and keeps working.
    #[test]
    fn decision_memo_grows_on_demand() {
        let mut memo = DecisionMemo::new();
        memo.begin(2);
        memo.set(ServerId(7), None);
        assert!(memo.get(ServerId(7)).is_some());
        assert!(memo.get(ServerId(6)).is_none());
        memo.begin(8);
        assert!(memo.get(ServerId(7)).is_none());
    }

    /// Across trace generations: a shared memo must answer from the
    /// *current* HTM state in every decision — after a commit bumps a
    /// server's generation, the next decision's memoised prediction
    /// reflects the committed task, not the previous decision's answer.
    #[test]
    fn decision_memo_reuse_across_generations_stays_fresh() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let mut memo = DecisionMemo::new();
        let mut rng = cas_sim::RngStream::derive(7, cas_sim::StreamKind::TieBreak);
        let t1 = task(1, 0.0);
        let before = {
            let mut view = SchedView::new(
                t1.arrival,
                t1,
                costs.solvers(t1.problem),
                &costs,
                &loads,
                &mut htm,
                &mut rng,
            )
            .with_memo(&mut memo);
            view.predict(ServerId(0)).unwrap().completion
        };
        htm.commit(SimTime::ZERO, ServerId(0), &task(10, 0.0));
        let t2 = task(2, 0.0);
        let after = {
            let mut view = SchedView::new(
                t2.arrival,
                t2,
                costs.solvers(t2.problem),
                &costs,
                &loads,
                &mut htm,
                &mut rng,
            )
            .with_memo(&mut memo);
            view.predict(ServerId(0)).unwrap().completion
        };
        assert!(
            after > before,
            "second decision must see the committed task: {before:?} vs {after:?}"
        );
    }

    #[test]
    fn kind_roundtrip() {
        for k in HeuristicKind::ALL {
            assert_eq!(HeuristicKind::parse(k.name()), Some(k));
            assert_eq!(k.build().name(), k.name());
        }
        assert_eq!(HeuristicKind::parse("mct"), Some(HeuristicKind::Mct));
        assert_eq!(HeuristicKind::parse("nope"), None);
    }

    #[test]
    fn paper_subset() {
        assert_eq!(
            HeuristicKind::PAPER.map(|k| k.name()),
            ["MCT", "HMCT", "MP", "MSF"]
        );
    }

    #[test]
    fn uses_htm_flags() {
        assert!(!HeuristicKind::Mct.build().uses_htm());
        for k in [HeuristicKind::Hmct, HeuristicKind::Mp, HeuristicKind::Msf] {
            assert!(k.build().uses_htm(), "{k:?}");
        }
    }
}

//! Scheduling heuristics (§4 and Figs. 2–4).
//!
//! Every policy implements [`Heuristic`]: given a [`SchedView`] — the
//! agent's window onto the world at decision time — pick a server. The view
//! offers two information channels, mirroring the paper's two worlds:
//!
//! * `load(s)` / `mct_estimate(s)` — the NetSolve information model: static
//!   costs plus stale, correction-adjusted load reports. This is all MCT
//!   ever sees.
//! * `predict(s)` — an HTM what-if query (simulated completion and
//!   perturbations). HMCT, MP, MSF and MNI are built on this.
//!
//! Selections are deterministic: all argmin scans break exact ties by
//! lowest server id (and [`RandomChoice`] draws from its own dedicated RNG
//! stream), so experiments are reproducible bit-for-bit.

mod htm_based;
mod mct;
mod memaware;
mod simple;

pub use htm_based::{Hmct, Mni, Mp, Msf};
pub use mct::Mct;
pub use memaware::MemAware;
pub use simple::{Kpb, MinLoad, Olb, RandomChoice, RoundRobin};

use crate::prediction::Prediction;
use crate::whatif::WhatIf;
use cas_platform::{CostTable, LoadReport, ServerId, TaskInstance};
use cas_sim::{RngStream, SimTime};
use std::borrow::Cow;

/// Tolerance for "equal" objective values in tie-break rules (MP's
/// "if all π are equal" test of Fig. 3). Objectives are sums of simulated
/// seconds, so an absolute epsilon in seconds is appropriate.
pub const TIE_EPS: f64 = 1e-9;

/// Candidate lists at most this long take the direct per-candidate
/// `predict_into` path instead of `predict_all` on the first what-if
/// query. Matches the federated router's small-run threshold, where
/// per-candidate queries are already the proven-identical fast path for
/// short runs; above it the batch path's pool fan-out starts to pay.
const DIRECT_PREDICT_MAX: usize = 16;

/// Reusable storage for one decision's memoised what-if answers.
///
/// A [`SchedView`] lives for one scheduling decision, but a run makes one
/// decision per task arrival — hundreds of thousands in a campaign. Owning
/// a fresh `HashMap` per view put a hash-map allocation on every decision;
/// the engine instead keeps one `DecisionMemo` for the whole run and lends
/// it to each view ([`SchedView::with_memo`]). A memo probe is an array
/// read, dense by server index, and invalidation is a stamp comparison:
/// starting a new decision bumps one counter instead of walking or
/// clearing anything, and each slot's [`Prediction`] buffer persists
/// across decisions so the steady state rewrites it in place — the
/// decision loop performs no heap allocation at all.
#[derive(Debug, Default)]
pub struct DecisionMemo {
    /// The current decision's stamp. A slot belongs to this decision
    /// exactly when its entry in `stamps` matches; everything else is
    /// stale regardless of content.
    stamp: u64,
    /// Per-server stamp of the last write. Fresh slots hold `u64::MAX`,
    /// which no decision counter ever reaches.
    stamps: Vec<u64>,
    /// Whether the memoised answer is a prediction (`true`, stored in
    /// `preds`) or "cannot solve" (`false`).
    solvable: Vec<bool>,
    /// Reusable prediction storage; `preds[s]` is meaningful only when
    /// `stamps[s]` is current and `solvable[s]`.
    preds: Vec<Prediction>,
}

impl DecisionMemo {
    /// An empty memo; buffers grow to the server count on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new decision over `n_servers`: O(1) — bumping the stamp
    /// invalidates every slot at once (plus a one-time grow).
    fn begin(&mut self, n_servers: usize) {
        self.stamp += 1;
        self.grow_to(n_servers);
    }

    fn grow_to(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, u64::MAX);
            self.solvable.resize(n, false);
            self.preds.resize_with(n, Prediction::empty);
        }
    }

    /// Whether `server` was queried this decision (including "cannot
    /// solve" answers — unsolvable servers are not re-queried).
    fn queried(&self, server: ServerId) -> bool {
        self.stamps.get(server.index()) == Some(&self.stamp)
    }

    /// This decision's memoised prediction, `None` when unqueried or
    /// unsolvable.
    fn lookup(&self, server: ServerId) -> Option<&Prediction> {
        let i = server.index();
        (self.queried(server) && self.solvable[i]).then(|| &self.preds[i])
    }

    fn set(&mut self, server: ServerId, p: Option<Prediction>) {
        self.grow_to(server.index() + 1);
        let i = server.index();
        self.stamps[i] = self.stamp;
        match p {
            Some(pred) => {
                self.solvable[i] = true;
                self.preds[i] = pred;
            }
            None => self.solvable[i] = false,
        }
    }

    /// Writes `server`'s slot in place: `fill` receives the slot's
    /// reusable [`Prediction`] storage and returns whether the server
    /// can solve (`false` memoises "cannot solve" without touching the
    /// buffer). The zero-allocation direct path writes through here.
    fn fill_with(&mut self, server: ServerId, fill: impl FnOnce(&mut Prediction) -> bool) {
        self.grow_to(server.index() + 1);
        let i = server.index();
        self.solvable[i] = fill(&mut self.preds[i]);
        self.stamps[i] = self.stamp;
    }
}

/// The memo a view works against: its own (stand-alone construction, as in
/// tests and benches) or one lent by the engine for the whole run.
#[derive(Debug)]
enum MemoSlot<'a> {
    Owned(DecisionMemo),
    Shared(&'a mut DecisionMemo),
}

impl MemoSlot<'_> {
    fn get(&self) -> &DecisionMemo {
        match self {
            MemoSlot::Owned(m) => m,
            MemoSlot::Shared(m) => m,
        }
    }

    fn get_mut(&mut self) -> &mut DecisionMemo {
        match self {
            MemoSlot::Owned(m) => m,
            MemoSlot::Shared(m) => m,
        }
    }
}

/// The agent's window onto the world at one scheduling decision.
///
/// Predictions are memoised and evaluated over the whole candidate list
/// on the first what-if query: short lists (≤ [`DIRECT_PREDICT_MAX`])
/// take one routed `predict_into` per candidate, written straight into
/// the memo's reusable slots — the steady-state decision loop allocates
/// nothing — while longer lists batch through [`Htm::predict_all`] (one
/// generation-cached, zero-clone drain per candidate, threaded when the
/// load justifies it). Every later query — MP re-reading the winner's
/// completion date, MNI's tie-breaks — is a memo lookup. A query for a
/// server outside the candidate list (a wrapper heuristic restoring a
/// wider list) falls back to a single routed query.
pub struct SchedView<'a> {
    /// Decision time.
    pub now: SimTime,
    /// The task to place.
    pub task: TaskInstance,
    /// Servers able to solve the task's problem (the candidate list of
    /// Figs. 2–4, line 2). Already excludes servers the agent knows to have
    /// collapsed. Borrowed from the engine's scratch in the steady state;
    /// wrapper heuristics that narrow the list swap in an owned copy.
    pub candidates: Cow<'a, [ServerId]>,
    costs: &'a CostTable,
    loads: &'a [LoadReport],
    /// The what-if backend: one HTM, or a shard federation routing each
    /// query to the owning shard — the heuristic cannot tell.
    htm: &'a mut dyn WhatIf,
    rng: &'a mut RngStream,
    /// Memoised what-if answers, dense by server index; "cannot solve" is
    /// recorded so unsolvable servers are not re-queried.
    memo: MemoSlot<'a>,
    /// Whether the candidate list has been batch-predicted already.
    batched: bool,
    /// Forces the batch `predict_all` arm regardless of candidate count —
    /// the pre-direct-path decision shape, kept as the executable spec
    /// the zero-allocation direct path benches and proves against.
    batch_only: bool,
    /// Per-server admission limits (RAM + swap), MB — set by the engine
    /// when memory-aware policies are in play.
    server_mem: Option<&'a [f64]>,
}

impl<'a> SchedView<'a> {
    /// Builds a view. `candidates` should come from
    /// [`CostTable::solvers`] minus known-dead servers; the engine lends
    /// its scratch list as a slice (no per-decision copy), while owned
    /// vectors — tests, wrappers — convert implicitly.
    pub fn new(
        now: SimTime,
        task: TaskInstance,
        candidates: impl Into<Cow<'a, [ServerId]>>,
        costs: &'a CostTable,
        loads: &'a [LoadReport],
        htm: &'a mut dyn WhatIf,
        rng: &'a mut RngStream,
    ) -> Self {
        SchedView {
            now,
            task,
            candidates: candidates.into(),
            costs,
            loads,
            htm,
            rng,
            memo: MemoSlot::Owned(DecisionMemo::new()),
            batched: false,
            batch_only: false,
            server_mem: None,
        }
    }

    /// Attaches per-server admission limits (RAM + swap, MB) so
    /// memory-aware policies can veto doomed placements.
    pub fn with_server_mem(mut self, mem: &'a [f64]) -> Self {
        self.server_mem = Some(mem);
        self
    }

    /// Lends the run-wide [`DecisionMemo`] to this view instead of the
    /// owned throw-away one, dropping the per-decision allocation. Call
    /// before the first query.
    pub fn with_memo(mut self, memo: &'a mut DecisionMemo) -> Self {
        memo.begin(self.costs.n_servers());
        self.memo = MemoSlot::Shared(memo);
        self
    }

    /// Forces the batch [`predict_all`](crate::Htm::predict_all) stage-2
    /// arm even for short candidate lists — the decision shape before the
    /// direct zero-allocation path existed. Answers are bit-identical
    /// either way; the hot-path bench keeps this arm as its same-run
    /// baseline.
    pub fn with_batch_predict(mut self, batch_only: bool) -> Self {
        self.batch_only = batch_only;
        self
    }

    /// The admission limit of `server`, if memory information is attached.
    pub fn server_total_mem(&self, server: ServerId) -> Option<f64> {
        self.server_mem.map(|m| m[server.index()])
    }

    /// The HTM's estimate of `server`'s resident memory at decision time,
    /// MB.
    pub fn resident_estimate(&mut self, server: ServerId) -> f64 {
        self.htm.resident_estimate(self.now, server)
    }

    /// The memory need of the task being placed, MB.
    pub fn task_mem_need(&self) -> f64 {
        self.costs.problem(self.task.problem).mem_mb
    }

    /// Static cost table.
    pub fn costs(&self) -> &CostTable {
        self.costs
    }

    /// The agent's current (corrected) load estimate for a server.
    pub fn load(&self, server: ServerId) -> f64 {
        self.loads[server.index()].corrected_load()
    }

    /// The NetSolve completion estimate (§2.2): communication at face
    /// value, computation stretched by the load — the available CPU
    /// fraction on a server with load `l` is `1/(l+1)`, so the compute cost
    /// divides by it.
    ///
    /// Returns `None` if the server cannot solve the problem.
    pub fn mct_estimate(&self, server: ServerId) -> Option<f64> {
        let c = self.costs.costs(self.task.problem, server)?;
        let load = self.load(server);
        Some(c.input + c.compute * (load + 1.0) + c.output)
    }

    /// HTM what-if query, memoised per decision; the first query
    /// evaluates the whole candidate list — per candidate in place for
    /// short lists, via [`Htm::predict_all`] for long ones.
    ///
    /// Returns `None` if the server cannot solve the problem.
    pub fn predict(&mut self, server: ServerId) -> Option<&Prediction> {
        if !self.memo.get().queried(server) {
            if !self.batched && self.candidates.contains(&server) {
                self.batched = true;
                if self.candidates.len() <= DIRECT_PREDICT_MAX && !self.batch_only {
                    // Short list: one routed query per candidate, each
                    // written into the memo's reusable slot. Bit-identical
                    // to the batch path (the federated backend already
                    // serves short same-shard runs per candidate); a
                    // duplicate candidate re-queries instead of cloning,
                    // which only nudges the predictions-made counter —
                    // the answer comes from the same memoised drain.
                    let Self {
                        now,
                        ref task,
                        ref candidates,
                        ref mut htm,
                        ref mut memo,
                        ..
                    } = *self;
                    let memo = memo.get_mut();
                    for &s in candidates.iter() {
                        memo.fill_with(s, |out| htm.predict_into(now, s, task, out));
                    }
                } else {
                    let results = self.htm.predict_all(self.now, &self.task, &self.candidates);
                    let memo = self.memo.get_mut();
                    for (&s, p) in self.candidates.iter().zip(results) {
                        memo.set(s, p);
                    }
                }
            } else {
                let Self {
                    now,
                    ref task,
                    ref mut htm,
                    ref mut memo,
                    ..
                } = *self;
                memo.get_mut()
                    .fill_with(server, |out| htm.predict_into(now, server, task, out));
            }
        }
        self.memo.get().lookup(server)
    }

    /// The tie-break RNG stream (only [`RandomChoice`] uses it).
    pub fn rng(&mut self) -> &mut RngStream {
        self.rng
    }

    /// Generic deterministic argmin over candidates: evaluates `objective`
    /// for each candidate (skipping `None`s) and returns the server with
    /// the smallest value, ties to the lowest id.
    pub fn argmin<F>(&mut self, mut objective: F) -> Option<ServerId>
    where
        F: FnMut(&mut Self, ServerId) -> Option<f64>,
    {
        // Cloning a borrowed candidate list copies the reference, not the
        // servers — the engine-path argmin stays allocation-free.
        let candidates = self.candidates.clone();
        let mut best: Option<(ServerId, f64)> = None;
        for &s in candidates.iter() {
            let Some(v) = objective(self, s) else {
                continue;
            };
            debug_assert!(v.is_finite(), "objective for {s} is not finite");
            best = match best {
                None => Some((s, v)),
                Some((_, bv)) if v < bv => Some((s, v)),
                other => other,
            };
        }
        best.map(|(s, _)| s)
    }
}

/// A scheduling policy.
pub trait Heuristic: Send {
    /// Display name, as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether the policy needs HTM commits to be maintained. The
    /// middleware keeps the HTM up to date for every policy (it is also the
    /// metric oracle), but this flag documents the dependency.
    fn uses_htm(&self) -> bool;

    /// Whether the policy ever reads a prediction's perturbation list.
    /// Defaults to `true` (the safe depth); completion-only policies
    /// (HMCT, MCT, the simple baselines) override to `false`, which lets
    /// the fast stage-2 engine truncate speculative drains at the probe's
    /// completion ([`crate::Htm::set_completion_only`]).
    fn needs_perturbations(&self) -> bool {
        true
    }

    /// Picks a server for `view.task`, or `None` when no candidate exists.
    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId>;
}

/// Enumeration of all shipped heuristics, for configuration and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// NetSolve's Minimum Completion Time (baseline).
    Mct,
    /// Historical MCT (Fig. 2).
    Hmct,
    /// Minimum Perturbation (Fig. 3).
    Mp,
    /// Minimum Sum Flow (Fig. 4) — Weissman's MTI.
    Msf,
    /// Minimize the Number of tasks that experience Interference (Weissman).
    Mni,
    /// Round-robin over candidates.
    RoundRobin,
    /// Uniform random candidate.
    Random,
    /// Lowest corrected load.
    MinLoad,
    /// Opportunistic load balancing: first idle server, else min load.
    Olb,
    /// HMCT behind the memory admission veto (paper future work §7).
    MemHmct,
    /// MSF behind the memory admission veto (paper future work §7).
    MemMsf,
    /// k-percent best (Maheswaran et al., HCW'99) with k = 50 %.
    Kpb,
}

impl HeuristicKind {
    /// All kinds, in the order the paper's tables list them (extensions
    /// after).
    pub const ALL: [HeuristicKind; 12] = [
        HeuristicKind::Mct,
        HeuristicKind::Hmct,
        HeuristicKind::Mp,
        HeuristicKind::Msf,
        HeuristicKind::Mni,
        HeuristicKind::RoundRobin,
        HeuristicKind::Random,
        HeuristicKind::MinLoad,
        HeuristicKind::Olb,
        HeuristicKind::MemHmct,
        HeuristicKind::MemMsf,
        HeuristicKind::Kpb,
    ];

    /// The four policies evaluated in the paper's tables.
    pub const PAPER: [HeuristicKind; 4] = [
        HeuristicKind::Mct,
        HeuristicKind::Hmct,
        HeuristicKind::Mp,
        HeuristicKind::Msf,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Heuristic> {
        match self {
            HeuristicKind::Mct => Box::new(Mct),
            HeuristicKind::Hmct => Box::new(Hmct),
            HeuristicKind::Mp => Box::new(Mp),
            HeuristicKind::Msf => Box::new(Msf),
            HeuristicKind::Mni => Box::new(Mni),
            HeuristicKind::RoundRobin => Box::new(RoundRobin::default()),
            HeuristicKind::Random => Box::new(RandomChoice),
            HeuristicKind::MinLoad => Box::new(MinLoad),
            HeuristicKind::Olb => Box::new(Olb),
            HeuristicKind::MemHmct => Box::new(MemAware::new(Hmct)),
            HeuristicKind::MemMsf => Box::new(MemAware::new(Msf)),
            HeuristicKind::Kpb => Box::new(Kpb::default()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            HeuristicKind::Mct => "MCT",
            HeuristicKind::Hmct => "HMCT",
            HeuristicKind::Mp => "MP",
            HeuristicKind::Msf => "MSF",
            HeuristicKind::Mni => "MNI",
            HeuristicKind::RoundRobin => "RR",
            HeuristicKind::Random => "RAND",
            HeuristicKind::MinLoad => "MINLOAD",
            HeuristicKind::Olb => "OLB",
            HeuristicKind::MemHmct => "M-HMCT",
            HeuristicKind::MemMsf => "M-MSF",
            HeuristicKind::Kpb => "KPB",
        }
    }

    /// Parses a display name (case-insensitive).
    pub fn parse(s: &str) -> Option<HeuristicKind> {
        let up = s.to_ascii_uppercase();
        HeuristicKind::ALL.into_iter().find(|k| k.name() == up)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::htm::Htm;
    use cas_platform::{PhaseCosts, Problem, TaskId};

    /// Builds a 3-server cost table: P0 costs 100/150/300 s compute on
    /// S0/S1/S2, no transfers, no memory.
    pub fn table3() -> CostTable {
        let mut c = CostTable::new(3);
        c.add_problem(
            Problem::new("p", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 150.0, 0.0)),
                Some(PhaseCosts::new(0.0, 300.0, 0.0)),
            ],
        );
        c
    }

    pub fn loads3() -> Vec<LoadReport> {
        (0..3).map(|i| LoadReport::initial(ServerId(i))).collect()
    }

    pub fn task(id: u64, arrival: f64) -> TaskInstance {
        TaskInstance::new(
            TaskId(id),
            cas_platform::ProblemId(0),
            SimTime::from_secs(arrival),
        )
    }

    /// Runs one selection with fresh state.
    pub fn select_once(
        h: &mut dyn Heuristic,
        htm: &mut Htm,
        loads: &[LoadReport],
        costs: &CostTable,
        t: TaskInstance,
    ) -> Option<ServerId> {
        let mut rng = RngStream::derive(7, cas_sim::StreamKind::TieBreak);
        let mut view = SchedView::new(
            t.arrival,
            t,
            costs.solvers(t.problem),
            costs,
            loads,
            htm,
            &mut rng,
        );
        h.select(&mut view)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use crate::htm::{Htm, SyncPolicy};
    use cas_sim::SimTime;

    /// The run-wide memo must forget the previous decision's entries on
    /// `begin` — no stale prediction may leak into the next decision.
    /// The reset is a single stamp bump, so nothing is walked or cleared.
    #[test]
    fn decision_memo_stamp_reset_between_decisions() {
        let mut memo = DecisionMemo::new();
        memo.begin(4);
        memo.set(ServerId(1), None);
        memo.set(
            ServerId(3),
            Some(Prediction {
                completion: SimTime::from_secs(5.0),
                queried_at: SimTime::ZERO,
                perturbations: vec![],
            }),
        );
        assert!(memo.queried(ServerId(1)), "cannot-solve is memoised");
        assert!(
            memo.lookup(ServerId(1)).is_none(),
            "but yields no prediction"
        );
        assert!(memo.lookup(ServerId(3)).is_some());
        // Next decision: everything the last one wrote is stale.
        memo.begin(4);
        for s in 0..4 {
            assert!(!memo.queried(ServerId(s)), "S{s} leaked");
            assert!(memo.lookup(ServerId(s)).is_none(), "S{s} leaked");
        }
    }

    /// Setting the same server twice within one decision keeps the last
    /// answer, and the slot's perturbation storage survives across
    /// decisions so in-place fills reuse it instead of reallocating.
    #[test]
    fn decision_memo_overwrites_and_reuses_slot_storage() {
        let mut memo = DecisionMemo::new();
        memo.begin(2);
        memo.set(
            ServerId(0),
            Some(Prediction {
                completion: SimTime::from_secs(1.0),
                queried_at: SimTime::ZERO,
                perturbations: vec![(cas_platform::TaskId(9), 2.0)],
            }),
        );
        memo.set(ServerId(0), None);
        assert!(memo.queried(ServerId(0)));
        assert!(memo.lookup(ServerId(0)).is_none(), "last write wins");
        // Next decision: the in-place fill finds the buffer adopted by
        // the first `set` still in the slot.
        memo.begin(2);
        memo.fill_with(ServerId(0), |out| {
            assert!(!out.perturbations.is_empty(), "slot storage persisted");
            out.perturbations.clear();
            out.completion = SimTime::from_secs(7.0);
            true
        });
        let p = memo.lookup(ServerId(0)).expect("filled as solvable");
        assert_eq!(p.completion, SimTime::from_secs(7.0));
        assert!(p.perturbations.is_empty());
        // A fill reporting "cannot solve" memoises exactly that.
        memo.begin(2);
        memo.fill_with(ServerId(1), |_| false);
        assert!(memo.queried(ServerId(1)));
        assert!(memo.lookup(ServerId(1)).is_none());
    }

    /// A memo created before the platform grew (or used stand-alone with
    /// no `begin`) grows on demand and keeps working.
    #[test]
    fn decision_memo_grows_on_demand() {
        let mut memo = DecisionMemo::new();
        memo.begin(2);
        memo.set(ServerId(7), None);
        assert!(memo.queried(ServerId(7)));
        assert!(!memo.queried(ServerId(6)));
        memo.begin(8);
        assert!(!memo.queried(ServerId(7)));
    }

    /// Across trace generations: a shared memo must answer from the
    /// *current* HTM state in every decision — after a commit bumps a
    /// server's generation, the next decision's memoised prediction
    /// reflects the committed task, not the previous decision's answer.
    #[test]
    fn decision_memo_reuse_across_generations_stays_fresh() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let mut memo = DecisionMemo::new();
        let mut rng = cas_sim::RngStream::derive(7, cas_sim::StreamKind::TieBreak);
        let t1 = task(1, 0.0);
        let before = {
            let mut view = SchedView::new(
                t1.arrival,
                t1,
                costs.solvers(t1.problem),
                &costs,
                &loads,
                &mut htm,
                &mut rng,
            )
            .with_memo(&mut memo);
            view.predict(ServerId(0)).unwrap().completion
        };
        htm.commit(SimTime::ZERO, ServerId(0), &task(10, 0.0));
        let t2 = task(2, 0.0);
        let after = {
            let mut view = SchedView::new(
                t2.arrival,
                t2,
                costs.solvers(t2.problem),
                &costs,
                &loads,
                &mut htm,
                &mut rng,
            )
            .with_memo(&mut memo);
            view.predict(ServerId(0)).unwrap().completion
        };
        assert!(
            after > before,
            "second decision must see the committed task: {before:?} vs {after:?}"
        );
    }

    #[test]
    fn kind_roundtrip() {
        for k in HeuristicKind::ALL {
            assert_eq!(HeuristicKind::parse(k.name()), Some(k));
            assert_eq!(k.build().name(), k.name());
        }
        assert_eq!(HeuristicKind::parse("mct"), Some(HeuristicKind::Mct));
        assert_eq!(HeuristicKind::parse("nope"), None);
    }

    #[test]
    fn paper_subset() {
        assert_eq!(
            HeuristicKind::PAPER.map(|k| k.name()),
            ["MCT", "HMCT", "MP", "MSF"]
        );
    }

    /// The depth flag must mirror what each policy actually reads: only
    /// the perturbation-objective policies (MP, MSF, MNI and the wrapped
    /// M-MSF) may demand full drains; everything else is completion-only
    /// and eligible for truncated stage-2 drains.
    #[test]
    fn needs_perturbations_flags() {
        for k in [
            HeuristicKind::Mp,
            HeuristicKind::Msf,
            HeuristicKind::Mni,
            HeuristicKind::MemMsf,
        ] {
            assert!(k.build().needs_perturbations(), "{k:?}");
        }
        for k in [
            HeuristicKind::Mct,
            HeuristicKind::Hmct,
            HeuristicKind::RoundRobin,
            HeuristicKind::Random,
            HeuristicKind::MinLoad,
            HeuristicKind::Olb,
            HeuristicKind::MemHmct,
            HeuristicKind::Kpb,
        ] {
            assert!(!k.build().needs_perturbations(), "{k:?}");
        }
    }

    #[test]
    fn uses_htm_flags() {
        assert!(!HeuristicKind::Mct.build().uses_htm());
        for k in [HeuristicKind::Hmct, HeuristicKind::Mp, HeuristicKind::Msf] {
            assert!(k.build().uses_htm(), "{k:?}");
        }
    }
}

//! The baseline: NetSolve's Minimum Completion Time.
//!
//! MCT "tries to map each task to the resource that finishes that task the
//! soonest" using the information model of §2.2: static per-server costs
//! plus the latest (stale) load report, adjusted by NetSolve's two load
//! corrections. It knows nothing about the tasks it has previously mapped
//! beyond their effect on the (damped, delayed) load signal — which is
//! precisely the weakness the HTM removes.

use super::{Heuristic, SchedView};
use cas_platform::ServerId;

/// NetSolve-style MCT.
#[derive(Debug, Default, Clone, Copy)]
pub struct Mct;

impl Heuristic for Mct {
    fn name(&self) -> &'static str {
        "MCT"
    }

    fn uses_htm(&self) -> bool {
        false
    }

    // Never issues a what-if query, so no perturbation is ever read.
    fn needs_perturbations(&self) -> bool {
        false
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        view.argmin(|v, s| v.mct_estimate(s))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::htm::{Htm, SyncPolicy};
    use cas_sim::SimTime;

    #[test]
    fn picks_fastest_when_all_idle() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let mut h = Mct;
        let s = select_once(&mut h, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(0)));
    }

    #[test]
    fn load_shifts_the_choice() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut loads = loads3();
        // S0 reports load 2: estimate = 100 * 3 = 300 > S1's 150.
        loads[0].refresh(SimTime::ZERO, 2.0);
        let mut h = Mct;
        let s = select_once(&mut h, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(1)));
    }

    #[test]
    fn assignment_correction_counts() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut loads = loads3();
        // Two assignments since the last (zero-load) report on S0:
        // corrected load 2 → same as the stale-report case above.
        loads[0].note_assignment();
        loads[0].note_assignment();
        let mut h = Mct;
        let s = select_once(&mut h, &mut htm, &loads, &costs, task(1, 0.0));
        assert_eq!(s, Some(ServerId(1)));
    }

    #[test]
    fn blind_to_remaining_work() {
        // The paper's core criticism: two servers with the same load look
        // identical to MCT even when their queued work differs wildly. Here
        // S0 and S1 both have corrected load 1 but the HTM knows S0's task
        // is nearly done; MCT still picks S0 only because of its better
        // static cost — it can't see remaining work at all.
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut loads = loads3();
        loads[0].refresh(SimTime::ZERO, 1.0);
        loads[1].refresh(SimTime::ZERO, 1.0);
        let mut h = Mct;
        let s = select_once(&mut h, &mut htm, &loads, &costs, task(2, 0.0));
        // estimate(S0) = 100*2 = 200; estimate(S1) = 150*2 = 300.
        assert_eq!(s, Some(ServerId(0)));
    }

    #[test]
    fn no_candidates_gives_none() {
        let costs = table3();
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let loads = loads3();
        let mut rng = cas_sim::RngStream::derive(1, cas_sim::StreamKind::TieBreak);
        let t = task(1, 0.0);
        let mut view = SchedView::new(
            t.arrival,
            t,
            vec![], // agent filtered everything out
            &costs,
            &loads,
            &mut htm,
            &mut rng,
        );
        assert_eq!(Mct.select(&mut view), None);
    }
}

//! Memory-aware scheduling — the paper's first piece of future work.
//!
//! §7: "First, we need to incorporate memory requirements into the model."
//! The mechanism: the HTM already knows which tasks it believes are running
//! on every server and the cost table records each problem's memory need,
//! so the agent can estimate residency and *veto* placements the server
//! would reject (or accept only by paging). [`MemAware`] wraps any base
//! heuristic with that veto:
//!
//! 1. drop every candidate whose estimated residency plus the new task's
//!    need exceeds the server's admission limit (scaled by `headroom`);
//! 2. run the base heuristic on the survivors;
//! 3. if the veto eliminated everyone, fall back to the full candidate
//!    list — a guaranteed-rejected attempt still triggers the middleware's
//!    retry path, which is better than silently dropping the task.
//!
//! With `MemAware<Hmct>` the Table 6 experiment completes all 500 tasks
//! (see the `ablation_memory` binary), closing exactly the gap the paper
//! identified.

use super::{Heuristic, SchedView};
use cas_platform::ServerId;

/// Wraps a base heuristic with an agent-side memory admission veto.
#[derive(Debug, Clone, Copy)]
pub struct MemAware<H> {
    inner: H,
    /// Fraction of the server's RAM+swap the agent is willing to fill
    /// (1.0 = up to the hard admission limit; < 1 leaves slack for its
    /// own estimation error).
    headroom: f64,
}

impl<H: Heuristic> MemAware<H> {
    /// Wraps `inner` with the default headroom of 1.0.
    pub fn new(inner: H) -> Self {
        MemAware {
            inner,
            headroom: 1.0,
        }
    }

    /// Wraps with explicit headroom in (0, 1].
    ///
    /// # Panics
    /// Panics unless `0 < headroom <= 1`.
    pub fn with_headroom(inner: H, headroom: f64) -> Self {
        assert!(headroom > 0.0 && headroom <= 1.0);
        MemAware { inner, headroom }
    }
}

impl<H: Heuristic> Heuristic for MemAware<H> {
    fn name(&self) -> &'static str {
        // Names are static; expose the wrapper's identity and let
        // diagnostics query the inner policy separately if needed.
        match self.inner.name() {
            "HMCT" => "M-HMCT",
            "MSF" => "M-MSF",
            "MP" => "M-MP",
            "MCT" => "M-MCT",
            _ => "M-*",
        }
    }

    fn uses_htm(&self) -> bool {
        true // the residency estimate comes from the HTM
    }

    // The veto reads the residency estimate, not perturbations; depth is
    // whatever the wrapped policy requires.
    fn needs_perturbations(&self) -> bool {
        self.inner.needs_perturbations()
    }

    fn select(&mut self, view: &mut SchedView<'_>) -> Option<ServerId> {
        let mem_need = view.task_mem_need();
        let full = view.candidates.clone();
        let mut fitting: Vec<ServerId> = Vec::with_capacity(full.len());
        for &s in full.iter() {
            let fits = match view.server_total_mem(s) {
                // No memory information → assume it fits.
                None => true,
                Some(limit) => view.resident_estimate(s) + mem_need <= limit * self.headroom,
            };
            if fits {
                fitting.push(s);
            }
        }
        if !fitting.is_empty() {
            view.candidates = fitting.into();
            let pick = self.inner.select(view);
            view.candidates = full;
            return pick;
        }
        // Everything is believed full: fall back to the base policy on the
        // unfiltered list (the middleware's retry path handles rejection).
        self.inner.select(view)
    }
}

#[cfg(test)]
mod tests {
    use super::super::htm_based::Hmct;
    use super::super::{HeuristicKind, SchedView};
    use super::*;
    use crate::htm::{Htm, SyncPolicy};
    use cas_platform::{
        CostTable, LoadReport, PhaseCosts, Problem, ProblemId, TaskId, TaskInstance,
    };
    use cas_sim::{RngStream, SimTime, StreamKind};

    /// Two servers: fast-but-tiny (fits one task), slow-but-roomy.
    fn table() -> CostTable {
        let mut c = CostTable::new(2);
        c.add_problem(
            Problem::new("big", 0.0, 0.0, 100.0),
            vec![
                Some(PhaseCosts::new(0.0, 10.0, 0.0)),
                Some(PhaseCosts::new(0.0, 40.0, 0.0)),
            ],
        );
        c
    }

    fn select(
        h: &mut dyn Heuristic,
        htm: &mut Htm,
        mem: &[f64],
        t: TaskInstance,
    ) -> Option<ServerId> {
        let costs = htm.costs().clone();
        let loads: Vec<LoadReport> = (0..2u32)
            .map(|i| LoadReport::initial(ServerId(i)))
            .collect();
        let mut rng = RngStream::derive(1, StreamKind::TieBreak);
        let mut view = SchedView::new(
            t.arrival,
            t,
            costs.solvers(t.problem),
            &costs,
            &loads,
            htm,
            &mut rng,
        )
        .with_server_mem(mem);
        h.select(&mut view)
    }

    fn task(id: u64, at: f64) -> TaskInstance {
        TaskInstance::new(TaskId(id), ProblemId(0), SimTime::from_secs(at))
    }

    #[test]
    fn vetoes_full_server() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        let mem = [150.0, 1000.0]; // S0 fits one 100 MB task
        let mut h = MemAware::new(Hmct);
        // First task: S0 is fastest and empty.
        let s = select(&mut h, &mut htm, &mem, task(1, 0.0)).unwrap();
        assert_eq!(s, ServerId(0));
        htm.commit(SimTime::ZERO, s, &task(1, 0.0));
        // Second task: plain HMCT would still pick S0 (completion 20 <
        // 40); the memory veto forces S1.
        let mut plain = Hmct;
        assert_eq!(
            select(&mut plain, &mut htm, &mem, task(2, 0.0)),
            Some(ServerId(0))
        );
        assert_eq!(
            select(&mut h, &mut htm, &mem, task(2, 0.0)),
            Some(ServerId(1))
        );
    }

    #[test]
    fn falls_back_when_everything_full() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        let mem = [150.0, 150.0];
        for (id, srv) in [(1u64, 0u32), (2, 1)] {
            htm.commit(SimTime::ZERO, ServerId(srv), &task(id, 0.0));
        }
        // Both believed full → falls back to plain HMCT's choice.
        let mut h = MemAware::new(Hmct);
        let s = select(&mut h, &mut htm, &mem, task(3, 0.0));
        assert_eq!(s, Some(ServerId(0)));
    }

    #[test]
    fn headroom_tightens_the_veto() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        let mem = [150.0, 1000.0];
        // 100/150 = 0.67 > 0.5 headroom → even the first task is vetoed
        // off S0... (0 + 100 <= 150*0.5 fails).
        let mut h = MemAware::with_headroom(Hmct, 0.5);
        assert_eq!(
            select(&mut h, &mut htm, &mem, task(1, 0.0)),
            Some(ServerId(1))
        );
    }

    #[test]
    fn no_memory_info_behaves_like_inner() {
        let mut htm_a = Htm::new(table(), SyncPolicy::None);
        let mut htm_b = Htm::new(table(), SyncPolicy::None);
        htm_a.commit(SimTime::ZERO, ServerId(0), &task(1, 0.0));
        htm_b.commit(SimTime::ZERO, ServerId(0), &task(1, 0.0));
        let costs = table();
        let loads: Vec<LoadReport> = (0..2u32)
            .map(|i| LoadReport::initial(ServerId(i)))
            .collect();
        let mut rng = RngStream::derive(1, StreamKind::TieBreak);
        let t = task(2, 0.0);
        let mut view = SchedView::new(
            t.arrival,
            t,
            costs.solvers(t.problem),
            &costs,
            &loads,
            &mut htm_a,
            &mut rng,
        );
        let wrapped = MemAware::new(Hmct).select(&mut view);
        let mut rng = RngStream::derive(1, StreamKind::TieBreak);
        let mut view = SchedView::new(
            t.arrival,
            t,
            costs.solvers(t.problem),
            &costs,
            &loads,
            &mut htm_b,
            &mut rng,
        );
        let plain = Hmct.select(&mut view);
        assert_eq!(wrapped, plain);
    }

    #[test]
    fn kind_builders_exist() {
        assert_eq!(HeuristicKind::MemHmct.build().name(), "M-HMCT");
        assert_eq!(HeuristicKind::MemMsf.build().name(), "M-MSF");
    }
}

//! The per-server trace: the HTM's discrete simulation of one server.
//!
//! A [`ServerTrace`] models a server exactly as §2.3 prescribes: three
//! fair-shared stages (input link, CPU, output link); tasks move from stage
//! to stage; within a stage, `n` concurrent activities each progress at
//! `1/n` of the stage's nominal rate. The trace state is advanced lazily to
//! a *cursor* time; what-if questions clone the trace and drain the clone.
//!
//! Work units are "seconds on the unloaded server" taken straight from the
//! static cost tables — the same convention NetSolve's measured costs use.
//! A trace therefore never consults machine specs; heterogeneity is entirely
//! encoded in the per-server costs, as in the paper.
//!
//! # Change tracking and the zero-clone what-if path
//!
//! Every mutation of a trace's observable state (task added, task
//! force-finished, cursor advanced past an event or any span of time) bumps
//! a [`Generation`] stamp, exposed via [`ServerTrace::generation`]. Between
//! two equal stamps the trace state is bit-identical, so any quantity
//! derived from it — in particular the drained baseline schedule the HTM
//! caches per server — can be reused without recomputation.
//!
//! What-if questions ("when would these tasks finish if X were inserted
//! now?") used to clone the whole trace per query. They now run through
//! [`DrainScratch`], a reusable flat-buffer copy of the three fair-share
//! lanes: [`ServerTrace::drain_schedule_into`] loads the scratch from the
//! live trace (no heap allocation once the buffers are warm), optionally
//! injects one hypothetical task, and replays the exact event arithmetic of
//! [`ServerTrace::advance`]/[`ServerTrace::drain`]. The replay performs the
//! same floating-point operations in the same order as the clone-and-drain
//! path, so results agree **bit for bit** — a property enforced by the
//! differential proptests in `htm.rs`.

use cas_platform::{FairShareResource, Phase, PhaseCosts, TaskId};
use cas_sim::{Generation, SimTime};
use std::collections::BTreeMap;

/// Where a task currently is inside the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct JobState {
    pub phase: Phase,
    pub costs: PhaseCosts,
    pub arrival: SimTime,
}

/// One segment of Gantt history: a task held `share` of `phase`'s resource
/// from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSegment {
    /// The task.
    pub task: TaskId,
    /// Which stage the segment belongs to.
    pub phase: Phase,
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
    /// Fraction of the resource held, in (0, 1].
    pub share: f64,
}

/// The simulated timeline of one server.
#[derive(Debug, Clone)]
pub struct ServerTrace {
    cursor: SimTime,
    link_in: FairShareResource<TaskId>,
    cpu: FairShareResource<TaskId>,
    link_out: FairShareResource<TaskId>,
    jobs: BTreeMap<TaskId, JobState>,
    finished: Vec<(TaskId, SimTime)>,
    /// When `true`, [`Self::segments`] accumulates Gantt history.
    record_segments: bool,
    segments: Vec<TraceSegment>,
    /// Bumped on every observable state change (see the module docs); lets
    /// derived quantities (the HTM's baseline schedule cache) be reused
    /// while the stamp is unchanged.
    generation: Generation,
}

impl Default for ServerTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerTrace {
    /// An empty trace at time zero.
    pub fn new() -> Self {
        ServerTrace {
            cursor: SimTime::ZERO,
            link_in: FairShareResource::new(1.0),
            cpu: FairShareResource::new(1.0),
            link_out: FairShareResource::new(1.0),
            jobs: BTreeMap::new(),
            finished: Vec::new(),
            record_segments: false,
            segments: Vec::new(),
            generation: Generation::default(),
        }
    }

    /// Enables Gantt-segment recording (off by default: what-if clones don't
    /// need history and predictions are the hot path).
    pub fn with_recording(mut self) -> Self {
        self.record_segments = true;
        self
    }

    /// The time up to which this trace has been advanced.
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// The change stamp: two reads returning the same value guarantee the
    /// trace state (cursor, lane memberships, remaining work) is
    /// bit-identical, so schedules derived from it are still valid.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of tasks not yet finished.
    pub fn active_len(&self) -> usize {
        self.jobs.len()
    }

    /// Number of tasks in the compute stage right now.
    pub fn compute_len(&self) -> usize {
        self.cpu.len()
    }

    /// Tasks finished so far, with completion dates, in completion order.
    pub fn finished(&self) -> &[(TaskId, SimTime)] {
        &self.finished
    }

    /// Recorded Gantt segments (empty unless recording was enabled).
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Ids of unfinished tasks, in insertion (task-id) order — the paper's
    /// "local numbers" on this server.
    pub fn active_tasks(&self) -> Vec<TaskId> {
        self.jobs.keys().copied().collect()
    }

    /// Iterator over unfinished task ids, allocation-free (prefer this over
    /// [`Self::active_tasks`] on hot paths).
    pub fn active_task_iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.jobs.keys().copied()
    }

    /// Whether `task` is mapped here and unfinished.
    pub fn is_active(&self, task: TaskId) -> bool {
        self.jobs.contains_key(&task)
    }

    fn resource(&self, phase: Phase) -> &FairShareResource<TaskId> {
        match phase {
            Phase::Input => &self.link_in,
            Phase::Compute => &self.cpu,
            Phase::Output => &self.link_out,
        }
    }

    fn resource_mut(&mut self, phase: Phase) -> &mut FairShareResource<TaskId> {
        match phase {
            Phase::Input => &mut self.link_in,
            Phase::Compute => &mut self.cpu,
            Phase::Output => &mut self.link_out,
        }
    }

    /// Next internal event: the earliest phase completion across stages.
    fn next_event(&self) -> Option<(Phase, TaskId, SimTime)> {
        let mut best: Option<(Phase, TaskId, SimTime)> = None;
        for phase in Phase::ALL {
            if let Some((task, when)) = self.resource(phase).next_completion(self.cursor) {
                let better = match &best {
                    None => true,
                    Some((_, _, t)) => when < *t,
                };
                if better {
                    best = Some((phase, task, when));
                }
            }
        }
        best
    }

    fn record_interval(&mut self, from: SimTime, to: SimTime) {
        if !self.record_segments || to <= from {
            return;
        }
        let mut new_segments = Vec::new();
        for phase in Phase::ALL {
            let res = self.resource(phase);
            let n = res.len();
            if n == 0 {
                continue;
            }
            let share = 1.0 / n as f64;
            for task in res.keys() {
                new_segments.push(TraceSegment {
                    task,
                    phase,
                    start: from,
                    end: to,
                    share,
                });
            }
        }
        // Merge with the previous segment when nothing changed, keeping the
        // chart compact.
        for seg in new_segments {
            if let Some(last) = self
                .segments
                .iter_mut()
                .rev()
                .find(|s| s.task == seg.task && s.phase == seg.phase && s.end == seg.start)
            {
                if (last.share - seg.share).abs() < 1e-12 {
                    last.end = seg.end;
                    continue;
                }
            }
            self.segments.push(seg);
        }
    }

    /// Advances the trace to `to`, processing all phase transitions on the
    /// way. Idempotent for `to == cursor`.
    ///
    /// # Panics
    /// Panics if `to` is before the cursor.
    pub fn advance(&mut self, to: SimTime) {
        assert!(to >= self.cursor, "trace cannot rewind");
        let mut changed = to > self.cursor;
        while let Some((phase, task, when)) = self.next_event() {
            if when > to {
                break;
            }
            changed = true;
            self.record_interval(self.cursor, when);
            for p in Phase::ALL {
                self.resource_mut(p).advance(when);
            }
            self.cursor = when;
            // Move the task to its next phase (or finish it).
            self.resource_mut(phase).remove(when, task);
            let state = self.jobs.get_mut(&task).expect("job state exists");
            debug_assert_eq!(state.phase, phase);
            match phase.next() {
                Some(next) => {
                    state.phase = next;
                    let cost = state.costs.phase(next);
                    self.resource_mut(next).add(when, task, cost);
                }
                None => {
                    self.jobs.remove(&task);
                    self.finished.push((task, when));
                }
            }
        }
        self.record_interval(self.cursor, to);
        for p in Phase::ALL {
            self.resource_mut(p).advance(to);
        }
        self.cursor = to;
        if changed {
            self.generation.bump();
        }
    }

    /// Maps a new task onto this server at time `now` with the given static
    /// costs. The task enters the input stage (a zero input cost falls
    /// through to compute at the same instant during the next advance).
    ///
    /// # Panics
    /// Panics if `now` is before the cursor or the task is already mapped.
    pub fn add_task(&mut self, now: SimTime, task: TaskId, costs: PhaseCosts) {
        self.advance(now);
        assert!(
            !self.jobs.contains_key(&task),
            "task {task} already mapped on this trace"
        );
        self.jobs.insert(
            task,
            JobState {
                phase: Phase::Input,
                costs,
                arrival: now,
            },
        );
        self.link_in.add(now, task, costs.input);
        self.generation.bump();
    }

    /// Force-finishes a task at `now` (HTM ↔ reality synchronisation: the
    /// real server said it's done, so the model stops simulating it).
    /// Returns `true` if the task was active.
    pub fn force_finish(&mut self, now: SimTime, task: TaskId) -> bool {
        self.advance(now);
        let Some(state) = self.jobs.remove(&task) else {
            return false;
        };
        self.resource_mut(state.phase).remove(now, task);
        self.finished.push((task, now));
        self.generation.bump();
        true
    }

    /// Simulated completion dates of all currently active tasks assuming no
    /// further arrivals — the `f(i,j)` values of §2.4. Pure: works on a
    /// clone. Returned as (task, completion) in completion order.
    pub fn drain_schedule(&self) -> Vec<(TaskId, SimTime)> {
        let mut clone = self.clone();
        clone.record_segments = false;
        let already = clone.finished.len();
        clone.drain();
        clone.finished.split_off(already)
    }

    /// Advances until no active task remains.
    pub fn drain(&mut self) {
        while !self.jobs.is_empty() {
            let (_, _, when) = self
                .next_event()
                .expect("active jobs must produce a next event");
            self.advance(when);
        }
    }

    /// The simulated completion date of one active task, if active.
    pub fn completion_of(&self, task: TaskId) -> Option<SimTime> {
        self.drain_schedule()
            .into_iter()
            .find(|(t, _)| *t == task)
            .map(|(_, when)| when)
    }

    /// Arrival date recorded for an active task.
    pub fn arrival_of(&self, task: TaskId) -> Option<SimTime> {
        self.jobs.get(&task).map(|j| j.arrival)
    }

    /// Drains the schedule into `out` through a reusable scratch buffer,
    /// optionally with one hypothetical task inserted — the zero-clone
    /// what-if primitive behind [`crate::Htm`]'s prediction engine.
    ///
    /// * `insert = None` reproduces [`Self::drain_schedule`] bit for bit
    ///   (completion order and float values), without cloning the trace.
    /// * `insert = Some((now, task, costs))` reproduces the clone-based
    ///   reference path `{ let mut c = trace.clone(); c.add_task(now, task,
    ///   costs); c.drain_schedule() }` bit for bit: the scratch advances to
    ///   `now` with the same event arithmetic, injects the task into the
    ///   input lane, and drains.
    ///
    /// `out` is cleared first. The trace itself is not modified, and after
    /// the scratch buffers have grown to the high-water mark no heap
    /// allocation happens per call.
    ///
    /// # Panics
    /// Panics if `insert` is before the cursor or names a task already
    /// mapped here (mirrors [`Self::add_task`]).
    pub fn drain_schedule_into(
        &self,
        scratch: &mut DrainScratch,
        insert: Option<(SimTime, TaskId, PhaseCosts)>,
        out: &mut Vec<(TaskId, SimTime)>,
    ) {
        out.clear();
        scratch.load(self);
        match insert {
            None => scratch.drain(&self.jobs, None, out),
            Some((now, task, costs)) => {
                assert!(now >= self.cursor, "trace cannot rewind");
                assert!(
                    !self.jobs.contains_key(&task),
                    "task {task} already mapped on this trace"
                );
                // Same op order as `add_task` on a clone: advance to `now`
                // first (the extra task is not yet present), then enter the
                // input lane. Completions reached while advancing land in
                // the clone's `finished` list, which `drain_schedule`
                // excludes — mirror that by discarding them.
                let mut pre = std::mem::take(&mut scratch.pre_now);
                pre.clear();
                scratch.advance_to(now, &self.jobs, None, &mut pre);
                scratch.pre_now = pre;
                scratch.lanes[0].entries.push((task, costs.input));
                scratch.drain(&self.jobs, Some((task, costs)), out);
            }
        }
    }

    /// Drains the schedule into `out` as if `task` had been force-finished
    /// at `now` — the retract-side twin of [`Self::drain_schedule_into`],
    /// and the primitive behind the HTM's incremental baseline repair on
    /// retract/observe.
    ///
    /// Reproduces `{ let mut c = trace.clone(); c.force_finish(now, task);
    /// c.drain_schedule() }` bit for bit, without cloning or mutating the
    /// trace: the scratch advances to `now` with the same event arithmetic
    /// (completions reached on the way are discarded, exactly like the
    /// clone's `finished` list), removes the task from its lane, and
    /// drains. Returns whether the task was still active at `now` — the
    /// same value `force_finish` would return.
    ///
    /// # Panics
    /// Panics if `now` is before the cursor (mirrors `force_finish`).
    pub fn drain_schedule_without(
        &self,
        scratch: &mut DrainScratch,
        now: SimTime,
        task: TaskId,
        out: &mut Vec<(TaskId, SimTime)>,
    ) -> bool {
        assert!(now >= self.cursor, "trace cannot rewind");
        out.clear();
        scratch.load(self);
        let mut pre = std::mem::take(&mut scratch.pre_now);
        pre.clear();
        scratch.advance_to(now, &self.jobs, None, &mut pre);
        scratch.pre_now = pre;
        // Mirrors `FairShareResource::remove` on the task's current lane:
        // the entry vanishes, later entries keep their relative order.
        let removed = scratch.remove_entry(task);
        scratch.drain(&self.jobs, None, out);
        removed
    }

    /// The fast-mode what-if drain: [`Self::drain_schedule_into`] with a
    /// hypothetical task, accelerated by the baseline-prefix cursor and —
    /// when `truncate` is set — an early exit once the probe's completion
    /// is known.
    ///
    /// Produces values bit-identical to `drain_schedule_into(scratch,
    /// Some((now, task, costs)), out)` by construction: the prefix cursor
    /// only ever resumes the event loop from a state every full replay
    /// passes through, and truncation only cuts the tail of `out` *after*
    /// the probe's entry. When `truncate` is `false`, `out` is the complete
    /// after-schedule, bit for bit.
    ///
    /// Returns `(prefix_hit, truncated)`: whether the shared prefix was
    /// resumed from `prefix` instead of replayed from the live trace, and
    /// whether `out` is a (probe-containing) prefix rather than the full
    /// schedule. `prefix` is refreshed to this query's `(generation, now)`
    /// on every call, so the next probe of the same decision round hits.
    ///
    /// # Panics
    /// Panics if `now` is before the cursor or names a task already mapped
    /// here (mirrors [`Self::drain_schedule_into`]).
    #[allow(clippy::too_many_arguments)]
    pub fn drain_schedule_into_fast(
        &self,
        scratch: &mut DrainScratch,
        prefix: &mut PrefixCursor,
        now: SimTime,
        task: TaskId,
        costs: PhaseCosts,
        truncate: bool,
        out: &mut Vec<(TaskId, SimTime)>,
    ) -> (bool, bool) {
        assert!(now >= self.cursor, "trace cannot rewind");
        assert!(
            !self.jobs.contains_key(&task),
            "task {task} already mapped on this trace"
        );
        out.clear();
        let hit = prefix.usable_for(self, now);
        if hit {
            scratch.restore_prefix(prefix);
        } else {
            scratch.load(self);
        }
        // Shared prefix: process every baseline event up to `now`,
        // discarding pre-now completions exactly like the clone path's
        // `finished` list. Lanes are left at the last processed event —
        // the snapshot point — and only then settled to `now`.
        let mut pre = std::mem::take(&mut scratch.pre_now);
        pre.clear();
        let moved = scratch.advance_events_until(now, &self.jobs, None, &mut pre);
        scratch.pre_now = pre;
        if !hit || moved > 0 {
            scratch.save_prefix(prefix);
            prefix.events_until = now;
            prefix.generation = self.generation();
            prefix.valid = true;
        }
        // On a hit that processed no event the snapshot already *is* this
        // state: skip the copy-back and keep the older — strictly more
        // reusable — `events_until`.
        scratch.settle(now);
        scratch.lanes[0].entries.push((task, costs.input));
        let truncated = if truncate {
            scratch.drain_until(&self.jobs, Some((task, costs)), task, out)
        } else {
            scratch.drain(&self.jobs, Some((task, costs)), out);
            false
        };
        (hit, truncated)
    }
}

/// Reusable flat-buffer state for zero-clone what-if drains.
///
/// Holds one lane per phase resource — `(task, remaining work)` pairs in
/// the same order as the live [`FairShareResource`] entries — plus the
/// cursor. [`ServerTrace::drain_schedule_into`] copies the live state in
/// (reusing capacity), then replays the trace's event loop on the copy.
///
/// The replay is deliberately **operation-for-operation identical** to
/// [`ServerTrace::advance`]/[`ServerTrace::drain`] + the fair-share
/// resource arithmetic, so its floating-point results match the
/// clone-and-drain path exactly. When changing either side, change both —
/// the differential proptests in `htm.rs` will catch a drift.
#[derive(Debug, Clone, Default)]
pub struct DrainScratch {
    lanes: [ScratchLane; 3],
    cursor: SimTime,
    /// Reusable sink for completions that fall before the insertion time
    /// (dropped, like the clone path's `finished` list).
    pre_now: Vec<(TaskId, SimTime)>,
}

/// One phase lane of the scratch: mirrors `FairShareResource`'s state.
#[derive(Debug, Clone, Default)]
struct ScratchLane {
    /// `(task, remaining work)` in insertion order.
    entries: Vec<(TaskId, f64)>,
    /// Last time progress was integrated up to.
    updated_at: SimTime,
    /// Total capacity, split equally.
    capacity: f64,
}

impl ScratchLane {
    /// Mirrors [`FairShareResource::next_completion`].
    fn next_completion(&self, now: SimTime) -> Option<(TaskId, SimTime)> {
        let lag = (now - self.updated_at).as_secs();
        let rate = self.capacity / self.entries.len().max(1) as f64;
        self.entries
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("remaining work is never NaN"))
            .map(|e| {
                let dt = ((e.1 / rate) - lag).max(0.0);
                (e.0, now + SimTime::from_secs(dt))
            })
    }

    /// Mirrors [`FairShareResource::advance`].
    fn advance(&mut self, now: SimTime) {
        if self.entries.is_empty() || now == self.updated_at {
            self.updated_at = now;
            return;
        }
        let dt = (now - self.updated_at).as_secs();
        let rate = self.capacity / self.entries.len() as f64;
        let done = rate * dt;
        for e in &mut self.entries {
            e.1 = (e.1 - done).max(0.0);
        }
        self.updated_at = now;
    }
}

impl DrainScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the live trace state in, reusing buffer capacity.
    fn load(&mut self, trace: &ServerTrace) {
        for (lane, phase) in self.lanes.iter_mut().zip(Phase::ALL) {
            let res = trace.resource(phase);
            lane.entries.clear();
            lane.entries.extend(res.entries_iter());
            lane.updated_at = res.updated_at();
            lane.capacity = res.capacity();
        }
        self.cursor = trace.cursor;
    }

    /// Number of tasks still inside any lane.
    fn active(&self) -> usize {
        self.lanes.iter().map(|l| l.entries.len()).sum()
    }

    /// Removes `task` from whichever lane holds it, preserving the order
    /// of the remaining entries (mirrors `FairShareResource::remove`).
    /// Returns whether the task was present.
    fn remove_entry(&mut self, task: TaskId) -> bool {
        for lane in &mut self.lanes {
            if let Some(pos) = lane.entries.iter().position(|e| e.0 == task) {
                lane.entries.remove(pos);
                return true;
            }
        }
        false
    }

    /// Static phase costs of `task`: the hypothetical task's costs come
    /// from `extra`, everything else from the live job table.
    fn costs_of(
        jobs: &BTreeMap<TaskId, JobState>,
        extra: Option<(TaskId, PhaseCosts)>,
        task: TaskId,
    ) -> PhaseCosts {
        match extra {
            Some((id, costs)) if id == task => costs,
            _ => jobs.get(&task).expect("task has a job record").costs,
        }
    }

    /// Mirrors [`ServerTrace::next_event`]: earliest completion across the
    /// lanes, ties to the earliest phase.
    fn next_event(&self) -> Option<(usize, TaskId, SimTime)> {
        let mut best: Option<(usize, TaskId, SimTime)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some((task, when)) = lane.next_completion(self.cursor) {
                let better = match &best {
                    None => true,
                    Some((_, _, t)) => when < *t,
                };
                if better {
                    best = Some((i, task, when));
                }
            }
        }
        best
    }

    /// Mirrors [`ServerTrace::advance`] (without Gantt recording).
    ///
    /// Structured as the event loop ([`Self::advance_events_until`])
    /// followed by the final partial advance ([`Self::settle`]); the split
    /// exists so the prefix cursor can snapshot the scratch at the last
    /// processed event — the only state that is bit-identical across every
    /// replay that passes that event (the trailing partial advance splits
    /// an interval, and `(w − r·dt₁) − r·dt₂ ≠ w − r·(dt₁+dt₂)` in floats).
    fn advance_to(
        &mut self,
        to: SimTime,
        jobs: &BTreeMap<TaskId, JobState>,
        extra: Option<(TaskId, PhaseCosts)>,
        out: &mut Vec<(TaskId, SimTime)>,
    ) {
        self.advance_events_until(to, jobs, extra, out);
        self.settle(to);
    }

    /// The event half of [`Self::advance_to`]: processes every phase
    /// completion at or before `to`, leaving all lanes advanced exactly to
    /// the last processed event (or untouched when no event fires). No
    /// partial progress beyond an event time is integrated, so the
    /// resulting state can be resumed for any later `to` bit-identically.
    /// Returns the number of events processed, so the prefix-cursor path
    /// can tell a no-op resume (state unchanged, snapshot still exact)
    /// from one that moved the scratch forward.
    fn advance_events_until(
        &mut self,
        to: SimTime,
        jobs: &BTreeMap<TaskId, JobState>,
        extra: Option<(TaskId, PhaseCosts)>,
        out: &mut Vec<(TaskId, SimTime)>,
    ) -> usize {
        let mut processed = 0;
        while let Some((lane_idx, task, when)) = self.next_event() {
            if when > to {
                break;
            }
            self.process_event(lane_idx, task, when, jobs, extra, out);
            processed += 1;
        }
        processed
    }

    /// One step of the event loop: advance every lane to `when`, retire
    /// `task` from `lanes[lane_idx]`, and either feed it to the next lane
    /// or append its final completion to `out`. Factored out so
    /// [`Self::advance_events_until`] and [`Self::drain_until`] share the
    /// exact arithmetic (and therefore stay bit-identical).
    fn process_event(
        &mut self,
        lane_idx: usize,
        task: TaskId,
        when: SimTime,
        jobs: &BTreeMap<TaskId, JobState>,
        extra: Option<(TaskId, PhaseCosts)>,
        out: &mut Vec<(TaskId, SimTime)>,
    ) {
        for lane in &mut self.lanes {
            lane.advance(when);
        }
        self.cursor = when;
        let lane = &mut self.lanes[lane_idx];
        let pos = lane
            .entries
            .iter()
            .position(|e| e.0 == task)
            .expect("completing task is in its lane");
        lane.entries.remove(pos);
        if lane_idx + 1 < self.lanes.len() {
            let costs = Self::costs_of(jobs, extra, task);
            let cost = match lane_idx + 1 {
                1 => costs.compute,
                _ => costs.output,
            };
            self.lanes[lane_idx + 1].entries.push((task, cost));
        } else {
            out.push((task, when));
        }
    }

    /// The trailing half of [`Self::advance_to`]: integrates the partial
    /// interval from the last processed event up to `to` on every lane.
    fn settle(&mut self, to: SimTime) {
        for lane in &mut self.lanes {
            lane.advance(to);
        }
        self.cursor = to;
    }

    /// Mirrors [`ServerTrace::drain`]: advance event by event until no
    /// task remains, appending completions to `out` in completion order.
    fn drain(
        &mut self,
        jobs: &BTreeMap<TaskId, JobState>,
        extra: Option<(TaskId, PhaseCosts)>,
        out: &mut Vec<(TaskId, SimTime)>,
    ) {
        while self.active() > 0 {
            let (_, _, when) = self
                .next_event()
                .expect("active tasks must produce a next event");
            self.advance_to(when, jobs, extra, out);
        }
    }

    /// Truncated drain: identical to [`Self::drain`] but returns as soon as
    /// `stop`'s completion has been appended to `out`. The output is a
    /// bit-exact prefix of the full drain (same events, same order, same
    /// float values — the loop merely exits early), possibly including a
    /// few same-instant completions that tie with `stop`. Returns `true`
    /// when the drain stopped early (tasks remain in the lanes), `false`
    /// when the schedule drained to empty anyway.
    fn drain_until(
        &mut self,
        jobs: &BTreeMap<TaskId, JobState>,
        extra: Option<(TaskId, PhaseCosts)>,
        stop: TaskId,
        out: &mut Vec<(TaskId, SimTime)>,
    ) -> bool {
        // Single event loop (one `next_event` scan per event, against the
        // three scans of the `drain` + `advance_to` composition): process
        // events in completion order, note the instant `stop` finishes,
        // keep draining its same-instant tie batch, and return as soon as
        // the next event lies strictly later. Event arithmetic is
        // `process_event` — the exact loop body of the full drain — so the
        // output is a bit-exact prefix of [`Self::drain`]'s.
        let mut stop_at: Option<SimTime> = None;
        while let Some((lane_idx, task, when)) = self.next_event() {
            if stop_at.is_some_and(|t| when > t) {
                return true;
            }
            self.process_event(lane_idx, task, when, jobs, extra, out);
            if lane_idx + 1 == self.lanes.len() && task == stop {
                stop_at = Some(when);
            }
        }
        false
    }

    /// Snapshots the scratch state into `cur` (reusing its buffers).
    fn save_prefix(&self, cur: &mut PrefixCursor) {
        for (src, dst) in self.lanes.iter().zip(cur.lanes.iter_mut()) {
            dst.entries.clear();
            dst.entries.extend_from_slice(&src.entries);
            dst.updated_at = src.updated_at;
            dst.capacity = src.capacity;
        }
        cur.cursor = self.cursor;
    }

    /// Restores the scratch from a snapshot taken by [`Self::save_prefix`].
    fn restore_prefix(&mut self, cur: &PrefixCursor) {
        for (dst, src) in self.lanes.iter_mut().zip(cur.lanes.iter()) {
            dst.entries.clear();
            dst.entries.extend_from_slice(&src.entries);
            dst.updated_at = src.updated_at;
            dst.capacity = src.capacity;
        }
        self.cursor = cur.cursor;
    }
}

/// A reusable snapshot of a [`DrainScratch`] taken at the last processed
/// event of the shared advance-to-`now` prefix of a what-if drain — the
/// baseline-prefix cursor of the fast stage-2 path.
///
/// Every probe of a decision round replays the same baseline events on a
/// server before injecting its hypothetical task. The cursor caches the
/// scratch state *after* the event loop but *before* the trailing partial
/// advance ([`DrainScratch::settle`]) — the unique point that is
/// bit-identical across all replays that pass it (see
/// [`DrainScratch::advance_events_until`]). A later query at the same or a
/// later `now` restores the snapshot and resumes the event loop instead of
/// replaying from the live trace state.
///
/// Validity is the caller's job (the HTM keys cursors by trace
/// [`Generation`] and invalidates on mismatch or when `now` moves
/// backwards past [`Self::events_until`]).
#[derive(Debug, Clone, Default)]
pub struct PrefixCursor {
    lanes: [ScratchLane; 3],
    cursor: SimTime,
    /// The `now` the snapshot's event loop ran until: all events ≤ this
    /// time are already processed, so the snapshot is resumable only for
    /// queries at `now ≥ events_until`.
    events_until: SimTime,
    /// Trace change stamp at snapshot time; any later mutation invalidates.
    generation: Generation,
    /// Whether the snapshot holds valid state at all.
    valid: bool,
}

impl PrefixCursor {
    /// An empty, invalid cursor (buffers grow on first save).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the cursor invalid (e.g. after a retraction repair that
    /// bypassed the normal save path).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Whether the snapshot can seed a replay of `trace` at `now`.
    fn usable_for(&self, trace: &ServerTrace, now: SimTime) -> bool {
        self.valid && self.generation == trace.generation() && now >= self.events_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn costs(i: f64, c: f64, o: f64) -> PhaseCosts {
        PhaseCosts::new(i, c, o)
    }

    #[test]
    fn single_task_three_phases() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(2.0, 10.0, 1.0));
        let sched = tr.drain_schedule();
        assert_eq!(sched, vec![(TaskId(1), t(13.0))]);
        // Draining the trace itself gives the same answer.
        tr.drain();
        assert_eq!(tr.finished(), &[(TaskId(1), t(13.0))]);
        assert_eq!(tr.active_len(), 0);
    }

    #[test]
    fn compute_sharing_two_tasks() {
        // Both tasks have no transfer costs: pure §2.3 CPU sharing.
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(0.0, 100.0, 0.0));
        tr.add_task(t(0.0), TaskId(2), costs(0.0, 200.0, 0.0));
        let sched = tr.drain_schedule();
        // Shared until T1 done: T1 needs 100 at rate 1/2 → t=200.
        // T2 then has 100 left alone → t=300.
        assert_eq!(sched[0], (TaskId(1), t(200.0)));
        assert_eq!(sched[1], (TaskId(2), t(300.0)));
    }

    #[test]
    fn usefulness_example_from_paper() {
        // §2.3: servers s and s' got 100 s and 200 s tasks at t=0. At t=80 a
        // new 100 s task arrives. HTM says remaining durations are 20 s and
        // 120 s, so s gives the shorter completion.
        let mut s = ServerTrace::new();
        let mut s2 = ServerTrace::new();
        s.add_task(t(0.0), TaskId(1), costs(0.0, 100.0, 0.0));
        s2.add_task(t(0.0), TaskId(2), costs(0.0, 200.0, 0.0));
        s.advance(t(80.0));
        s2.advance(t(80.0));
        let mut s_with = s.clone();
        s_with.add_task(t(80.0), TaskId(3), costs(0.0, 100.0, 0.0));
        let mut s2_with = s2.clone();
        s2_with.add_task(t(80.0), TaskId(3), costs(0.0, 100.0, 0.0));
        let f_on_s = s_with.completion_of(TaskId(3)).unwrap();
        let f_on_s2 = s2_with.completion_of(TaskId(3)).unwrap();
        assert!(f_on_s < f_on_s2, "{f_on_s:?} vs {f_on_s2:?}");
        // Exact values: on s, T1 has 20 left; shared at 1/2 → T1 done at
        // t=120, T3 then has 80 left alone → t=200.
        assert_eq!(f_on_s, t(200.0));
        // On s', T2 has 120 left; shared → T3 done first: 100 at 1/2 → t=280.
        assert_eq!(f_on_s2, t(280.0));
    }

    #[test]
    fn input_transfers_share_the_link() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(10.0, 5.0, 0.0));
        tr.add_task(t(0.0), TaskId(2), costs(10.0, 5.0, 0.0));
        let sched = tr.drain_schedule();
        // Inputs share: both transfers finish at t=20 (tie → id order).
        // Computes then share: both need 5, finish at t=30 — wait: both
        // enter compute at t=20, share → each at rate 1/2, done at t=30.
        assert_eq!(sched[0], (TaskId(1), t(30.0)));
        assert_eq!(sched[1], (TaskId(2), t(30.0)));
    }

    #[test]
    fn phases_pipeline_distinct_resources() {
        // T1 is in compute while T2 is still transferring input: no
        // interference between the stages.
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(1.0, 10.0, 0.0));
        tr.advance(t(1.0)); // T1 now computing
        tr.add_task(t(1.0), TaskId(2), costs(4.0, 1.0, 0.0));
        let sched = tr.drain_schedule();
        // T2's input runs t=1..5 alone; its compute joins T1's at t=5.
        // T1: compute 10, alone t=1..5 (4 done), shared from t=5.
        // T2 compute needs 1: shared rate 1/2 → done at t=7.
        // T1 then 6 - ... at t=7 T1 has 10-4-1=5 left, alone → t=12.
        assert_eq!(sched[0], (TaskId(2), t(7.0)));
        assert_eq!(sched[1], (TaskId(1), t(12.0)));
    }

    #[test]
    fn zero_cost_phases_fall_through() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(5.0), TaskId(1), costs(0.0, 0.0, 0.0));
        let sched = tr.drain_schedule();
        assert_eq!(sched, vec![(TaskId(1), t(5.0))]);
    }

    #[test]
    fn force_finish_removes_task() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(0.0, 100.0, 0.0));
        tr.add_task(t(0.0), TaskId(2), costs(0.0, 100.0, 0.0));
        assert!(tr.force_finish(t(10.0), TaskId(1)));
        assert!(!tr.force_finish(t(10.0), TaskId(1)));
        // T2 now runs alone: had 95 left at t=10 (rate 1/2 for 10 s), so
        // completion at t=105.
        let sched = tr.drain_schedule();
        assert_eq!(sched.len(), 1);
        assert!(sched[0].1.approx_eq(t(105.0), 1e-9));
    }

    #[test]
    fn drain_schedule_is_pure() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(1.0, 1.0, 1.0));
        let before = tr.cursor();
        let _ = tr.drain_schedule();
        assert_eq!(tr.cursor(), before);
        assert_eq!(tr.active_len(), 1);
    }

    #[test]
    fn recording_produces_segments() {
        let mut tr = ServerTrace::new().with_recording();
        tr.add_task(t(0.0), TaskId(1), costs(0.0, 10.0, 0.0));
        tr.add_task(t(0.0), TaskId(2), costs(0.0, 10.0, 0.0));
        tr.drain();
        let segs: Vec<_> = tr
            .segments()
            .iter()
            .filter(|s| s.phase == Phase::Compute)
            .collect();
        // Both tasks share 50/50 from 0 to 20.
        assert_eq!(segs.len(), 2);
        for s in segs {
            assert_eq!(s.start, t(0.0));
            assert_eq!(s.end, t(20.0));
            assert_eq!(s.share, 0.5);
        }
    }

    #[test]
    fn segment_share_changes_split_segments() {
        let mut tr = ServerTrace::new().with_recording();
        tr.add_task(t(0.0), TaskId(1), costs(0.0, 10.0, 0.0));
        tr.advance(t(5.0));
        tr.add_task(t(5.0), TaskId(2), costs(0.0, 2.5, 0.0));
        tr.drain();
        let t1_segs: Vec<_> = tr
            .segments()
            .iter()
            .filter(|s| s.task == TaskId(1) && s.phase == Phase::Compute)
            .collect();
        // T1: full share 0..5, half share 5..10 (T2 runs 2.5 at 1/2 → done
        // t=10), full share 10..12.5.
        assert_eq!(t1_segs.len(), 3);
        assert_eq!(t1_segs[0].share, 1.0);
        assert_eq!(t1_segs[1].share, 0.5);
        assert_eq!(t1_segs[2].share, 1.0);
        assert_eq!(t1_segs[2].end, t(12.5));
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn trace_rewind_panics() {
        let mut tr = ServerTrace::new();
        tr.advance(t(10.0));
        tr.advance(t(5.0));
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn duplicate_task_panics() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(0.0, 1.0, 0.0));
        tr.add_task(t(0.0), TaskId(1), costs(0.0, 1.0, 0.0));
    }

    #[test]
    fn completion_of_missing_task() {
        let tr = ServerTrace::new();
        assert_eq!(tr.completion_of(TaskId(9)), None);
    }

    /// `drain_schedule_without` must agree bit-for-bit with the clone-based
    /// force-finish path, including its return value.
    #[test]
    fn drain_without_matches_clone_force_finish() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(2.0, 30.0, 1.0));
        tr.add_task(t(1.0), TaskId(2), costs(0.0, 10.0, 0.0));
        tr.add_task(t(3.0), TaskId(3), costs(1.0, 5.0, 2.0));
        let mut scratch = DrainScratch::new();
        let mut fast = Vec::new();
        for now in [3.0, 8.0, 20.0, 100.0] {
            for victim in [TaskId(1), TaskId(2), TaskId(3), TaskId(99)] {
                let removed = tr.drain_schedule_without(&mut scratch, t(now), victim, &mut fast);
                let mut clone = tr.clone();
                let clone_removed = clone.force_finish(t(now), victim);
                let slow = clone.drain_schedule();
                assert_eq!(removed, clone_removed, "now={now}, victim={victim}");
                assert_eq!(fast.len(), slow.len(), "now={now}, victim={victim}");
                for (a, b) in fast.iter().zip(&slow) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.as_secs().to_bits(), b.1.as_secs().to_bits());
                }
            }
        }
    }

    /// Documents a real (and initially surprising) property of the
    /// three-phase model: adding a task can make a *bystander* finish
    /// earlier, because the new task slows a competitor's input transfer
    /// and thereby delays that competitor's entry into the CPU stage.
    /// The paper's perturbation is defined on the CPU sharing intuition;
    /// the HTM clamps negative values to zero accordingly.
    #[test]
    fn three_phase_insertion_can_help_a_bystander() {
        // T1: long input transfer, then compute. T2: pure compute.
        let mut base = ServerTrace::new();
        base.add_task(t(0.0), TaskId(1), costs(10.0, 10.0, 0.0));
        base.add_task(t(0.0), TaskId(2), costs(0.0, 15.0, 0.0));
        let before: std::collections::HashMap<_, _> = base.drain_schedule().into_iter().collect();
        // Insert T3 with a big input transfer: it halves T1's input rate,
        // postponing T1's arrival in the CPU stage and letting T2 run alone
        // for longer.
        let mut with = base.clone();
        with.add_task(t(0.0), TaskId(3), costs(40.0, 1.0, 0.0));
        let after: std::collections::HashMap<_, _> = with.drain_schedule().into_iter().collect();
        assert!(
            after[&TaskId(2)] < before[&TaskId(2)],
            "bystander not helped: {:?} -> {:?}",
            before[&TaskId(2)],
            after[&TaskId(2)]
        );
    }

    /// The fast what-if drain (prefix cursor + truncation) must agree bit
    /// for bit with `drain_schedule_into` on the probe's completion —
    /// across repeated probes at the same `now` (prefix hits), later `now`s
    /// (prefix resume), and after trace mutations (prefix invalidation).
    #[test]
    fn fast_drain_matches_slow_drain_bitwise() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), costs(2.0, 30.0, 1.0));
        tr.add_task(t(1.0), TaskId(2), costs(0.0, 10.0, 0.0));
        tr.add_task(t(3.0), TaskId(3), costs(1.0, 5.0, 2.0));
        let mut scratch = DrainScratch::new();
        let mut prefix = PrefixCursor::new();
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        let mut hits = 0usize;
        let mut mutated_at = 0;
        for (i, now) in [4.0, 4.0, 4.0, 9.0, 9.0, 25.0, 25.0]
            .into_iter()
            .enumerate()
        {
            if i == 5 {
                // Mutate the trace mid-sequence: the cursor must invalidate.
                tr.add_task(t(20.0), TaskId(50), costs(0.5, 8.0, 0.5));
                mutated_at = i;
            }
            for (probe, pc) in [
                (TaskId(100), costs(1.0, 20.0, 1.0)),
                (TaskId(101), costs(0.0, 3.0, 0.0)),
            ] {
                for truncate in [false, true] {
                    let (hit, truncated) = tr.drain_schedule_into_fast(
                        &mut scratch,
                        &mut prefix,
                        t(now),
                        probe,
                        pc,
                        truncate,
                        &mut fast,
                    );
                    hits += hit as usize;
                    tr.drain_schedule_into(&mut scratch, Some((t(now), probe, pc)), &mut slow);
                    if truncate && truncated {
                        assert!(fast.len() < slow.len(), "truncated output must be shorter");
                    } else {
                        assert_eq!(fast.len(), slow.len(), "now={now}, probe={probe}");
                    }
                    // The fast output is a bit-exact prefix of the slow one.
                    for (a, b) in fast.iter().zip(&slow) {
                        assert_eq!(a.0, b.0, "now={now}, probe={probe}");
                        assert_eq!(a.1.as_secs().to_bits(), b.1.as_secs().to_bits());
                    }
                    assert!(
                        fast.iter().any(|e| e.0 == probe),
                        "probe completion present even when truncated"
                    );
                }
            }
        }
        // Every call but the very first at each (generation, now) resumes
        // the prefix: 7 rounds × 4 calls, minus the first round's first
        // call, minus the post-mutation round's first call.
        assert_eq!(
            hits,
            7 * 4 - 2,
            "prefix hit pattern (mutated at {mutated_at})"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    prop_compose! {
        fn arb_costs()(i in 0.0f64..5.0, c in 0.1f64..50.0, o in 0.0f64..5.0) -> PhaseCosts {
            PhaseCosts::new(i, c, o)
        }
    }

    proptest! {
        /// Every added task eventually finishes, exactly once.
        #[test]
        fn all_tasks_finish(
            specs in proptest::collection::vec((0.0f64..100.0, arb_costs()), 1..25)
        ) {
            let mut tr = ServerTrace::new();
            let mut arrivals: Vec<(f64, PhaseCosts)> = specs;
            arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (i, (arr, c)) in arrivals.iter().enumerate() {
                tr.add_task(t(*arr), TaskId(i as u64), *c);
            }
            tr.drain();
            prop_assert_eq!(tr.finished().len(), arrivals.len());
            let mut ids: Vec<u64> = tr.finished().iter().map(|(id, _)| id.0).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..arrivals.len() as u64).collect::<Vec<_>>());
        }

        /// A task never finishes before its unloaded duration has elapsed
        /// (sharing can only slow it down) — the invariant behind the
        /// stretch metric being ≥ 1.
        #[test]
        fn completion_at_least_unloaded_duration(
            specs in proptest::collection::vec((0.0f64..50.0, arb_costs()), 1..20)
        ) {
            let mut tr = ServerTrace::new();
            let mut arrivals = specs;
            arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (i, (arr, c)) in arrivals.iter().enumerate() {
                tr.add_task(t(*arr), TaskId(i as u64), *c);
            }
            tr.drain();
            for (id, fin) in tr.finished() {
                let (arr, c) = &arrivals[id.0 as usize];
                prop_assert!(
                    fin.as_secs() + 1e-6 >= arr + c.total(),
                    "task {id} finished at {fin:?}, arrival {arr}, unloaded {}",
                    c.total()
                );
            }
        }

        /// In the compute-only model (no transfer phases), inserting a task
        /// never speeds up already-mapped tasks: all perturbations are
        /// non-negative. (With transfer phases this is *not* a theorem:
        /// the insertion can delay a competitor's input transfer and
        /// thereby ease CPU contention for a third task — see
        /// `three_phase_insertion_can_help_a_bystander` below.)
        #[test]
        fn compute_only_insertion_only_delays(
            specs in proptest::collection::vec(0.1f64..50.0, 1..15)
                .prop_map(|cs| cs.into_iter().map(|c| PhaseCosts::new(0.0, c, 0.0)).collect::<Vec<_>>()),
            new_compute in 0.1f64..50.0,
            when_frac in 0.0f64..1.0,
        ) {
            let new_costs = PhaseCosts::new(0.0, new_compute, 0.0);
            let mut tr = ServerTrace::new();
            for (i, c) in specs.iter().enumerate() {
                tr.add_task(t(0.0), TaskId(i as u64), *c);
            }
            let horizon = specs.iter().map(|c| c.total()).sum::<f64>();
            let now = t(when_frac * horizon);
            tr.advance(now);
            let before: std::collections::HashMap<TaskId, SimTime> =
                tr.drain_schedule().into_iter().collect();
            let mut with = tr.clone();
            with.add_task(now, TaskId(999), new_costs);
            let after: std::collections::HashMap<TaskId, SimTime> =
                with.drain_schedule().into_iter().collect();
            for (task, fin_before) in &before {
                let fin_after = after[task];
                prop_assert!(
                    fin_after.as_secs() >= fin_before.as_secs() - 1e-6,
                    "{task} sped up: {fin_before:?} -> {fin_after:?}"
                );
            }
        }

        /// Advancing in many small steps gives the same completions as one
        /// big advance (piecewise integration is exact, not approximate).
        #[test]
        fn advance_granularity_irrelevant(
            specs in proptest::collection::vec(arb_costs(), 1..10),
            steps in 1usize..20,
        ) {
            let mut coarse = ServerTrace::new();
            let mut fine = ServerTrace::new();
            for (i, c) in specs.iter().enumerate() {
                coarse.add_task(t(0.0), TaskId(i as u64), *c);
                fine.add_task(t(0.0), TaskId(i as u64), *c);
            }
            let horizon = specs.iter().map(|c| c.total()).sum::<f64>() + 1.0;
            coarse.advance(t(horizon));
            for k in 1..=steps {
                fine.advance(t(horizon * k as f64 / steps as f64));
            }
            prop_assert_eq!(coarse.finished().len(), fine.finished().len());
            for (a, b) in coarse.finished().iter().zip(fine.finished()) {
                prop_assert_eq!(a.0, b.0);
                prop_assert!(a.1.approx_eq(b.1, 1e-6));
            }
        }

        /// The fast what-if drain is bit-identical to the reference drain
        /// for arbitrary resident schedules, probe costs, query times and
        /// truncation choices — including prefix-cursor reuse across a
        /// monotone sequence of query times.
        #[test]
        fn fast_drain_bitwise_equals_reference(
            specs in proptest::collection::vec((0.0f64..40.0, arb_costs()), 1..15),
            probe_costs in arb_costs(),
            nows in proptest::collection::vec(0.0f64..120.0, 1..6),
            truncate in proptest::bool::ANY,
        ) {
            let mut tr = ServerTrace::new();
            let mut arrivals = specs;
            arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (i, (arr, c)) in arrivals.iter().enumerate() {
                tr.add_task(t(*arr), TaskId(i as u64), *c);
            }
            let mut sorted_nows = nows;
            sorted_nows.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut scratch = DrainScratch::new();
            let mut prefix = PrefixCursor::new();
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            for (k, now) in sorted_nows.iter().enumerate() {
                let now = t(now.max(tr.cursor().as_secs()));
                let probe = TaskId(1000 + k as u64);
                tr.drain_schedule_into(&mut scratch, Some((now, probe, probe_costs)), &mut slow);
                let (_, truncated) = tr.drain_schedule_into_fast(
                    &mut scratch, &mut prefix, now, probe, probe_costs, truncate, &mut fast,
                );
                prop_assert!(fast.iter().any(|e| e.0 == probe));
                if truncated {
                    prop_assert!(fast.len() < slow.len());
                } else {
                    prop_assert_eq!(fast.len(), slow.len());
                }
                for (a, b) in fast.iter().zip(&slow) {
                    prop_assert_eq!(a.0, b.0);
                    prop_assert_eq!(a.1.as_secs().to_bits(), b.1.as_secs().to_bits());
                }
            }
        }
    }
}

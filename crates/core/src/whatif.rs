//! The what-if query surface heuristics schedule against.
//!
//! Every HTM-based heuristic asks three questions at decision time:
//! *what if* the task ran on a candidate (one prediction per candidate,
//! batched), *what if* it ran on some server outside the shortlist (a
//! wrapper heuristic restoring a wider list), and *how much memory* does
//! the model believe a server holds right now. [`WhatIf`] is exactly that
//! surface, object-safe so a [`SchedView`](crate::heuristics::SchedView)
//! can be built over either:
//!
//! * one [`Htm`] — the single-agent configuration, and the executable
//!   spec of everything below, or
//! * a **shard federation** (`cas-middleware`'s router): per-shard HTMs,
//!   with each query routed to the shard owning the server and batched
//!   queries dispatched per shard. The heuristics cannot tell the
//!   difference — which is the point: the paper's policies run unchanged
//!   on a partitioned farm.
//!
//! Implementations must answer in terms of **global** server ids; a
//! federated backend translates at its boundary.

use crate::htm::Htm;
use crate::prediction::Prediction;
use cas_platform::{ServerId, TaskInstance};
use cas_sim::SimTime;

/// An object-safe source of HTM what-if answers.
pub trait WhatIf {
    /// Simulates mapping `task` on `server` at `now`; `None` when the
    /// server cannot solve the task's problem.
    fn predict(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction>;

    /// [`WhatIf::predict`] into caller-owned storage: `true` with `out`
    /// overwritten in place when the server can solve, `false` (out
    /// untouched) otherwise. Must equal [`WhatIf::predict`] bit for bit;
    /// backends override the default to reuse `out.perturbations`
    /// instead of allocating a fresh prediction — the zero-allocation
    /// steady-state path queries through here.
    fn predict_into(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
        out: &mut Prediction,
    ) -> bool {
        match self.predict(now, server, task) {
            Some(p) => {
                *out = p;
                true
            }
            None => false,
        }
    }

    /// One what-if query per candidate in a single batch; `results[k]`
    /// corresponds to `candidates[k]`. Must equal calling
    /// [`WhatIf::predict`] per candidate.
    fn predict_all(
        &mut self,
        now: SimTime,
        task: &TaskInstance,
        candidates: &[ServerId],
    ) -> Vec<Option<Prediction>>;

    /// The model's estimate of `server`'s resident memory at `now`, MB.
    fn resident_estimate(&mut self, now: SimTime, server: ServerId) -> f64;
}

impl WhatIf for Htm {
    fn predict(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction> {
        Htm::predict(self, now, server, task)
    }

    fn predict_into(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
        out: &mut Prediction,
    ) -> bool {
        Htm::predict_into(self, now, server, task, out)
    }

    fn predict_all(
        &mut self,
        now: SimTime,
        task: &TaskInstance,
        candidates: &[ServerId],
    ) -> Vec<Option<Prediction>> {
        Htm::predict_all(self, now, task, candidates)
    }

    fn resident_estimate(&mut self, now: SimTime, server: ServerId) -> f64 {
        Htm::resident_estimate(self, now, server)
    }
}

//! Gantt charts (Fig. 1).
//!
//! The HTM "can therefore build or update the Gantt Chart for each server
//! when a new incoming task is mapped". This module turns a recording
//! `ServerTrace` (see [`crate::trace`]) into a structured chart and
//! renders it as ASCII art — the reproduction of the paper's Fig. 1, where
//! each task's row shows the CPU share it held over time (100 %, 50 %,
//! 33.3 %, …).

use crate::trace::{ServerTrace, TraceSegment};
use cas_platform::{Phase, TaskId};
use cas_sim::SimTime;
use std::fmt::Write as _;

/// One drawn interval in a task's row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanttSegment {
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Which phase the task was in.
    pub phase: Phase,
    /// Fraction of the phase's resource held, in (0, 1].
    pub share: f64,
}

/// All segments of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttRow {
    /// The task.
    pub task: TaskId,
    /// Its segments in time order.
    pub segments: Vec<GanttSegment>,
}

impl GanttRow {
    /// First instant the task appears.
    pub fn start(&self) -> Option<SimTime> {
        self.segments.first().map(|s| s.start)
    }

    /// Last instant the task appears (its completion on this server).
    pub fn end(&self) -> Option<SimTime> {
        self.segments.last().map(|s| s.end)
    }
}

/// A per-server Gantt chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Gantt {
    /// One row per task, in first-appearance order.
    pub rows: Vec<GanttRow>,
}

impl Gantt {
    /// Extracts the chart from a recording trace.
    ///
    /// Returns an empty chart if the trace was not recording.
    pub fn from_trace(trace: &ServerTrace) -> Gantt {
        let mut rows: Vec<GanttRow> = Vec::new();
        for seg in trace.segments() {
            let TraceSegment {
                task,
                phase,
                start,
                end,
                share,
            } = *seg;
            let row = match rows.iter_mut().find(|r| r.task == task) {
                Some(r) => r,
                None => {
                    rows.push(GanttRow {
                        task,
                        segments: Vec::new(),
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.segments.push(GanttSegment {
                start,
                end,
                phase,
                share,
            });
        }
        for row in &mut rows {
            row.segments
                .sort_by(|a, b| a.start.cmp(&b.start).then(a.end.cmp(&b.end)));
        }
        rows.sort_by(|a, b| {
            a.start()
                .unwrap_or(SimTime::ZERO)
                .cmp(&b.start().unwrap_or(SimTime::ZERO))
                .then(a.task.cmp(&b.task))
        });
        Gantt { rows }
    }

    /// The chart's horizon (latest segment end).
    pub fn horizon(&self) -> SimTime {
        self.rows
            .iter()
            .filter_map(|r| r.end())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Renders the chart as ASCII, `width` columns wide.
    ///
    /// Each row shows the task id, then one character per time cell:
    /// `.` idle/not present, `i`/`o` input/output transfer, and for the
    /// compute phase a digit encoding the share (`#` = 100 %, `5` = 50 %,
    /// `3` = 33 %, `2` = 25 %, …). A legend with exact share percentages per
    /// segment follows, mirroring the annotations of Fig. 1.
    pub fn render_ascii(&self, width: usize) -> String {
        let horizon = self.horizon().as_secs().max(1e-9);
        let width = width.max(10);
        let cell = horizon / width as f64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "time 0 {:-^w$} {horizon:.1}s",
            "",
            w = width.saturating_sub(2)
        );
        for row in &self.rows {
            let mut line = vec!['.'; width];
            for seg in &row.segments {
                let c0 = ((seg.start.as_secs() / cell) as usize).min(width - 1);
                let c1 = ((seg.end.as_secs() / cell).ceil() as usize).clamp(c0 + 1, width);
                let ch = match seg.phase {
                    Phase::Input => 'i',
                    Phase::Output => 'o',
                    Phase::Compute => share_char(seg.share),
                };
                for c in line.iter_mut().take(c1).skip(c0) {
                    *c = ch;
                }
            }
            let _ = writeln!(
                out,
                "{:>6} {}",
                row.task.to_string(),
                line.iter().collect::<String>()
            );
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{:>6}:", row.task.to_string());
            for seg in &row.segments {
                if seg.phase == Phase::Compute {
                    let _ = write!(
                        out,
                        " [{:.1}-{:.1}s @{:.1}%]",
                        seg.start.as_secs(),
                        seg.end.as_secs(),
                        seg.share * 100.0
                    );
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Character encoding of a CPU share for the ASCII chart.
fn share_char(share: f64) -> char {
    if share >= 0.995 {
        '#'
    } else if share >= 0.495 {
        '5'
    } else if share >= 0.32 {
        '3'
    } else if share >= 0.24 {
        '2'
    } else {
        '1'
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::PhaseCosts;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Recreates the Fig. 1 scenario: two tasks computing, a third arrives,
    /// shares drop from 50 % to 33.3 %.
    fn fig1_trace() -> ServerTrace {
        let mut tr = ServerTrace::new().with_recording();
        tr.add_task(t(0.0), TaskId(1), PhaseCosts::new(0.0, 60.0, 0.0));
        tr.add_task(t(0.0), TaskId(2), PhaseCosts::new(0.0, 90.0, 0.0));
        tr.advance(t(30.0));
        tr.add_task(t(30.0), TaskId(3), PhaseCosts::new(0.0, 30.0, 0.0));
        tr.drain();
        tr
    }

    #[test]
    fn rows_cover_all_tasks_in_order() {
        let g = Gantt::from_trace(&fig1_trace());
        let ids: Vec<TaskId> = g.rows.iter().map(|r| r.task).collect();
        assert_eq!(ids, vec![TaskId(1), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn share_transitions_recorded() {
        let g = Gantt::from_trace(&fig1_trace());
        let t1 = &g.rows[0];
        // T1: 50% from 0..30 (with T2), 33.3% once T3 arrives, back up as
        // others finish.
        assert_eq!(t1.segments[0].share, 0.5);
        assert!((t1.segments[1].share - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t1.start(), Some(t(0.0)));
    }

    #[test]
    fn horizon_is_last_completion() {
        let tr = fig1_trace();
        let g = Gantt::from_trace(&tr);
        let last = tr.finished().iter().map(|&(_, f)| f).max().unwrap();
        assert_eq!(g.horizon(), last);
    }

    #[test]
    fn ascii_render_contains_rows_and_legend() {
        let g = Gantt::from_trace(&fig1_trace());
        let art = g.render_ascii(60);
        assert!(art.contains("T1"));
        assert!(art.contains("T3"));
        assert!(art.contains('%'));
        // Three task rows plus header plus legend lines.
        assert!(art.lines().count() >= 7);
    }

    #[test]
    fn empty_trace_renders_empty_chart() {
        let tr = ServerTrace::new().with_recording();
        let g = Gantt::from_trace(&tr);
        assert!(g.rows.is_empty());
        assert_eq!(g.horizon(), SimTime::ZERO);
        let _ = g.render_ascii(40); // must not panic
    }

    #[test]
    fn non_recording_trace_gives_empty_chart() {
        let mut tr = ServerTrace::new();
        tr.add_task(t(0.0), TaskId(1), PhaseCosts::new(1.0, 1.0, 1.0));
        tr.drain();
        assert!(Gantt::from_trace(&tr).rows.is_empty());
    }

    #[test]
    fn transfer_phases_rendered_distinctly() {
        let mut tr = ServerTrace::new().with_recording();
        tr.add_task(t(0.0), TaskId(1), PhaseCosts::new(10.0, 10.0, 10.0));
        tr.drain();
        let g = Gantt::from_trace(&tr);
        let phases: Vec<Phase> = g.rows[0].segments.iter().map(|s| s.phase).collect();
        assert_eq!(phases, vec![Phase::Input, Phase::Compute, Phase::Output]);
        let art = g.render_ascii(30);
        assert!(art.contains('i'));
        assert!(art.contains('o'));
        assert!(art.contains('#'));
    }
}

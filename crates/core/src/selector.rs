//! Stage 1 of the scheduling pipeline: candidate selection.
//!
//! Every HTM-based heuristic pays one speculative drain per candidate
//! server per arriving task. With the candidate list equal to *all*
//! solvers — the paper's "for each server that can resolve the new
//! submitted problem" loop — that fan-out is linear in the platform size
//! and dominates decisions on 1k-server campaigns. The decision path is
//! therefore split in two:
//!
//! 1. a [`CandidateSelector`] proposes a shortlist from the cheap,
//!    incrementally maintained [`StaticIndex`] (static unloaded cost ×
//!    the agent's believed in-flight count — no HTM query, no O(n)
//!    platform rescan);
//! 2. the [`Heuristic`](crate::heuristics::Heuristic) runs its HTM
//!    predictions (still batched through `predict_all`) on the shortlist
//!    only.
//!
//! Three backends ship:
//!
//! * [`Exhaustive`] — the identity stage: shortlist = all admissible
//!   solvers, in server-id order. This *is* the pre-pipeline behaviour
//!   and serves as the executable specification of the other two.
//! * [`TopK`] — the `k` admissible solvers of lowest stage-1 score. With
//!   `k ≥ n` the shortlist, re-sorted to id order, is provably identical
//!   to [`Exhaustive`]'s (the differential proptest below drives both
//!   through arbitrary commit/predict/retract interleavings and asserts
//!   bit-equal picks and predictions).
//! * [`Adaptive`] — [`TopK`] with a self-adjusting width: the cut widens
//!   on the spot when stage-1 scores are nearly tied at the boundary
//!   (pruning there would be arbitrary), and the base width grows or
//!   shrinks with an EWMA of *edge regret* — how often stage 2 picks a
//!   server from the tail of the shortlist, which is exactly the signal
//!   that the next-best pruned server might have won.
//!
//! Shortlists are always emitted in ascending server id, because the
//! heuristics break exact objective ties by scan order: a selector must
//! not be able to change a tie-break by reordering, only by pruning.

use cas_platform::{CostTable, ProblemId, ServerId, StaticIndex};

/// Everything stage 1 may look at for one decision. Deliberately *no*
/// HTM access: the whole point is that the shortlist costs no drains.
pub struct SelectorInput<'a> {
    /// The problem the arriving task instantiates.
    pub problem: ProblemId,
    /// Static cost information.
    pub costs: &'a CostTable,
    /// The incrementally maintained load/static-cost index.
    pub index: &'a StaticIndex,
}

/// An object-safe stage-1 candidate selector.
pub trait CandidateSelector: Send {
    /// Display name, as recorded in bench output.
    fn name(&self) -> &'static str;

    /// Fills `out` with the stage-2 candidate shortlist, in ascending
    /// server id. `admit` rejects servers the agent must not consider
    /// (excluded by a retry, known collapsed); a rejected server must not
    /// appear in `out`.
    fn shortlist(
        &mut self,
        input: SelectorInput<'_>,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<ServerId>,
    );

    /// Scored variant of [`CandidateSelector::shortlist`] for callers
    /// that need the stage-1 scores alongside the ids (a shard federation
    /// merging shortlists by score): fills `out` with `(server, score)`
    /// pairs — any order — and returns `true`. Backends that do not track
    /// scores return `false` without touching `out`, and the caller falls
    /// back to [`CandidateSelector::shortlist`] plus index lookups. When
    /// supported, the id set must equal what `shortlist` would emit from
    /// the same state, and selector state must advance identically.
    fn shortlist_scored(
        &mut self,
        input: SelectorInput<'_>,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<(ServerId, f64)>,
    ) -> bool {
        let _ = (input, admit, out);
        false
    }

    /// A hard upper bound on the shortlist length this selector can ever
    /// emit (for any input), or `None` when it has no fixed bound (the
    /// exhaustive backend). A shard federation combines this with the
    /// index's per-problem solvable count to decide — *before* running
    /// the selector — whether a shard could possibly contribute to the
    /// merged shortlist: a shard whose skyline score cannot beat the cut
    /// line and whose width bound cannot widen the merge is skipped
    /// without its selector being called at all. Implementations
    /// overriding this must guarantee `shortlist` never emits more than
    /// the bound, and must tolerate decisions on which they are not
    /// called (skipping is a pure pruning of the merge, so a skipped
    /// shard never owns the eventual pick and never receives
    /// [`CandidateSelector::observe_selection`] for that decision).
    fn width_cap(&self) -> Option<usize> {
        None
    }

    /// Feedback after stage 2: the heuristic chose `chosen` from the last
    /// shortlist. Lets adaptive backends track regret. Default: ignored.
    fn observe_selection(&mut self, chosen: ServerId) {
        let _ = chosen;
    }

    /// Feedback when a task placed through this selector completes:
    /// the observed flow versus the flow the model predicted at commit
    /// time (durations in seconds — durations, not absolute dates, so a
    /// relative tolerance means the same thing at any point of a long
    /// campaign). Lets adaptive backends track *stretch* — quality
    /// regressions the rank-based regret signal cannot see. Default:
    /// ignored.
    fn observe_outcome(&mut self, observed_completion: f64, predicted_completion: f64) {
        let _ = (observed_completion, predicted_completion);
    }
}

/// Stage-1 identity: every admissible solver, in id order — the
/// pre-pipeline candidate list and the spec the pruning backends are
/// differentially tested against.
#[derive(Debug, Default, Clone, Copy)]
pub struct Exhaustive;

impl CandidateSelector for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn shortlist(
        &mut self,
        input: SelectorInput<'_>,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<ServerId>,
    ) {
        out.clear();
        out.extend(
            (0..input.costs.n_servers() as u32)
                .map(ServerId)
                .filter(|&s| input.costs.costs(input.problem, s).is_some() && admit(s)),
        );
    }
}

/// Fixed-width pruning: the `k` admissible solvers of lowest stage-1
/// score, re-sorted to id order.
#[derive(Debug, Clone)]
pub struct TopK {
    /// Shortlist width (≥ 1; wider than the platform degenerates to
    /// [`Exhaustive`]).
    pub k: usize,
    /// Reusable (server, score) buffer in score order.
    scored: Vec<(ServerId, f64)>,
}

impl TopK {
    /// A selector keeping the `k` best candidates.
    ///
    /// # Panics
    /// Panics if `k == 0` (an empty shortlist would fail every task).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "TopK needs k >= 1");
        TopK {
            k,
            scored: Vec::new(),
        }
    }
}

impl CandidateSelector for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn shortlist(
        &mut self,
        input: SelectorInput<'_>,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<ServerId>,
    ) {
        input
            .index
            .k_best(input.problem, self.k, admit, &mut self.scored);
        out.clear();
        out.extend(self.scored.iter().map(|&(s, _)| s));
        out.sort_unstable();
    }

    fn shortlist_scored(
        &mut self,
        input: SelectorInput<'_>,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<(ServerId, f64)>,
    ) -> bool {
        // The k-best walk already carries the scores — hand them out
        // instead of making the caller re-derive each one.
        input.index.k_best(input.problem, self.k, admit, out);
        true
    }

    fn width_cap(&self) -> Option<usize> {
        Some(self.k)
    }
}

/// Self-adjusting pruning: a [`TopK`] whose width tracks decision quality.
///
/// Three mechanisms, all deterministic:
///
/// * **Near-tie widening** (per decision): after taking the base `k`, the
///   cut keeps absorbing servers whose stage-1 score is within
///   `tie_margin` (relative) of the k-th best — when the boundary is a
///   coin-flip, pruning at it would be arbitrary, so don't.
/// * **Regret tracking** (across decisions): every stage-2 pick lands in
///   the stored shortlist; picks from its worst-scored quartile (or
///   absent from it entirely, as after a wrapper heuristic widened the
///   list) bump an EWMA. Above `widen_above` the base width doubles
///   (capped at `k_max`); below `shrink_below` it decays by one (floored
///   at `k_min`). A pick near the edge means the static proxy mis-ranked
///   the eventual winner, so the next-best pruned server might have won —
///   the width grows before that becomes observable damage.
/// * **Stretch tracking** (across completions): the regret EWMA reacts to
///   *rank* disagreements but is blind to quality — a shortlist whose
///   head keeps winning can still be a bad shortlist if the pruned
///   servers would have finished sooner. Completed tasks feed back
///   through [`CandidateSelector::observe_outcome`]: completions landing
///   more than `stretch_tol` (relative) past their commit-time prediction
///   bump a second EWMA, and above `widen_above` it too doubles the
///   width. The width only decays when **both** EWMAs are calm.
#[derive(Debug, Clone)]
pub struct Adaptive {
    /// Current base width.
    k: usize,
    /// Width floor.
    pub k_min: usize,
    /// Width ceiling.
    pub k_max: usize,
    /// Relative near-tie window at the cut boundary.
    pub tie_margin: f64,
    /// EWMA smoothing factor for edge regret.
    pub alpha: f64,
    /// Regret level that doubles the width.
    pub widen_above: f64,
    /// Regret level that lets the width decay.
    pub shrink_below: f64,
    /// Relative slack before an observed completion counts as a stretch
    /// regression (0.10 = 10 % past the commit-time prediction).
    pub stretch_tol: f64,
    /// EWMA smoothing factor for stretch regressions (slower than the
    /// regret EWMA: completions arrive task-by-task and lag decisions).
    pub stretch_alpha: f64,
    regret: f64,
    stretch: f64,
    /// Last emitted shortlist in ascending *score* order.
    last: Vec<(ServerId, f64)>,
}

impl Adaptive {
    /// An adaptive selector starting (and bottoming out) at `k_min`,
    /// never exceeding `k_max`.
    ///
    /// # Panics
    /// Panics unless `1 <= k_min <= k_max`.
    pub fn new(k_min: usize, k_max: usize) -> Self {
        assert!(k_min >= 1 && k_min <= k_max, "need 1 <= k_min <= k_max");
        Adaptive {
            k: k_min,
            k_min,
            k_max,
            tie_margin: 0.02,
            alpha: 0.05,
            widen_above: 0.30,
            shrink_below: 0.05,
            stretch_tol: 0.10,
            stretch_alpha: 0.02,
            regret: 0.0,
            stretch: 0.0,
            last: Vec::new(),
        }
    }

    /// The current base width (diagnostics).
    pub fn current_k(&self) -> usize {
        self.k
    }

    /// The current edge-regret EWMA (diagnostics).
    pub fn regret(&self) -> f64 {
        self.regret
    }

    /// The current stretch-regression EWMA (diagnostics).
    pub fn stretch_regret(&self) -> f64 {
        self.stretch
    }
}

impl Adaptive {
    /// The widest cut the *current* decision can emit: the base width
    /// plus near-tie widening, which stops at twice the base (clamped to
    /// the configured `[k_min, k_max]` band). This is a live bound — it
    /// tightens as the base width shrinks — and `fill_last` breaks on
    /// exactly this value, so [`CandidateSelector::width_cap`] can
    /// advertise it instead of the conservative `k_max`.
    fn current_cap(&self) -> usize {
        (self.k * 2).clamp(self.k_min, self.k_max)
    }

    /// The shared stage-1 body: fills `self.last` with the current cut
    /// (base width plus near-tie widening), in ascending score order.
    fn fill_last(&mut self, input: SelectorInput<'_>, admit: &dyn Fn(ServerId) -> bool) {
        self.last.clear();
        let cap = self.current_cap();
        let mut iter = input.index.ranked_iter(input.problem, admit);
        self.last.extend(iter.by_ref().take(self.k));
        if let Some(&(_, cut)) = self.last.last() {
            // Near-tie widening: keep absorbing while the next score is
            // within the margin of the cut (capped at the live bound).
            let limit = cut * (1.0 + self.tie_margin);
            for (s, score) in iter {
                if score > limit || self.last.len() >= cap {
                    break;
                }
                self.last.push((s, score));
            }
        }
    }
}

impl CandidateSelector for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn shortlist(
        &mut self,
        input: SelectorInput<'_>,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<ServerId>,
    ) {
        self.fill_last(input, admit);
        out.clear();
        out.extend(self.last.iter().map(|&(s, _)| s));
        out.sort_unstable();
    }

    fn shortlist_scored(
        &mut self,
        input: SelectorInput<'_>,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<(ServerId, f64)>,
    ) -> bool {
        self.fill_last(input, admit);
        out.clear();
        out.extend_from_slice(&self.last);
        true
    }

    fn width_cap(&self) -> Option<usize> {
        // The live bound: near-tie widening stops at twice the current
        // base width (`fill_last` breaks on the same value), so the cap
        // tracks the EWMA-driven width instead of pinning at `k_max` —
        // a calm selector advertises a narrow cut and lets the lazy
        // federation merge skip far more shards. Width changes happen in
        // the observe hooks, *after* the decision the cap was quoted
        // for, so the quote is sound for that decision.
        Some(self.current_cap())
    }

    fn observe_selection(&mut self, chosen: ServerId) {
        // The "edge" is the worst-scored quartile (at least the single
        // worst entry); a 1-element shortlist carries no signal and only
        // damps the EWMA toward zero.
        let len = self.last.len();
        let edge_from = len.saturating_sub((len / 4).max(1)).max(1);
        let edge = match self.last.iter().position(|&(s, _)| s == chosen) {
            Some(pos) => pos >= edge_from,
            // Not in the shortlist at all: a wrapper heuristic restored a
            // wider list and its pick beat everything we proposed — the
            // strongest possible mis-ranking signal.
            None => true,
        };
        self.regret = (1.0 - self.alpha) * self.regret + self.alpha * f64::from(edge);
        if self.regret > self.widen_above && self.k < self.k_max {
            self.k = (self.k * 2).min(self.k_max);
            // Reset so the wider cut gets a fresh read before widening
            // again.
            self.regret = 0.0;
        } else if self.regret < self.shrink_below
            && self.stretch < self.shrink_below
            && self.k > self.k_min
        {
            // Decay only on fully calm windows: rank agreement alone is
            // not enough while completions keep running late.
            self.k -= 1;
        }
    }

    fn observe_outcome(&mut self, observed_completion: f64, predicted_completion: f64) {
        // A completion is a regression when it lands more than the
        // tolerance past the commit-time prediction. Guard against
        // degenerate predictions (≤ 0): no signal either way.
        if predicted_completion <= 0.0 {
            return;
        }
        let late = observed_completion > predicted_completion * (1.0 + self.stretch_tol);
        self.stretch =
            (1.0 - self.stretch_alpha) * self.stretch + self.stretch_alpha * f64::from(late);
        if self.stretch > self.widen_above && self.k < self.k_max {
            self.k = (self.k * 2).min(self.k_max);
            // Fresh read for the wider cut — but parked at the shrink
            // threshold, not zero, so the width cannot decay again until
            // an actually-calm window of on-time completions accrues.
            self.stretch = self.shrink_below;
            self.regret = 0.0;
        }
    }
}

/// Which stage-1 backend a run uses — configuration-level mirror of the
/// backends, like `HeuristicKind` for heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SelectorKind {
    /// No pruning (the executable spec).
    #[default]
    Exhaustive,
    /// Fixed-width k-best by stage-1 score.
    TopK {
        /// Shortlist width.
        k: usize,
    },
    /// Self-adjusting width within `[k_min, k_max]`.
    Adaptive {
        /// Width floor (and starting width).
        k_min: usize,
        /// Width ceiling.
        k_max: usize,
    },
}

impl SelectorKind {
    /// An adaptive selector sized for an `n`-server platform: floor 8,
    /// ceiling n (¼ of the platform at ≥ 32 servers).
    pub fn adaptive_for(n_servers: usize) -> Self {
        SelectorKind::Adaptive {
            k_min: 8.min(n_servers.max(1)),
            k_max: (n_servers / 4).max(8).min(n_servers.max(1)),
        }
    }

    /// Instantiates the backend.
    pub fn build(self) -> Box<dyn CandidateSelector> {
        match self {
            SelectorKind::Exhaustive => Box::new(Exhaustive),
            SelectorKind::TopK { k } => Box::new(TopK::new(k)),
            SelectorKind::Adaptive { k_min, k_max } => Box::new(Adaptive::new(k_min, k_max)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::Exhaustive => "exhaustive",
            SelectorKind::TopK { .. } => "topk",
            SelectorKind::Adaptive { .. } => "adaptive",
        }
    }

    /// Parses `exhaustive`, `topk` / `topk:K`, `adaptive` /
    /// `adaptive:MIN:MAX` (case-insensitive; `topk` defaults to k=16,
    /// `adaptive` to [8, 64]).
    pub fn parse(s: &str) -> Option<SelectorKind> {
        let lower = s.to_ascii_lowercase();
        let mut parts = lower.split(':');
        let head = parts.next()?;
        let kind = match head {
            "exhaustive" | "full" => {
                if parts.next().is_some() {
                    return None;
                }
                SelectorKind::Exhaustive
            }
            "topk" => {
                let k = match parts.next() {
                    Some(v) => v.parse().ok().filter(|&k| k >= 1)?,
                    None => 16,
                };
                SelectorKind::TopK { k }
            }
            "adaptive" => {
                let (k_min, k_max) = match (parts.next(), parts.next()) {
                    (None, _) => (8, 64),
                    (Some(a), Some(b)) => {
                        let lo = a.parse().ok().filter(|&k| k >= 1)?;
                        let hi = b.parse().ok().filter(|&k| k >= lo)?;
                        (lo, hi)
                    }
                    (Some(_), None) => return None,
                };
                SelectorKind::Adaptive { k_min, k_max }
            }
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::{PhaseCosts, Problem};

    /// 4 servers; P0 durations 100/150/300/300, P1 only on S2 (50).
    fn table() -> CostTable {
        let mut c = CostTable::new(4);
        c.add_problem(
            Problem::new("p0", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 150.0, 0.0)),
                Some(PhaseCosts::new(0.0, 300.0, 0.0)),
                Some(PhaseCosts::new(0.0, 300.0, 0.0)),
            ],
        );
        c.add_problem(
            Problem::new("p1", 0.0, 0.0, 0.0),
            vec![None, None, Some(PhaseCosts::new(0.0, 50.0, 0.0)), None],
        );
        c
    }

    fn run(
        sel: &mut dyn CandidateSelector,
        costs: &CostTable,
        index: &StaticIndex,
        problem: u32,
        admit: impl Fn(ServerId) -> bool,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        sel.shortlist(
            SelectorInput {
                problem: ProblemId(problem),
                costs,
                index,
            },
            &admit,
            &mut out,
        );
        out.into_iter().map(|s| s.0).collect()
    }

    #[test]
    fn exhaustive_matches_solvers_in_id_order() {
        let costs = table();
        let index = StaticIndex::new(&costs);
        let mut sel = Exhaustive;
        assert_eq!(run(&mut sel, &costs, &index, 0, |_| true), vec![0, 1, 2, 3]);
        assert_eq!(run(&mut sel, &costs, &index, 1, |_| true), vec![2]);
        assert_eq!(
            run(&mut sel, &costs, &index, 0, |s| s.0 != 1),
            vec![0, 2, 3]
        );
    }

    #[test]
    fn topk_prunes_by_score_and_emits_id_order() {
        let costs = table();
        let mut index = StaticIndex::new(&costs);
        // Load S0 so its score (100 + 300 of backlog = 400) falls behind
        // S1/S2/S3.
        for _ in 0..3 {
            index.on_commit(ServerId(0), 100.0);
        }
        let mut sel = TopK::new(2);
        assert_eq!(run(&mut sel, &costs, &index, 0, |_| true), vec![1, 2]);
        // k = 1: single best.
        let mut sel = TopK::new(1);
        assert_eq!(run(&mut sel, &costs, &index, 0, |_| true), vec![1]);
        // k > n: everything, id order — Exhaustive's output.
        let mut sel = TopK::new(100);
        assert_eq!(run(&mut sel, &costs, &index, 0, |_| true), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_candidate_sets_yield_empty_shortlists() {
        let costs = table();
        let index = StaticIndex::new(&costs);
        let none = |_s: ServerId| false;
        for sel in [
            &mut Exhaustive as &mut dyn CandidateSelector,
            &mut TopK::new(3),
            &mut Adaptive::new(1, 4),
        ] {
            assert_eq!(run(sel, &costs, &index, 0, none), Vec::<u32>::new());
            // P1 with its only solver rejected is empty too.
            assert_eq!(run(sel, &costs, &index, 1, |s| s.0 != 2), Vec::<u32>::new());
        }
    }

    #[test]
    fn adaptive_widens_on_near_ties() {
        let costs = table();
        let index = StaticIndex::new(&costs);
        // k_min = 3 cuts between the tied 300-scores of S2/S3: the near-tie
        // rule must absorb S3.
        let mut sel = Adaptive::new(3, 4);
        assert_eq!(run(&mut sel, &costs, &index, 0, |_| true), vec![0, 1, 2, 3]);
        // With the tie broken (S3 loaded → 600), the cut stays at 3.
        let mut index = StaticIndex::new(&costs);
        index.on_commit(ServerId(3), 300.0);
        assert_eq!(run(&mut sel, &costs, &index, 0, |_| true), vec![0, 1, 2]);
    }

    #[test]
    fn adaptive_widens_under_edge_regret_and_decays_when_calm() {
        let costs = table();
        let index = StaticIndex::new(&costs);
        let mut sel = Adaptive::new(2, 4);
        // Persistent tail picks: stage 2 keeps choosing the worst-ranked
        // shortlist entry → width must grow to k_max.
        for _ in 0..200 {
            let list = run(&mut sel, &costs, &index, 0, |_| true);
            let worst = ServerId(*list.last().unwrap());
            sel.observe_selection(worst);
            if sel.current_k() == 4 {
                break;
            }
        }
        assert_eq!(sel.current_k(), 4, "regret must widen the cut");
        // Persistent head picks: regret decays, width shrinks back.
        for _ in 0..400 {
            let list = run(&mut sel, &costs, &index, 0, |_| true);
            sel.observe_selection(ServerId(list[0]));
        }
        assert_eq!(sel.current_k(), 2, "calm decisions must shrink the cut");
    }

    #[test]
    fn adaptive_counts_out_of_shortlist_picks_as_regret() {
        let costs = table();
        let index = StaticIndex::new(&costs);
        let mut sel = Adaptive::new(2, 4);
        for _ in 0..200 {
            let _ = run(&mut sel, &costs, &index, 0, |_| true);
            sel.observe_selection(ServerId(3)); // never shortlisted at k=2
            if sel.current_k() == 4 {
                break;
            }
        }
        assert_eq!(sel.current_k(), 4);
    }

    #[test]
    fn adaptive_widens_on_stretch_regressions() {
        let mut sel = Adaptive::new(2, 4);
        // Completions keep landing 50 % past their predictions: the
        // stretch EWMA must widen the cut even though rank regret is zero.
        for _ in 0..200 {
            sel.observe_outcome(150.0, 100.0);
            if sel.current_k() == 4 {
                break;
            }
        }
        assert_eq!(sel.current_k(), 4, "stretch must widen the cut");
        assert_eq!(
            sel.stretch_regret(),
            sel.shrink_below,
            "widening parks the EWMA at the shrink threshold"
        );
    }

    #[test]
    fn adaptive_stretch_blocks_decay_until_calm() {
        let costs = table();
        let index = StaticIndex::new(&costs);
        let mut sel = Adaptive::new(2, 4);
        // Drive the width up via stretch, then keep picks calm (head
        // picks) while completions stay late: the width must hold.
        while sel.current_k() < 4 {
            sel.observe_outcome(150.0, 100.0);
        }
        for _ in 0..100 {
            let list = run(&mut sel, &costs, &index, 0, |_| true);
            sel.observe_selection(ServerId(list[0]));
            sel.observe_outcome(150.0, 100.0);
        }
        assert_eq!(sel.current_k(), 4, "late completions must block decay");
        // On-time completions let both EWMAs decay and the width shrink.
        for _ in 0..600 {
            let list = run(&mut sel, &costs, &index, 0, |_| true);
            sel.observe_selection(ServerId(list[0]));
            sel.observe_outcome(100.0, 100.0);
        }
        assert_eq!(sel.current_k(), 2, "calm windows must shrink the cut");
    }

    #[test]
    fn adaptive_outcome_ignores_degenerate_predictions() {
        let mut sel = Adaptive::new(2, 4);
        for _ in 0..100 {
            sel.observe_outcome(50.0, 0.0);
        }
        assert_eq!(sel.current_k(), 2);
        assert_eq!(sel.stretch_regret(), 0.0);
    }

    #[test]
    fn kind_parse_roundtrip() {
        assert_eq!(
            SelectorKind::parse("exhaustive"),
            Some(SelectorKind::Exhaustive)
        );
        assert_eq!(SelectorKind::parse("FULL"), Some(SelectorKind::Exhaustive));
        assert_eq!(
            SelectorKind::parse("topk"),
            Some(SelectorKind::TopK { k: 16 })
        );
        assert_eq!(
            SelectorKind::parse("topk:5"),
            Some(SelectorKind::TopK { k: 5 })
        );
        assert_eq!(
            SelectorKind::parse("adaptive"),
            Some(SelectorKind::Adaptive {
                k_min: 8,
                k_max: 64
            })
        );
        assert_eq!(
            SelectorKind::parse("Adaptive:4:32"),
            Some(SelectorKind::Adaptive {
                k_min: 4,
                k_max: 32
            })
        );
        for bad in [
            "",
            "topk:0",
            "topk:x",
            "adaptive:9:4",
            "adaptive:4",
            "nope",
            "topk:3:4",
        ] {
            assert_eq!(SelectorKind::parse(bad), None, "{bad}");
        }
        for kind in [
            SelectorKind::Exhaustive,
            SelectorKind::TopK { k: 3 },
            SelectorKind::Adaptive { k_min: 2, k_max: 9 },
        ] {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn adaptive_for_scales_with_platform() {
        assert_eq!(
            SelectorKind::adaptive_for(1000),
            SelectorKind::Adaptive {
                k_min: 8,
                k_max: 250
            }
        );
        assert_eq!(
            SelectorKind::adaptive_for(4),
            SelectorKind::Adaptive { k_min: 4, k_max: 4 }
        );
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn topk_zero_panics() {
        TopK::new(0);
    }

    /// `width_cap` is a true upper bound on every emitted shortlist:
    /// exhaustive is unbounded, TopK caps at k, Adaptive at its live
    /// bound even through near-tie widening.
    #[test]
    fn width_cap_bounds_emitted_width() {
        assert_eq!(Exhaustive.width_cap(), None);
        assert_eq!(TopK::new(3).width_cap(), Some(3));
        let costs = table();
        let index = StaticIndex::new(&costs);
        // k_min = 3 would absorb the tied S3 via near-tie widening, but
        // k_max = 3 pins the cap.
        let mut sel = Adaptive::new(3, 3);
        assert_eq!(sel.width_cap(), Some(3));
        let out = run(&mut sel, &costs, &index, 0, |_| true);
        assert_eq!(out.len(), 3);
        let mut topk = TopK::new(2);
        assert!(run(&mut topk, &costs, &index, 0, |_| true).len() <= 2);
    }

    /// The adaptive cap is *live*: a calm selector at base width `k`
    /// advertises `2k` (clamped to the band), not the conservative
    /// `k_max`, and the bound tracks the EWMA-driven width up and down.
    #[test]
    fn adaptive_width_cap_tracks_base_width() {
        let costs = table();
        let index = StaticIndex::new(&costs);
        let mut sel = Adaptive::new(2, 64);
        assert_eq!(sel.width_cap(), Some(4), "2·k, far below k_max");
        // Regret doubles the base width; the cap follows.
        for _ in 0..200 {
            let _ = run(&mut sel, &costs, &index, 0, |_| true);
            sel.observe_selection(ServerId(3));
            if sel.current_k() == 4 {
                break;
            }
        }
        assert_eq!(sel.current_k(), 4);
        assert_eq!(sel.width_cap(), Some(8));
        // Calm windows shrink it again, and the floor is k_min.
        for _ in 0..400 {
            let list = run(&mut sel, &costs, &index, 0, |_| true);
            sel.observe_selection(ServerId(list[0]));
        }
        assert_eq!(sel.current_k(), 2);
        assert_eq!(sel.width_cap(), Some(4));
        let sel = Adaptive::new(1, 1);
        assert_eq!(sel.width_cap(), Some(1), "clamped into the band");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::heuristics::{HeuristicKind, SchedView};
    use crate::htm::{Htm, SyncPolicy};
    use cas_platform::{LoadReport, PhaseCosts, Problem, TaskId, TaskInstance};
    use cas_sim::{RngStream, SimTime, StreamKind};
    use proptest::prelude::*;

    const N_SERVERS: usize = 5;
    const N_PROBLEMS: usize = 2;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    prop_compose! {
        fn arb_costs()(i in 0.0f64..3.0, c in 0.1f64..30.0, o in 0.0f64..3.0) -> PhaseCosts {
            PhaseCosts::new(i, c, o)
        }
    }

    fn build_table(costs: &[PhaseCosts], solvable: &[bool]) -> CostTable {
        let mut table = CostTable::new(N_SERVERS);
        for p in 0..N_PROBLEMS {
            let row = (0..N_SERVERS)
                .map(|s| {
                    let k = p * N_SERVERS + s;
                    (s == 0 || solvable[k]).then_some(costs[k])
                })
                .collect();
            table.add_problem(Problem::new(format!("p{p}"), 0.1, 0.1, 0.0), row);
        }
        table
    }

    proptest! {
        /// `TopK(k = n)` is **bit-identical** to `Exhaustive` over
        /// arbitrary interleavings of commit / predict / retract: at every
        /// decision both selectors produce the same shortlist, every
        /// heuristic picks the same server on both, and the winning
        /// predictions agree bit for bit — the acceptance property of the
        /// two-stage pipeline.
        #[test]
        fn topk_full_width_is_bitwise_exhaustive(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            ops in proptest::collection::vec(
                // (op kind, server, problem, time gap, excluded server)
                (0u32..10, 0u32..N_SERVERS as u32, 0u32..N_PROBLEMS as u32, 0.0f64..15.0,
                 0u32..N_SERVERS as u32),
                1..40,
            ),
        ) {
            let table = build_table(&costs, &solvable);
            let mut htm = Htm::new(table.clone(), SyncPolicy::None);
            let mut index = StaticIndex::new(&table);
            let mut exhaustive = Exhaustive;
            let mut topk = TopK::new(N_SERVERS);
            let loads: Vec<LoadReport> =
                (0..N_SERVERS as u32).map(|i| LoadReport::initial(ServerId(i))).collect();
            let mut now = 0.0f64;
            let mut next_id = 0u64;
            let mut committed: Vec<(TaskId, ServerId, f64)> = Vec::new();
            for (kind, server, problem, gap, excl) in ops {
                now += gap;
                let when = t(now);
                match kind {
                    // Decision rounds: both pipelines must agree exactly.
                    0..=5 => {
                        let probe = TaskInstance::new(
                            TaskId(1_000_000 + next_id),
                            ProblemId(problem),
                            when,
                        );
                        next_id += 1;
                        let admit = |s: ServerId| s.0 != excl;
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        exhaustive.shortlist(
                            SelectorInput { problem: probe.problem, costs: &table, index: &index },
                            &admit,
                            &mut a,
                        );
                        topk.shortlist(
                            SelectorInput { problem: probe.problem, costs: &table, index: &index },
                            &admit,
                            &mut b,
                        );
                        prop_assert_eq!(&a, &b, "shortlists diverged");
                        for h in [HeuristicKind::Hmct, HeuristicKind::Mp, HeuristicKind::Msf] {
                            let pick = |cands: Vec<ServerId>, htm: &mut Htm| {
                                let mut rng = RngStream::derive(7, StreamKind::TieBreak);
                                let mut view = SchedView::new(
                                    when, probe, cands, &table, &loads, htm, &mut rng,
                                );
                                let pick = h.build().select(&mut view)?;
                                let p = view.predict(pick).cloned();
                                Some((pick, p))
                            };
                            let pa = pick(a.clone(), &mut htm);
                            let pb = pick(b.clone(), &mut htm);
                            match (&pa, &pb) {
                                (None, None) => {}
                                (Some((sa, qa)), Some((sb, qb))) => {
                                    prop_assert_eq!(sa, sb, "{:?} diverged", h);
                                    prop_assert_eq!(qa, qb, "{:?} prediction diverged", h);
                                }
                                _ => prop_assert!(false, "{h:?}: one pipeline failed the task"),
                            }
                        }
                    }
                    // Commits keep HTM and index in lockstep.
                    6..=8 => {
                        let task = TaskInstance::new(TaskId(next_id), ProblemId(problem), when);
                        next_id += 1;
                        let target = if table.costs(task.problem, ServerId(server)).is_some() {
                            ServerId(server)
                        } else {
                            ServerId(0) // always solvable by construction
                        };
                        let work = table
                            .unloaded_duration(task.problem, target)
                            .expect("target is solvable");
                        htm.commit(when, target, &task);
                        index.on_commit(target, work);
                        committed.push((task.id, target, work));
                    }
                    // Retracts undo a commit on both sides. (`retract`
                    // returns false when the task's simulated completion
                    // already passed — the trace is clean either way, and
                    // the index ledger pairs the retract with its commit.)
                    _ => {
                        if let Some((id, srv, work)) = committed.pop() {
                            htm.retract(when, id);
                            index.on_retract(srv, work);
                        }
                    }
                }
            }
        }

        /// Pruned shortlists are always a subset of the exhaustive one,
        /// never empty while an admissible candidate exists, in strict id
        /// order, and within the width bound — for every backend and
        /// arbitrary index churn.
        #[test]
        fn shortlist_structural_invariants(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            churn in proptest::collection::vec((0u32..N_SERVERS as u32, proptest::bool::ANY), 0..30),
            k in 1usize..N_SERVERS + 3,
            problem in 0u32..N_PROBLEMS as u32,
            excl in 0u32..N_SERVERS as u32 + 1,
        ) {
            let table = build_table(&costs, &solvable);
            let mut index = StaticIndex::new(&table);
            let mut active = [0u32; N_SERVERS];
            for (s, up) in churn {
                let s = s as usize;
                if up {
                    index.on_commit(ServerId(s as u32), 2.5 * (s as f64 + 1.0));
                    active[s] += 1;
                } else if active[s] > 0 {
                    index.on_complete(ServerId(s as u32), 2.5 * (s as f64 + 1.0));
                    active[s] -= 1;
                }
            }
            let admit = |s: ServerId| s.0 != excl;
            let input = || SelectorInput {
                problem: ProblemId(problem),
                costs: &table,
                index: &index,
            };
            let mut full = Vec::new();
            Exhaustive.shortlist(input(), &admit, &mut full);
            let mut selectors: Vec<Box<dyn CandidateSelector>> = vec![
                Box::new(TopK::new(k)),
                Box::new(Adaptive::new(k.min(N_SERVERS), N_SERVERS)),
            ];
            for sel in &mut selectors {
                let cap = sel.width_cap();
                let mut out = Vec::new();
                sel.shortlist(input(), &admit, &mut out);
                prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "not id-sorted");
                prop_assert!(out.iter().all(|s| full.contains(s)), "not a subset");
                prop_assert_eq!(out.is_empty(), full.is_empty(), "dropped every candidate");
                prop_assert!(out.len() <= full.len());
                if let Some(cap) = cap {
                    prop_assert!(out.len() <= cap, "emitted {} > cap {}", out.len(), cap);
                }
            }
        }

        /// The adaptive `width_cap` quoted *before* a decision bounds that
        /// decision's emitted shortlist, through arbitrary regret and
        /// stretch feedback driving the base width up and down — the
        /// soundness property the lazy federation merge leans on when it
        /// skips shards without running their selectors.
        #[test]
        fn adaptive_live_cap_is_sound_under_feedback(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            band in (1usize..N_SERVERS + 2, 0usize..4)
                .prop_map(|(lo, extra)| (lo, lo + extra)),
            // (problem, feedback kind, picked rank, lateness)
            rounds in proptest::collection::vec(
                (0u32..N_PROBLEMS as u32, 0u32..3, 0usize..N_SERVERS, 0.0f64..2.0),
                1..60,
            ),
        ) {
            let table = build_table(&costs, &solvable);
            let index = StaticIndex::new(&table);
            let (k_min, k_max) = band;
            let mut sel = Adaptive::new(k_min, k_max);
            for (problem, feedback, rank, lateness) in rounds {
                let quoted = sel.width_cap().expect("adaptive always bounds");
                prop_assert!(quoted <= k_max && quoted >= k_min.min(k_max));
                let mut out = Vec::new();
                sel.shortlist(
                    SelectorInput { problem: ProblemId(problem), costs: &table, index: &index },
                    &|_| true,
                    &mut out,
                );
                prop_assert!(
                    out.len() <= quoted,
                    "emitted {} > cap {} quoted before the decision",
                    out.len(),
                    quoted,
                );
                match feedback {
                    0 if !out.is_empty() => {
                        sel.observe_selection(out[rank.min(out.len() - 1)]);
                    }
                    1 => sel.observe_outcome(100.0 * (1.0 + lateness), 100.0),
                    _ => {}
                }
            }
        }
    }
}

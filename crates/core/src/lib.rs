//! # cas-core — the Historical Trace Manager and the paper's heuristics
//!
//! This crate is the reproduction of the paper's contribution proper:
//!
//! * [`trace`] — [`ServerTrace`]: the per-server discrete simulation at the
//!   heart of the HTM. Each mapped task flows through its three phases
//!   (input transfer → compute → output transfer), each phase on a
//!   fair-shared resource; "all tasks mapped on a given server progress at
//!   the same speed until a new task arrives or a running task finishes"
//!   (§2.3).
//! * [`htm`] — [`Htm`]: the agent-side manager that owns one trace per
//!   server, answers *what-if* queries (simulated completion date of a
//!   candidate placement and the perturbation it inflicts on every
//!   already-mapped task), records commitments, and optionally
//!   re-synchronises with observed completions (the paper's stated future
//!   work, implemented here behind [`htm::SyncPolicy`]).
//! * [`prediction`] — the quantities a what-if query returns: `f(i, n_i+1)`,
//!   the perturbations `π_j = f'_j − f_j`, their sum, and the count of
//!   interfered tasks.
//! * [`gantt`] — Gantt-chart extraction from a trace and the ASCII rendering
//!   used to reproduce Fig. 1.
//! * [`heuristics`] — the scheduling policies: the NetSolve-style [`Mct`]
//!   baseline driven by (stale, corrected) load reports, and the HTM-based
//!   [`Hmct`], [`Mp`], [`Msf`] of Figs. 2–4, plus Weissman's MNI and simple
//!   baselines (round-robin, random, min-load, OLB) for ablations.
//! * [`selector`] — stage 1 of the two-stage decision pipeline: an
//!   object-safe [`CandidateSelector`] proposes a shortlist from the
//!   incrementally maintained static index before any HTM drain runs;
//!   backends [`Exhaustive`] (the spec), [`TopK`] and [`Adaptive`].
//!
//! The crate is pure model code: no events, no wall-clock, no I/O. The
//! middleware crate drives it.
//!
//! # Prediction-cache invariants
//!
//! The what-if engine ([`htm`]) is zero-clone and generation-cached; its
//! correctness rests on three invariants, enforced by the differential
//! proptests in `htm.rs`:
//!
//! 1. **Stamp soundness.** Every observable mutation of a [`ServerTrace`]
//!    (task added, task force-finished, cursor advanced past an event or a
//!    time span) bumps [`ServerTrace::generation`]. Equal stamps ⇒
//!    bit-identical trace state ⇒ the cached baseline schedule is valid.
//! 2. **Queries are pure.** [`Htm::predict`] and [`Htm::predict_all`] never
//!    mutate a trace (in particular they do *not* advance it to the query
//!    time — the trace stays lazy until the next commit/retract/sync), so
//!    a whole decision round, and every round until the next commit on that
//!    server, reuses one cached baseline.
//! 3. **Replay fidelity.** The speculative drain
//!    ([`trace::DrainScratch`]) performs the same floating-point
//!    operations in the same order as the clone-and-drain reference
//!    ([`Htm::predict_reference`]), so predictions agree bit for bit.
//!    When touching the trace event loop or the fair-share arithmetic,
//!    update both paths together.
//! 4. **Splice ≡ re-drain.** Under [`htm::RepairPolicy::Incremental`]
//!    (the default) a commit adopts the committed task's speculative
//!    after-schedule as the new baseline and a retract adopts the
//!    without-task drain, instead of invalidating and re-draining. By
//!    invariant 3 the adopted schedule is bit-identical to what a full
//!    re-drain of the mutated trace would produce; the proptests assert
//!    this directly after every mutation.
//! 5. **Fast ≡ Full.** Under [`htm::Stage2Mode::Fast`] (the default) the
//!    drain engine truncates speculative drains at the probe's completion
//!    (completion-only heuristics), resumes a shared baseline-prefix
//!    cursor saved at event boundaries, and scatters batches across the
//!    worker pool. All three are bit-identity-preserving by construction
//!    — truncation cuts only the tail after the probe's entry, the prefix
//!    snapshot is taken at the last processed event (the only resumable
//!    point in float arithmetic), and the parallel reduce is slot-indexed
//!    — and the differential proptests drive Fast and Full
//!    ([`htm::Stage2Mode::Full`], the pre-optimisation engine kept as the
//!    executable spec) through arbitrary interleavings.

pub mod gantt;
pub mod heuristics;
pub mod htm;
pub mod prediction;
pub mod selector;
pub mod trace;
pub mod whatif;

pub use gantt::{Gantt, GanttRow, GanttSegment};
pub use heuristics::{
    DecisionMemo, Heuristic, HeuristicKind, Hmct, Mct, MinLoad, Mni, Mp, Msf, Olb, RandomChoice,
    RoundRobin, SchedView,
};
pub use htm::{Htm, MemoStats, RepairPolicy, Stage2Mode, SyncPolicy};
pub use prediction::Prediction;
pub use selector::{Adaptive, CandidateSelector, Exhaustive, SelectorInput, SelectorKind, TopK};
pub use trace::{DrainScratch, PrefixCursor, ServerTrace};
pub use whatif::WhatIf;

//! The Historical Trace Manager.
//!
//! "We have designed a historical trace manager (HTM) that stores and keeps
//! track of information about each task. It simulates the execution of tasks
//! on resources and is able to predict the completion time of each task
//! assigned to a server." (§2.3)
//!
//! [`Htm`] owns one [`ServerTrace`] per registered server and exposes the
//! two operations every HTM-based heuristic in Figs. 2–4 performs:
//!
//! * **predict** — "Ask the HTM to compute …": simulate mapping the new task
//!   on a server and report completion date + perturbations, without
//!   committing anything;
//! * **commit** — "Tell the HTM that task is allocated to server …": make
//!   the mapping part of the historical trace.
//!
//! It also implements the paper's announced future work, synchronisation
//! between the HTM and the real platform ([`SyncPolicy`]): when the real
//! environment reports a completion, the model can be corrected so its error
//! does not compound.

use crate::prediction::Prediction;
use crate::trace::ServerTrace;
use cas_platform::{CostTable, ServerId, TaskId, TaskInstance};
use cas_sim::SimTime;
use std::collections::HashMap;

/// How the HTM reacts to completions observed on the real platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Pure open-loop simulation, as in the published system: the HTM's
    /// trace is never corrected by observations.
    #[default]
    None,
    /// Close the loop: when a completion is observed, force-finish the task
    /// in the trace at the observed time (the paper's "improve the
    /// synchronization between the HTM and the execution of the tasks"
    /// future work).
    ForceFinish,
}

/// The agent-side Historical Trace Manager.
#[derive(Debug, Clone)]
pub struct Htm {
    costs: CostTable,
    traces: Vec<ServerTrace>,
    assignments: HashMap<TaskId, ServerId>,
    /// Problem of each committed task, for the agent-side memory estimate
    /// (the paper's first piece of future work: "we need to incorporate
    /// memory requirements into the model").
    task_problems: HashMap<TaskId, cas_platform::ProblemId>,
    sync: SyncPolicy,
    predictions_made: u64,
}

impl Htm {
    /// Creates an HTM for the servers covered by `costs`.
    pub fn new(costs: CostTable, sync: SyncPolicy) -> Self {
        let n = costs.n_servers();
        Htm {
            costs,
            traces: (0..n).map(|_| ServerTrace::new()).collect(),
            assignments: HashMap::new(),
            task_problems: HashMap::new(),
            sync,
            predictions_made: 0,
        }
    }

    /// Enables Gantt recording on one server's trace (diagnostics, Fig. 1).
    pub fn enable_recording(&mut self, server: ServerId) {
        let tr = std::mem::take(&mut self.traces[server.index()]);
        self.traces[server.index()] = tr.with_recording();
    }

    /// The static cost table the HTM works from.
    pub fn costs(&self) -> &CostTable {
        &self.costs
    }

    /// The trace of one server.
    pub fn trace(&self, server: ServerId) -> &ServerTrace {
        &self.traces[server.index()]
    }

    /// Number of what-if queries answered (for the decision-cost bench).
    pub fn predictions_made(&self) -> u64 {
        self.predictions_made
    }

    /// Where a task was committed, if it was.
    pub fn assignment(&self, task: TaskId) -> Option<ServerId> {
        self.assignments.get(&task).copied()
    }

    /// Simulates mapping `task` on `server` at time `now`.
    ///
    /// Returns `None` when the server did not register the task's problem.
    /// Does not modify the historical trace (works on clones).
    pub fn predict(&mut self, now: SimTime, server: ServerId, task: &TaskInstance) -> Option<Prediction> {
        let costs = self.costs.costs(task.problem, server)?;
        self.predictions_made += 1;
        // Advance the real trace to `now` first: prediction work done now
        // (progressing every job to the present) is shared by later queries
        // instead of being redone inside every clone.
        let trace = &mut self.traces[server.index()];
        trace.advance(now);
        let before: Vec<(TaskId, SimTime)> = trace.drain_schedule();
        let mut with = trace.clone();
        with.add_task(now, task.id, costs);
        let after: HashMap<TaskId, SimTime> = with.drain_schedule().into_iter().collect();
        let completion = after[&task.id];
        let perturbations = before
            .iter()
            .map(|(j, f_before)| {
                let f_after = after[j];
                // Clamped at zero: the paper defines π on the CPU-sharing
                // intuition where insertions only delay. In the full
                // three-phase model an insertion can occasionally *help* a
                // bystander (by slowing a competitor's input transfer), and
                // float rounding can also produce tiny negatives; both are
                // treated as zero interference.
                (*j, (f_after - *f_before).as_secs().max(0.0))
            })
            .collect();
        Some(Prediction {
            completion,
            queried_at: now,
            perturbations,
        })
    }

    /// Records that `task` has been allocated to `server` (Figs. 2–4, last
    /// line). The mapping becomes part of the historical trace used by all
    /// later predictions.
    ///
    /// # Panics
    /// Panics if the server cannot solve the problem or the task was
    /// already committed.
    pub fn commit(&mut self, now: SimTime, server: ServerId, task: &TaskInstance) {
        let costs = self
            .costs
            .costs(task.problem, server)
            .expect("committing to a server that cannot solve the problem");
        assert!(
            !self.assignments.contains_key(&task.id),
            "task {} committed twice",
            task.id
        );
        self.traces[server.index()].add_task(now, task.id, costs);
        self.assignments.insert(task.id, server);
        self.task_problems.insert(task.id, task.problem);
    }

    /// Un-commits a task (the real server rejected it and the client will
    /// retry elsewhere). Returns `true` if the task was present.
    pub fn retract(&mut self, now: SimTime, task: TaskId) -> bool {
        let Some(server) = self.assignments.remove(&task) else {
            return false;
        };
        self.task_problems.remove(&task);
        self.traces[server.index()].force_finish(now, task)
    }

    /// Feeds an observed completion back into the model, according to the
    /// [`SyncPolicy`].
    pub fn observe_completion(&mut self, now: SimTime, task: TaskId) {
        if self.sync == SyncPolicy::None {
            return;
        }
        if let Some(server) = self.assignments.get(&task) {
            self.traces[server.index()].force_finish(now, task);
        }
    }

    /// Simulated completion dates of every unfinished task on `server`
    /// (the `f(i,j)` of §2.4) as of the trace cursor.
    pub fn completions_on(&self, server: ServerId) -> Vec<(TaskId, SimTime)> {
        self.traces[server.index()].drain_schedule()
    }

    /// Number of unfinished tasks the HTM believes `server` holds.
    pub fn active_on(&self, server: ServerId) -> usize {
        self.traces[server.index()].active_len()
    }

    /// The agent's estimate of `server`'s resident memory, MB: the summed
    /// memory needs of every task the HTM believes is still running there.
    ///
    /// This is the model-side half of the paper's future work ("incorporate
    /// memory requirements into the model"); the memory-aware heuristics in
    /// [`crate::heuristics`] use it to veto placements the real server
    /// would reject.
    pub fn resident_estimate(&self, server: ServerId) -> f64 {
        self.traces[server.index()]
            .active_tasks()
            .iter()
            .map(|t| {
                self.task_problems
                    .get(t)
                    .map(|p| self.costs.problem(*p).mem_mb)
                    .unwrap_or(0.0)
            })
            .sum()
    }

    /// The simulated completion date of every committed task: dates already
    /// recorded in the traces for tasks the simulation finished, plus
    /// drained dates for tasks still active. Under [`SyncPolicy::None`]
    /// these are the open-loop `f(i,j)` values that Table 1 compares to
    /// reality.
    pub fn simulated_completions(&self) -> HashMap<TaskId, SimTime> {
        let mut out = HashMap::new();
        for trace in &self.traces {
            for &(task, when) in trace.finished() {
                out.insert(task, when);
            }
            for (task, when) in trace.drain_schedule() {
                out.insert(task, when);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::{PhaseCosts, Problem};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Two servers; P0 is 100 s on S0 and 200 s on S1, no data, no memory.
    fn table() -> CostTable {
        let mut c = CostTable::new(2);
        c.add_problem(
            Problem::new("p", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 200.0, 0.0)),
            ],
        );
        c
    }

    fn task(id: u64, arrival: f64) -> TaskInstance {
        TaskInstance::new(TaskId(id), cas_platform::ProblemId(0), t(arrival))
    }

    #[test]
    fn predict_empty_server_is_unloaded_cost() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        let p = htm.predict(t(0.0), ServerId(0), &task(1, 0.0)).unwrap();
        assert_eq!(p.completion, t(100.0));
        assert!(p.perturbations.is_empty());
        let p2 = htm.predict(t(0.0), ServerId(1), &task(1, 0.0)).unwrap();
        assert_eq!(p2.completion, t(200.0));
    }

    #[test]
    fn predict_does_not_mutate() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.predict(t(0.0), ServerId(0), &task(1, 0.0));
        htm.predict(t(0.0), ServerId(0), &task(1, 0.0));
        assert_eq!(htm.active_on(ServerId(0)), 0);
        assert_eq!(htm.predictions_made(), 2);
    }

    #[test]
    fn commit_then_predict_sees_perturbation() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        let p = htm.predict(t(0.0), ServerId(0), &task(2, 0.0)).unwrap();
        // T1 alone would finish at 100; sharing with T2 (100) makes T1
        // finish at 200: perturbation 100.
        assert_eq!(p.perturbations, vec![(TaskId(1), 100.0)]);
        // T2 finishes at 200 too (tie, same size).
        assert_eq!(p.completion, t(200.0));
        assert_eq!(p.sum_perturbation(), 100.0);
    }

    #[test]
    fn perturbation_depends_on_remaining_work() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        // At t=80, T1 has 20 s left. Inserting T2 (100 s): T1 finishes at
        // 0.5 rate → +20 s of sharing → done at 120 (perturbation 20).
        let p = htm.predict(t(80.0), ServerId(0), &task(2, 80.0)).unwrap();
        assert_eq!(p.perturbations, vec![(TaskId(1), 20.0)]);
        // T2: shares 40 s (does 20), then alone 80 → done at 200.
        assert_eq!(p.completion, t(200.0));
    }

    #[test]
    fn unsolvable_returns_none() {
        let mut c = CostTable::new(2);
        c.add_problem(
            Problem::new("only-s1", 0.0, 0.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.0, 10.0, 0.0))],
        );
        let mut htm = Htm::new(c, SyncPolicy::None);
        assert!(htm.predict(t(0.0), ServerId(0), &task(1, 0.0)).is_none());
        assert!(htm.predict(t(0.0), ServerId(1), &task(1, 0.0)).is_some());
    }

    #[test]
    fn retract_frees_the_trace() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        assert_eq!(htm.assignment(TaskId(1)), Some(ServerId(0)));
        assert!(htm.retract(t(10.0), TaskId(1)));
        assert_eq!(htm.assignment(TaskId(1)), None);
        // Server looks free again: a new prediction shows no perturbation.
        let p = htm.predict(t(10.0), ServerId(0), &task(2, 10.0)).unwrap();
        assert!(p.perturbations.is_empty());
        assert_eq!(p.completion, t(110.0));
    }

    #[test]
    fn sync_force_finish_corrects_model() {
        let mut htm = Htm::new(table(), SyncPolicy::ForceFinish);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        // Reality says T1 finished early, at t=60 (model said 100).
        htm.observe_completion(t(60.0), TaskId(1));
        let p = htm.predict(t(60.0), ServerId(0), &task(2, 60.0)).unwrap();
        assert!(p.perturbations.is_empty(), "model still thinks T1 runs");
        assert_eq!(p.completion, t(160.0));
    }

    #[test]
    fn sync_none_ignores_observations() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.observe_completion(t(60.0), TaskId(1));
        let p = htm.predict(t(60.0), ServerId(0), &task(2, 60.0)).unwrap();
        assert_eq!(p.perturbations.len(), 1, "open loop keeps simulating T1");
    }

    #[test]
    #[should_panic(expected = "committed twice")]
    fn double_commit_panics() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.commit(t(0.0), ServerId(1), &task(1, 0.0));
    }

    #[test]
    fn completions_on_reports_schedule() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.commit(t(0.0), ServerId(0), &task(2, 0.0));
        let mut fins = htm.completions_on(ServerId(0));
        fins.sort_by_key(|(id, _)| *id);
        assert_eq!(fins.len(), 2);
        assert_eq!(fins[0].1, t(200.0));
        assert_eq!(fins[1].1, t(200.0));
    }
}

//! The Historical Trace Manager.
//!
//! "We have designed a historical trace manager (HTM) that stores and keeps
//! track of information about each task. It simulates the execution of tasks
//! on resources and is able to predict the completion time of each task
//! assigned to a server." (§2.3)
//!
//! [`Htm`] owns one [`ServerTrace`] per registered server and exposes the
//! two operations every HTM-based heuristic in Figs. 2–4 performs:
//!
//! * **predict** — "Ask the HTM to compute …": simulate mapping the new task
//!   on a server and report completion date + perturbations, without
//!   committing anything;
//! * **commit** — "Tell the HTM that task is allocated to server …": make
//!   the mapping part of the historical trace.
//!
//! It also implements the paper's announced future work, synchronisation
//! between the HTM and the real platform ([`SyncPolicy`]): when the real
//! environment reports a completion, the model can be corrected so its error
//! does not compound.
//!
//! # The prediction engine
//!
//! Answering a what-if query is the scheduler's decision cost: every
//! HTM-based heuristic issues one query per candidate server per incoming
//! task. The engine therefore avoids all per-query cloning:
//!
//! * **Generation-cached baseline.** The *before* schedule (`f(i,j)` of all
//!   tasks already on a server, with no insertion) only changes when the
//!   server's trace mutates. Each trace carries a [`Generation`] stamp
//!   ([`ServerTrace::generation`]); the HTM caches the drained baseline per
//!   server keyed by that stamp, so the baseline is computed once per
//!   commit/retract/sync, not once per query. Queries never advance the
//!   real trace (the trace stays lazy until the next mutation), which is
//!   what keeps the stamp stable across an entire decision round — and
//!   across rounds for every server the agent did not commit to.
//! * **Zero-clone speculative drain.** The *after* schedule (with the
//!   candidate task inserted) runs through a per-server
//!   [`DrainScratch`](crate::trace::DrainScratch): flat reusable buffers
//!   replaying the exact event arithmetic of the clone-based path, so
//!   results are bit-for-bit identical without per-query heap allocation.
//! * **Batched fan-out.** [`Htm::predict_all`] answers one query per
//!   candidate in a single call and, for large candidate sets with heavily
//!   loaded traces, fans the per-server work across scoped threads (each
//!   server's scratch state is independent, so parallelism cannot change
//!   results).
//!
//! * **Incremental baseline repair.** A commit used to invalidate the
//!   server's baseline and pay a full re-drain on the next query. But the
//!   speculative *after*-schedule computed for `(task, now)` — which the
//!   engine has almost always just computed, since every commit follows a
//!   prediction for the winning server — **is** the post-commit baseline:
//!   the commit mutates the trace into exactly the state that drain
//!   describes. Under [`RepairPolicy::Incremental`] (the default), commit
//!   therefore splices: it adopts the memoised after-schedule (recomputing
//!   it on the spot only if no matching query preceded the commit) and
//!   the trace mutation costs O(advance) instead of O(full re-drain).
//!   Retract and observe repair the same way through
//!   [`ServerTrace::drain_schedule_without`]. The differential proptests
//!   below additionally assert, after every mutation, that the repaired
//!   baseline is bit-for-bit identical to a from-scratch re-drain.
//!
//! # The stage-2 drain engine ([`Stage2Mode`])
//!
//! Profiling showed the speculative drains above — phase `stage2_predict`
//! of the decision pipeline — dominating campaign wall time. Under
//! [`Stage2Mode::Fast`] (the default) two further optimisations apply,
//! each bit-identical to the full drain by construction:
//!
//! * **Truncated drains.** When the configured heuristic only reads the
//!   probe's completion (HMCT and the non-perturbation policies — see
//!   [`Htm::set_completion_only`]), the drain stops as soon as the probe's
//!   last phase completes: the output is a bit-exact *prefix* of the full
//!   after-schedule, and rejected candidates never pay for the tail. The
//!   memo records whether its entry is truncated; a commit (which splices
//!   the after-schedule in as the new baseline and therefore needs all of
//!   it) re-runs the drain to completion — cheaply, via the prefix cursor.
//! * **Prefix sharing.** Every probe of a decision round replays the same
//!   baseline events on a server before its insertion point. A per-server
//!   [`PrefixCursor`](crate::trace::PrefixCursor) caches the replay state
//!   at the last processed event of the shared advance-to-`now` prefix,
//!   keyed by trace generation; subsequent probes (and the commit's
//!   full re-drain) resume from the snapshot instead of replaying the
//!   trace's whole event history.
//! * **Parallel scatter.** [`Htm::predict_all`] batches fan out across
//!   [`cas_sim::pool`] whenever more than one worker is available (the
//!   conservative load floor of the full mode is dropped), mirroring the
//!   stage-1 walk's parallel arm; the slot-indexed reduce keeps results
//!   deterministic.
//!
//! [`Stage2Mode::Full`] keeps the previous engine untouched — fresh
//! scratch load and complete drain per memo miss, load-gated threading —
//! as the executable specification: differential proptests drive both
//! modes through arbitrary interleavings and assert bit-for-bit equality.
//!
//! [`Htm::predict_reference`] keeps the original clone-and-drain
//! implementation; the differential proptests below drive both paths
//! through arbitrary commit/predict/retract/observe interleavings and
//! assert bit-for-bit agreement, and the `decision_cost` bench uses it as
//! the baseline the fast path is gated against.
//!
//! Per-task metadata (assignment + problem of every committed task) lives
//! in a [`cas_platform::Arena`]: contiguous records, recycled slots, one
//! id→key map instead of two id-keyed hash maps.

use crate::prediction::Prediction;
use crate::trace::{DrainScratch, PrefixCursor, ServerTrace};
use cas_platform::{Arena, ArenaKey, CostTable, PhaseCosts, ServerId, TaskId, TaskInstance};
use cas_sim::{Generation, SimTime};
use std::collections::HashMap;

/// Fan candidate evaluation across the shared pool only when the candidate
/// set and the simulated load are both large enough to amortise job
/// queueing (a loaded drain is tens of µs).
const PARALLEL_MIN_CANDIDATES: usize = 8;

/// Minimum total active tasks across candidate traces before threading.
const PARALLEL_MIN_ACTIVE: usize = 1024;

/// After-schedules at most this long answer completion/perturbation
/// lookups by linear scan instead of rebuilding the per-query hash map —
/// cheaper for the handful of active tasks a campaign-realistic trace
/// holds, and observably identical.
const LINEAR_LOOKUP_MAX: usize = 12;

/// How the HTM reacts to completions observed on the real platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Pure open-loop simulation, as in the published system: the HTM's
    /// trace is never corrected by observations.
    #[default]
    None,
    /// Close the loop: when a completion is observed, force-finish the task
    /// in the trace at the observed time (the paper's "improve the
    /// synchronization between the HTM and the execution of the tasks"
    /// future work).
    ForceFinish,
}

/// How the HTM keeps each server's cached baseline consistent across
/// trace mutations (commit / retract / observe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// Splice the mutation into the cached schedule: a commit adopts the
    /// speculative after-schedule of the committed task (memoised from
    /// the preceding prediction in the common case), a retract adopts the
    /// without-task drain. The baseline never goes stale, so mutations
    /// cost O(advance), not O(full re-drain).
    #[default]
    Incremental,
    /// PR-1 behaviour: invalidate on mutation, full re-drain on the next
    /// query. Kept as the executable specification of `Incremental` (the
    /// differential proptests compare the two) and as the baseline of the
    /// `decision_cost` commit-path bench.
    FullRedrain,
}

/// Which stage-2 drain engine answers what-if queries (see the module
/// docs). Selected per run via the `--stage2` CLI flag; both modes produce
/// bit-identical predictions and therefore bit-identical decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stage2Mode {
    /// Truncated, prefix-sharing drains with the multi-core scatter —
    /// the production engine.
    #[default]
    Fast,
    /// The pre-optimisation engine: full drain per memo miss from a fresh
    /// scratch load, threading only above the conservative load floor.
    /// Kept as the executable specification `Fast` is differentially
    /// tested against, and as the same-run baseline of the stage-2 bench
    /// gate.
    Full,
}

impl Stage2Mode {
    /// Canonical flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Stage2Mode::Fast => "fast",
            Stage2Mode::Full => "full",
        }
    }

    /// Parses a `--stage2` flag value (case-insensitive).
    pub fn parse(s: &str) -> Option<Stage2Mode> {
        match s.to_ascii_lowercase().as_str() {
            "fast" => Some(Stage2Mode::Fast),
            "full" => Some(Stage2Mode::Full),
            _ => None,
        }
    }
}

/// What a memoised speculative drain depends on: the probe's phase costs
/// (bit patterns — the drain arithmetic consumes exactly these floats),
/// the query instant, and the trace state it ran against. Everything
/// *except* the probe's id, which is a pure label.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AfterKey {
    costs_bits: (u64, u64, u64),
    now: SimTime,
    generation: Generation,
}

impl AfterKey {
    fn new(costs: PhaseCosts, now: SimTime, generation: Generation) -> Self {
        AfterKey {
            costs_bits: (
                costs.input.to_bits(),
                costs.compute.to_bits(),
                costs.output.to_bits(),
            ),
            now,
            generation,
        }
    }
}

/// Per-server prediction working state: the generation-keyed baseline
/// cache plus the reusable buffers of the zero-clone drain.
#[derive(Debug, Clone, Default)]
struct PredictState {
    /// Flat-buffer replay state for speculative drains.
    scratch: DrainScratch,
    /// Cached baseline schedule (task, completion), in completion order —
    /// exactly what `trace.drain_schedule()` would return.
    baseline: Vec<(TaskId, SimTime)>,
    /// Trace generation the baseline was computed at. A fresh trace is at
    /// the default generation with an empty schedule, so the default state
    /// is consistent without a sentinel.
    baseline_gen: Generation,
    /// Reusable output buffer for the speculative drain.
    after: Vec<(TaskId, SimTime)>,
    /// The query `after` currently answers: `(phase-cost bit patterns,
    /// now, trace generation at query time)`. Keyed on the *costs*, not
    /// the task id: the drain arithmetic never looks at the probe's id
    /// (the probe always enters at the tail of the input lane and ties
    /// break by lane position), so two same-instant probes of the same
    /// problem share one drain and differ only in the label of the
    /// probe's own entry — see [`PredictState::refresh_after`]. Also lets
    /// a commit that follows its own prediction — the engine's invariable
    /// order — adopt `after` as the new baseline without recomputing.
    /// The [`TaskId`] is the probe id currently labelling the memoised
    /// schedule.
    after_query: Option<(AfterKey, TaskId)>,
    /// Whether `after` holds the *complete* after-schedule (`true`) or a
    /// truncated prefix ending at the probe's completion (`false`). A
    /// truncated memo answers completion-only queries; a consumer that
    /// needs the whole schedule (commit's splice, perturbation fills)
    /// re-drains. Only ever `false` under [`Stage2Mode::Fast`] with
    /// completion-only depth.
    after_complete: bool,
    /// Fast-mode baseline-prefix snapshot shared by all probes against one
    /// `(generation, now)`; invalidated implicitly by generation bumps.
    prefix: PrefixCursor,
    /// Speculative drains actually run (memo misses).
    drains: u64,
    /// Queries answered from the memoised `after` (exact repeats plus
    /// relabelled same-problem hits).
    memo_hits: u64,
    /// The subset of `memo_hits` where only the probe id differed — the
    /// hits the problem-keyed memo added over the old exact-task key.
    cross_task_hits: u64,
    /// Drains that stopped early at the probe's completion.
    truncated: u64,
    /// Drains that resumed the shared baseline prefix instead of
    /// replaying the trace's event history.
    prefix_hits: u64,
    /// Reusable task → completion lookup over `after`.
    after_map: HashMap<TaskId, SimTime>,
}

impl PredictState {
    /// Recomputes the baseline if the trace mutated since the cached copy.
    fn refresh_baseline(&mut self, trace: &ServerTrace) {
        if self.baseline_gen != trace.generation() {
            trace.drain_schedule_into(&mut self.scratch, None, &mut self.baseline);
            self.baseline_gen = trace.generation();
        }
    }

    /// Ensures `self.after` holds the drained schedule with `(task,
    /// costs)` inserted at `now`, reusing the memoised answer when the
    /// last speculative drain asked the *same question* of an unchanged
    /// trace. "Same question" is keyed on the probe's phase costs, not
    /// its id: the drain never branches on the id (the probe enters at
    /// the tail of the input lane; completion ties break by lane
    /// position), so a same-instant probe of the same problem reuses the
    /// drain wholesale and only the probe's own entry is relabelled.
    ///
    /// `truncate` grants permission to stop the drain at the probe's
    /// completion (only taken under [`Stage2Mode::Fast`]); a memoised
    /// *truncated* schedule never satisfies a `!truncate` caller — the
    /// drain re-runs to completion, resuming the shared prefix.
    fn refresh_after(
        &mut self,
        trace: &ServerTrace,
        now: SimTime,
        task: TaskId,
        costs: PhaseCosts,
        mode: Stage2Mode,
        truncate: bool,
    ) {
        let key = AfterKey::new(costs, now, trace.generation());
        let usable = match &self.after_query {
            Some((memo_key, _)) => *memo_key == key && (self.after_complete || truncate),
            None => false,
        };
        if usable {
            let (_, memo_task) = self.after_query.as_mut().expect("usable implies memoised");
            // Mirrors the drain path's duplicate-mapping panic: a hit
            // for a task the trace already holds would silently skip
            // that check.
            debug_assert!(
                *memo_task == task || !trace.is_active(task),
                "task {task} already mapped on this trace"
            );
            if *memo_task != task {
                let old = *memo_task;
                for entry in &mut self.after {
                    if entry.0 == old {
                        entry.0 = task;
                    }
                }
                *memo_task = task;
                self.cross_task_hits += 1;
            }
            self.memo_hits += 1;
        } else {
            match mode {
                Stage2Mode::Full => {
                    trace.drain_schedule_into(
                        &mut self.scratch,
                        Some((now, task, costs)),
                        &mut self.after,
                    );
                    self.after_complete = true;
                }
                Stage2Mode::Fast => {
                    let (prefix_hit, truncated) = trace.drain_schedule_into_fast(
                        &mut self.scratch,
                        &mut self.prefix,
                        now,
                        task,
                        costs,
                        truncate,
                        &mut self.after,
                    );
                    self.prefix_hits += prefix_hit as u64;
                    self.truncated += truncated as u64;
                    self.after_complete = !truncated;
                }
            }
            self.after_query = Some((key, task));
            self.drains += 1;
        }
    }

    /// Promotes `after` to `baseline` (the splice step of incremental
    /// repair); `after` is left holding the superseded baseline and its
    /// memo stamp is cleared.
    fn adopt_after_as_baseline(&mut self) {
        std::mem::swap(&mut self.baseline, &mut self.after);
        self.after_query = None;
    }

    /// Answers one what-if query against `trace` without touching it.
    ///
    /// Bit-for-bit identical to the clone-based reference path (see
    /// [`Htm::predict_reference`]).
    fn predict(
        &mut self,
        trace: &ServerTrace,
        now: SimTime,
        task: TaskId,
        costs: PhaseCosts,
        mode: Stage2Mode,
        completion_only: bool,
    ) -> Prediction {
        let mut out = Prediction::empty();
        self.predict_into(trace, now, task, costs, mode, completion_only, &mut out);
        out
    }

    /// [`PredictState::predict`], written into caller-owned storage:
    /// `out.perturbations` is cleared and refilled in place, so a reused
    /// `out` makes the query allocation-free once its buffer has grown
    /// to the server's active-task count. Same lookups, same floats,
    /// same order as the returning variant — which is now defined
    /// through this one.
    #[allow(clippy::too_many_arguments)]
    fn predict_into(
        &mut self,
        trace: &ServerTrace,
        now: SimTime,
        task: TaskId,
        costs: PhaseCosts,
        mode: Stage2Mode,
        completion_only: bool,
        out: &mut Prediction,
    ) {
        // Completion-only depth (fast mode): nothing reads the
        // perturbations, so skip the baseline refresh and the
        // perturbation fill entirely and let the drain stop at the
        // probe's completion. The completion value is bit-identical —
        // truncation only cuts the schedule *after* the probe's entry.
        let truncate = completion_only && mode == Stage2Mode::Fast;
        if truncate {
            self.refresh_after(trace, now, task, costs, mode, true);
            // Scan from the back: a truncated drain stops at the probe's
            // completion, so the probe is the last entry (or within its
            // same-instant tie batch). Task ids are unique in `after`, so
            // the direction cannot change the value found.
            out.completion = self
                .after
                .iter()
                .rev()
                .find(|&&(j, _)| j == task)
                .expect("probe is in its own after-schedule")
                .1;
            out.queried_at = now;
            out.perturbations.clear();
            return;
        }
        self.refresh_baseline(trace);
        self.refresh_after(trace, now, task, costs, mode, false);
        // Small schedules answer by linear scan: rebuilding the task →
        // completion hash map costs more than scanning a few contiguous
        // pairs, and a campaign-realistic trace holds a handful of active
        // tasks. Same lookups, same floats, same order — bit-identical to
        // the map path (the differential proptests cover both regimes).
        let linear = self.after.len() <= LINEAR_LOOKUP_MAX;
        let completion = if linear {
            self.after
                .iter()
                .find(|&&(j, _)| j == task)
                .expect("probe is in its own after-schedule")
                .1
        } else {
            self.after_map.clear();
            self.after_map.extend(self.after.iter().copied());
            self.after_map[&task]
        };
        let lookup = |j: TaskId| -> Option<SimTime> {
            if linear {
                self.after.iter().find(|&&(t, _)| t == j).map(|&(_, f)| f)
            } else {
                self.after_map.get(&j).copied()
            }
        };
        out.completion = completion;
        out.queried_at = now;
        out.perturbations.clear();
        out.perturbations
            .extend(self.baseline.iter().filter_map(|&(j, f_before)| {
                // Baseline entries absent from the after-schedule completed
                // before `now` (a task inserted at `now` cannot influence
                // them): they are no longer active at decision time and
                // carry no perturbation.
                //
                // Clamped at zero: the paper defines π on the
                // CPU-sharing intuition where insertions only delay. In
                // the full three-phase model an insertion can
                // occasionally *help* a bystander (by slowing a
                // competitor's input transfer), and float rounding can
                // also produce tiny negatives; both are treated as zero
                // interference.
                lookup(j).map(|f_after| (j, (f_after - f_before).as_secs().max(0.0)))
            }));
    }
}

/// Aggregate counters of the speculative-drain memo, summed over servers
/// (see [`Htm::memo_stats`]): how many what-if questions actually ran a
/// drain versus how many were answered from the per-server memo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Speculative drains run (memo misses).
    pub drains: u64,
    /// Queries answered from a memoised drain (exact repeats plus
    /// relabelled same-problem probes).
    pub hits: u64,
    /// The subset of `hits` where only the probe id differed — what the
    /// problem-keyed memo buys over an exact `(task, now, generation)`
    /// key.
    pub cross_task_hits: u64,
    /// The subset of `drains` that stopped early at the probe's
    /// completion (fast mode, completion-only depth).
    pub truncated: u64,
    /// The subset of `drains` that resumed the shared baseline-prefix
    /// cursor instead of replaying the trace's event history (fast mode).
    pub prefix_hits: u64,
}

impl MemoStats {
    /// Hits over all memo lookups, in [0, 1]; 0 when nothing was queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.drains + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Early-exited drains over all drains run, in [0, 1].
    pub fn truncation_rate(&self) -> f64 {
        if self.drains == 0 {
            0.0
        } else {
            self.truncated as f64 / self.drains as f64
        }
    }

    /// Field-wise sum — aggregates counters across HTMs (one per shard
    /// in a federation).
    pub fn merge(self, other: MemoStats) -> MemoStats {
        MemoStats {
            drains: self.drains + other.drains,
            hits: self.hits + other.hits,
            cross_task_hits: self.cross_task_hits + other.cross_task_hits,
            truncated: self.truncated + other.truncated,
            prefix_hits: self.prefix_hits + other.prefix_hits,
        }
    }

    /// Prefix-cursor resumes over all drains run, in [0, 1].
    pub fn prefix_reuse_rate(&self) -> f64 {
        if self.drains == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / self.drains as f64
        }
    }
}

/// Arena record of one committed task: where it went and what problem it
/// instantiates (the agent-side memory estimate needs the problem; see
/// [`Htm::resident_estimate`]).
#[derive(Debug, Clone, Copy)]
struct CommittedTask {
    server: ServerId,
    problem: cas_platform::ProblemId,
}

/// The agent-side Historical Trace Manager.
#[derive(Debug, Clone)]
pub struct Htm {
    costs: CostTable,
    traces: Vec<ServerTrace>,
    /// One prediction cache/scratch per server, index-aligned with
    /// `traces`.
    predict_states: Vec<PredictState>,
    /// Per-committed-task metadata, arena-backed (assignment + problem in
    /// one contiguous record; the paper's first piece of future work —
    /// "we need to incorporate memory requirements into the model" —
    /// reads the problem back for the memory estimate).
    committed: Arena<CommittedTask>,
    /// External id → arena key. Task ids are globally unique, so this is
    /// the single id-keyed map left on the commit path.
    by_task: HashMap<TaskId, ArenaKey<CommittedTask>>,
    sync: SyncPolicy,
    repair: RepairPolicy,
    stage2: Stage2Mode,
    /// Fast-mode depth: when `true`, the configured heuristic only ever
    /// reads the probe's completion, so queries skip the perturbation
    /// fill and drains may truncate.
    completion_only: bool,
    /// Forces the `predict_all` pool fan-out on (`Some(true)`) or off
    /// (`Some(false)`) regardless of worker count — the test hook behind
    /// the forced-parallel equality step, mirroring the stage-1 arm.
    parallel_override: Option<bool>,
    predictions_made: u64,
}

impl Htm {
    /// Creates an HTM for the servers covered by `costs`.
    pub fn new(costs: CostTable, sync: SyncPolicy) -> Self {
        let n = costs.n_servers();
        Htm {
            costs,
            traces: (0..n).map(|_| ServerTrace::new()).collect(),
            predict_states: (0..n).map(|_| PredictState::default()).collect(),
            committed: Arena::new(),
            by_task: HashMap::new(),
            sync,
            repair: RepairPolicy::default(),
            stage2: Stage2Mode::default(),
            completion_only: false,
            parallel_override: None,
            predictions_made: 0,
        }
    }

    /// Selects how cached baselines are repaired across mutations (default
    /// [`RepairPolicy::Incremental`]; the full-re-drain fallback exists
    /// for differential testing and the commit-path bench).
    pub fn set_repair_policy(&mut self, repair: RepairPolicy) {
        self.repair = repair;
    }

    /// The active baseline-repair policy.
    pub fn repair_policy(&self) -> RepairPolicy {
        self.repair
    }

    /// Selects the stage-2 drain engine (default [`Stage2Mode::Fast`];
    /// the full engine exists for differential testing and as the
    /// same-run baseline of the stage-2 bench gate).
    pub fn set_stage2_mode(&mut self, mode: Stage2Mode) {
        self.stage2 = mode;
    }

    /// The active stage-2 drain engine.
    pub fn stage2_mode(&self) -> Stage2Mode {
        self.stage2
    }

    /// Declares whether the run's heuristic reads only the probe's
    /// completion from predictions (no perturbations). Under
    /// [`Stage2Mode::Fast`] this lets speculative drains stop at the
    /// probe's completion; predictions then carry an empty perturbation
    /// list. Has no effect under [`Stage2Mode::Full`].
    pub fn set_completion_only(&mut self, completion_only: bool) {
        self.completion_only = completion_only;
    }

    /// Whether completion-only query depth is active.
    pub fn completion_only(&self) -> bool {
        self.completion_only
    }

    /// Forces the batched stage-2 fan-out on or off (`None` restores the
    /// automatic worker-count gate) — the test hook the forced-parallel
    /// equality tests drive, mirroring the stage-1 arm's override.
    pub fn set_parallel_stage2(&mut self, force: Option<bool>) {
        self.parallel_override = force;
    }

    /// Enables Gantt recording on one server's trace (diagnostics, Fig. 1).
    pub fn enable_recording(&mut self, server: ServerId) {
        let tr = std::mem::take(&mut self.traces[server.index()]);
        self.traces[server.index()] = tr.with_recording();
    }

    /// Extends the HTM with one brand-new server, online: the cost table
    /// grows by the given per-problem column and the server starts with
    /// an empty trace and a fresh prediction cache — exactly the state a
    /// fresh `Htm::new` over the extended table would give it, so a
    /// post-growth HTM is bit-identical to one built grown from the
    /// start (the dynamic half of a server provisioning event, next to
    /// `CostTable::push_server` / `StaticIndex::push_server`).
    ///
    /// # Panics
    /// Panics unless exactly one entry per registered problem is given.
    pub fn push_server(&mut self, per_problem: Vec<Option<cas_platform::PhaseCosts>>) -> ServerId {
        let id = self.costs.push_server(per_problem);
        self.traces.push(ServerTrace::new());
        self.predict_states.push(PredictState::default());
        id
    }

    /// The static cost table the HTM works from.
    pub fn costs(&self) -> &CostTable {
        &self.costs
    }

    /// The trace of one server.
    pub fn trace(&self, server: ServerId) -> &ServerTrace {
        &self.traces[server.index()]
    }

    /// Number of what-if queries answered (for the decision-cost bench).
    pub fn predictions_made(&self) -> u64 {
        self.predictions_made
    }

    /// Speculative-drain memo counters, summed over all servers (for the
    /// decision-cost bench's hit-rate section).
    pub fn memo_stats(&self) -> MemoStats {
        self.predict_states
            .iter()
            .fold(MemoStats::default(), |acc, s| MemoStats {
                drains: acc.drains + s.drains,
                hits: acc.hits + s.memo_hits,
                cross_task_hits: acc.cross_task_hits + s.cross_task_hits,
                truncated: acc.truncated + s.truncated,
                prefix_hits: acc.prefix_hits + s.prefix_hits,
            })
    }

    /// Where a task was committed, if it was.
    pub fn assignment(&self, task: TaskId) -> Option<ServerId> {
        self.by_task
            .get(&task)
            .and_then(|&key| self.committed.get(key))
            .map(|rec| rec.server)
    }

    /// The cached baseline schedule of `server`, if it is fresh for the
    /// trace's current generation. Under [`RepairPolicy::Incremental`]
    /// this is always `Some` (repair keeps the cache consistent through
    /// every mutation); the splice ≡ re-drain differential proptests
    /// compare it bitwise against [`ServerTrace::drain_schedule`].
    pub fn cached_baseline(&self, server: ServerId) -> Option<&[(TaskId, SimTime)]> {
        let state = &self.predict_states[server.index()];
        (state.baseline_gen == self.traces[server.index()].generation())
            .then_some(state.baseline.as_slice())
    }

    /// Simulates mapping `task` on `server` at time `now`.
    ///
    /// Returns `None` when the server did not register the task's problem.
    /// Does not modify the historical trace: the query runs on the
    /// server's reusable scratch buffers against its generation-cached
    /// baseline (see the module docs), so no per-query cloning or trace
    /// advancement happens.
    pub fn predict(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction> {
        let costs = self.costs.costs(task.problem, server)?;
        self.predictions_made += 1;
        let trace = &self.traces[server.index()];
        let state = &mut self.predict_states[server.index()];
        Some(state.predict(
            trace,
            now,
            task.id,
            costs,
            self.stage2,
            self.completion_only,
        ))
    }

    /// [`Self::predict`] into caller-owned storage: returns `false` (and
    /// leaves `out` untouched) when the server did not register the
    /// task's problem, `true` with `out` overwritten in place otherwise.
    /// The steady-state decision loop queries through here so a grown
    /// perturbation buffer is reused instead of reallocated per query.
    /// Same accounting as the returning variant: unsolvable queries do
    /// not count toward `predictions_made`.
    pub fn predict_into(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
        out: &mut Prediction,
    ) -> bool {
        let Some(costs) = self.costs.costs(task.problem, server) else {
            return false;
        };
        self.predictions_made += 1;
        let trace = &self.traces[server.index()];
        let state = &mut self.predict_states[server.index()];
        state.predict_into(
            trace,
            now,
            task.id,
            costs,
            self.stage2,
            self.completion_only,
            out,
        );
        true
    }

    /// The original clone-and-drain what-if path, kept as the executable
    /// specification of [`Self::predict`]: the differential proptests
    /// assert both produce bit-identical predictions over arbitrary
    /// interleavings, and the `decision_cost` bench uses this as the
    /// baseline the cached engine is gated against.
    pub fn predict_reference(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction> {
        let costs = self.costs.costs(task.problem, server)?;
        self.predictions_made += 1;
        let trace = &self.traces[server.index()];
        let before: Vec<(TaskId, SimTime)> = trace.drain_schedule();
        let mut with = trace.clone();
        with.add_task(now, task.id, costs);
        let after: HashMap<TaskId, SimTime> = with.drain_schedule().into_iter().collect();
        let completion = after[&task.id];
        let perturbations = before
            .iter()
            .filter_map(|(j, f_before)| {
                // Tasks that finish before `now` drop out of the schedule
                // once the clone advances; they carry no perturbation.
                after
                    .get(j)
                    .map(|f_after| (*j, (*f_after - *f_before).as_secs().max(0.0)))
            })
            .collect();
        Some(Prediction {
            completion,
            queried_at: now,
            perturbations,
        })
    }

    /// Answers one what-if query per candidate in a single batch.
    ///
    /// `results[k]` corresponds to `candidates[k]`; `None` means that
    /// server cannot solve the task's problem. Results are identical to
    /// calling [`Self::predict`] per candidate. For large candidate sets
    /// over heavily loaded traces the per-server work fans out across the
    /// shared work-stealing pool ([`cas_sim::pool`]); each server's cache
    /// and scratch are independent and every result lands in its own
    /// candidate slot, so the fan-out cannot change any result.
    pub fn predict_all(
        &mut self,
        now: SimTime,
        task: &TaskInstance,
        candidates: &[ServerId],
    ) -> Vec<Option<Prediction>> {
        let (mode, completion_only) = (self.stage2, self.completion_only);
        // Fast mode scatters whenever more than one worker exists (the
        // per-drain work is already minimised, so the fan-out pays from
        // small batches); full mode keeps the conservative load floor of
        // the pre-optimisation engine. Tests force either arm through the
        // override, mirroring the stage-1 walk. Gated on the raw
        // candidate list (selectors produce distinct, solvable-heavy
        // lists) so the serial path below never pays for the batch
        // machinery.
        let parallel = candidates.len() > 1
            && match mode {
                Stage2Mode::Fast => self.parallel_override.unwrap_or_else(|| {
                    candidates.len() >= PARALLEL_MIN_CANDIDATES
                        && cas_sim::pool::global().workers() > 1
                }),
                Stage2Mode::Full => {
                    candidates.len() >= PARALLEL_MIN_CANDIDATES && {
                        let total_active: usize = candidates
                            .iter()
                            .map(|&s| self.traces[s.index()].active_len())
                            .sum();
                        total_active >= PARALLEL_MIN_ACTIVE
                    }
                }
            };
        if !parallel {
            // Serial path: one routed query per candidate, straight
            // through the per-server memo and scratch — no slot map, no
            // state scan, no intermediate buffers. Per-server queries are
            // independent, so candidate order is as good as index order,
            // and a duplicate candidate re-queries into the memo it just
            // filled (bit-identical answer).
            return candidates
                .iter()
                .map(|&s| {
                    let costs = self.costs.costs(task.problem, s)?;
                    self.predictions_made += 1;
                    let trace = &self.traces[s.index()];
                    let state = &mut self.predict_states[s.index()];
                    Some(state.predict(trace, now, task.id, costs, mode, completion_only))
                })
                .collect();
        }
        let mut results: Vec<Option<Prediction>> = Vec::new();
        results.resize_with(candidates.len(), || None);
        let costs: Vec<Option<PhaseCosts>> = candidates
            .iter()
            .map(|&s| self.costs.costs(task.problem, s))
            .collect();
        // Map server index → result slot, so per-server `&mut` state can be
        // collected disjointly (duplicates keep the last slot and are
        // back-filled below).
        let mut slot_of = vec![usize::MAX; self.traces.len()];
        for (slot, &s) in candidates.iter().enumerate() {
            if costs[slot].is_some() {
                slot_of[s.index()] = slot;
            }
        }
        let traces = &self.traces;
        let mut selected: Vec<(usize, &ServerTrace, &mut PredictState)> = Vec::new();
        for (idx, state) in self.predict_states.iter_mut().enumerate() {
            let slot = slot_of[idx];
            if slot != usize::MAX {
                selected.push((slot, &traces[idx], state));
            }
        }
        self.predictions_made += selected.len() as u64;
        {
            let pool = cas_sim::pool::global();
            let workers = (pool.workers() + 1).min(selected.len()).min(8);
            let chunk_len = selected.len().div_ceil(workers);
            let task_id = task.id;
            let costs = &costs;
            let mut computed: Vec<Vec<(usize, Prediction)>> = Vec::new();
            computed.resize_with(selected.len().div_ceil(chunk_len), Vec::new);
            pool.scope(|scope| {
                for (chunk, out) in selected.chunks_mut(chunk_len).zip(computed.iter_mut()) {
                    scope.spawn(move || {
                        for (slot, trace, state) in chunk.iter_mut() {
                            let c = costs[*slot].expect("selected implies solvable");
                            out.push((
                                *slot,
                                state.predict(trace, now, task_id, c, mode, completion_only),
                            ));
                        }
                    });
                }
            });
            // Deterministic reduction: every prediction goes to the slot of
            // its candidate, regardless of which worker computed it.
            for batch in computed {
                for (slot, p) in batch {
                    results[slot] = Some(p);
                }
            }
        }
        // Back-fill duplicate candidates (only the last occurrence was
        // evaluated; queries are pure, so the result is shared).
        for slot in 0..candidates.len() {
            if results[slot].is_none() && costs[slot].is_some() {
                let canonical = slot_of[candidates[slot].index()];
                results[slot] = results[canonical].clone();
            }
        }
        results
    }

    /// Records that `task` has been allocated to `server` (Figs. 2–4, last
    /// line). The mapping becomes part of the historical trace used by all
    /// later predictions.
    ///
    /// Under [`RepairPolicy::Incremental`] the server's cached baseline is
    /// spliced rather than invalidated: the speculative after-schedule for
    /// `(task, now)` — memoised from the prediction that invariably
    /// precedes a commit, or recomputed here if none did — *is* the
    /// post-commit baseline, so the next query pays no re-drain.
    ///
    /// # Panics
    /// Panics if the server cannot solve the problem or the task was
    /// already committed.
    pub fn commit(&mut self, now: SimTime, server: ServerId, task: &TaskInstance) {
        let costs = self
            .costs
            .costs(task.problem, server)
            .expect("committing to a server that cannot solve the problem");
        assert!(
            !self.by_task.contains_key(&task.id),
            "task {} committed twice",
            task.id
        );
        if self.repair == RepairPolicy::Incremental {
            let trace = &self.traces[server.index()];
            let state = &mut self.predict_states[server.index()];
            // The splice needs the *complete* after-schedule: a truncated
            // memo entry (completion-only fast mode) is re-drained to the
            // end here, resuming the shared prefix the prediction saved.
            state.refresh_after(trace, now, task.id, costs, self.stage2, false);
            state.adopt_after_as_baseline();
            let trace = &mut self.traces[server.index()];
            trace.add_task(now, task.id, costs);
            state.baseline_gen = trace.generation();
        } else {
            self.traces[server.index()].add_task(now, task.id, costs);
        }
        let key = self.committed.insert(CommittedTask {
            server,
            problem: task.problem,
        });
        self.by_task.insert(task.id, key);
    }

    /// Force-finishes `task` on `server`'s trace, splicing the cached
    /// baseline under [`RepairPolicy::Incremental`] (the without-task
    /// drain becomes the new baseline; see
    /// [`ServerTrace::drain_schedule_without`]). Returns whether the task
    /// was still active.
    fn force_finish_repaired(&mut self, now: SimTime, server: ServerId, task: TaskId) -> bool {
        if self.repair == RepairPolicy::Incremental {
            let trace = &self.traces[server.index()];
            let state = &mut self.predict_states[server.index()];
            let removed_predicted =
                trace.drain_schedule_without(&mut state.scratch, now, task, &mut state.after);
            state.adopt_after_as_baseline();
            let trace = &mut self.traces[server.index()];
            let removed = trace.force_finish(now, task);
            debug_assert_eq!(removed, removed_predicted);
            state.baseline_gen = trace.generation();
            removed
        } else {
            self.traces[server.index()].force_finish(now, task)
        }
    }

    /// Un-commits a task (the real server rejected it and the client will
    /// retry elsewhere). Returns `true` if the task was present.
    pub fn retract(&mut self, now: SimTime, task: TaskId) -> bool {
        let Some(key) = self.by_task.remove(&task) else {
            return false;
        };
        let rec = self.committed.remove(key).expect("indexed record is live");
        self.force_finish_repaired(now, rec.server, task)
    }

    /// Feeds an observed completion back into the model, according to the
    /// [`SyncPolicy`].
    pub fn observe_completion(&mut self, now: SimTime, task: TaskId) {
        if self.sync == SyncPolicy::None {
            return;
        }
        if let Some(&key) = self.by_task.get(&task) {
            let server = self
                .committed
                .get(key)
                .expect("indexed record is live")
                .server;
            self.force_finish_repaired(now, server, task);
        }
    }

    /// Simulated completion dates of every unfinished task on `server`
    /// (the `f(i,j)` of §2.4) as of the trace cursor.
    pub fn completions_on(&self, server: ServerId) -> Vec<(TaskId, SimTime)> {
        self.traces[server.index()].drain_schedule()
    }

    /// Number of unfinished tasks the HTM believes `server` holds.
    pub fn active_on(&self, server: ServerId) -> usize {
        self.traces[server.index()].active_len()
    }

    /// The agent's estimate of `server`'s resident memory at `now`, MB:
    /// the summed memory needs of every task the HTM believes is still
    /// running there at that instant.
    ///
    /// Queries are pure, so a trace's job list only shrinks on mutations;
    /// "still running at `now`" therefore comes from the cached baseline
    /// schedule — a task is resident while its simulated completion lies
    /// beyond `now` — which is exactly the set a query-time
    /// `advance(now)` would have left active, without mutating anything
    /// or allocating.
    ///
    /// This is the model-side half of the paper's future work ("incorporate
    /// memory requirements into the model"); the memory-aware heuristics in
    /// [`crate::heuristics`] use it to veto placements the real server
    /// would reject.
    pub fn resident_estimate(&mut self, now: SimTime, server: ServerId) -> f64 {
        let trace = &self.traces[server.index()];
        let state = &mut self.predict_states[server.index()];
        state.refresh_baseline(trace);
        let (by_task, committed, costs) = (&self.by_task, &self.committed, &self.costs);
        state
            .baseline
            .iter()
            .filter(|&&(_, completion)| completion > now)
            .map(|(t, _)| {
                by_task
                    .get(t)
                    .and_then(|&key| committed.get(key))
                    .map(|rec| costs.problem(rec.problem).mem_mb)
                    .unwrap_or(0.0)
            })
            .sum()
    }

    /// The simulated completion date of every committed task: dates already
    /// recorded in the traces for tasks the simulation finished, plus
    /// drained dates for tasks still active. Under [`SyncPolicy::None`]
    /// these are the open-loop `f(i,j)` values that Table 1 compares to
    /// reality.
    pub fn simulated_completions(&self) -> HashMap<TaskId, SimTime> {
        let mut out = HashMap::new();
        for trace in &self.traces {
            for &(task, when) in trace.finished() {
                out.insert(task, when);
            }
            for (task, when) in trace.drain_schedule() {
                out.insert(task, when);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::{PhaseCosts, Problem};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Two servers; P0 is 100 s on S0 and 200 s on S1, no data, no memory.
    fn table() -> CostTable {
        let mut c = CostTable::new(2);
        c.add_problem(
            Problem::new("p", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 200.0, 0.0)),
            ],
        );
        c
    }

    fn task(id: u64, arrival: f64) -> TaskInstance {
        TaskInstance::new(TaskId(id), cas_platform::ProblemId(0), t(arrival))
    }

    #[test]
    fn predict_empty_server_is_unloaded_cost() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        let p = htm.predict(t(0.0), ServerId(0), &task(1, 0.0)).unwrap();
        assert_eq!(p.completion, t(100.0));
        assert!(p.perturbations.is_empty());
        let p2 = htm.predict(t(0.0), ServerId(1), &task(1, 0.0)).unwrap();
        assert_eq!(p2.completion, t(200.0));
    }

    #[test]
    fn predict_does_not_mutate() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.predict(t(0.0), ServerId(0), &task(1, 0.0));
        htm.predict(t(0.0), ServerId(0), &task(1, 0.0));
        assert_eq!(htm.active_on(ServerId(0)), 0);
        assert_eq!(htm.predictions_made(), 2);
    }

    #[test]
    fn commit_then_predict_sees_perturbation() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        let p = htm.predict(t(0.0), ServerId(0), &task(2, 0.0)).unwrap();
        // T1 alone would finish at 100; sharing with T2 (100) makes T1
        // finish at 200: perturbation 100.
        assert_eq!(p.perturbations, vec![(TaskId(1), 100.0)]);
        // T2 finishes at 200 too (tie, same size).
        assert_eq!(p.completion, t(200.0));
        assert_eq!(p.sum_perturbation(), 100.0);
    }

    #[test]
    fn perturbation_depends_on_remaining_work() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        // At t=80, T1 has 20 s left. Inserting T2 (100 s): T1 finishes at
        // 0.5 rate → +20 s of sharing → done at 120 (perturbation 20).
        let p = htm.predict(t(80.0), ServerId(0), &task(2, 80.0)).unwrap();
        assert_eq!(p.perturbations, vec![(TaskId(1), 20.0)]);
        // T2: shares 40 s (does 20), then alone 80 → done at 200.
        assert_eq!(p.completion, t(200.0));
    }

    #[test]
    fn unsolvable_returns_none() {
        let mut c = CostTable::new(2);
        c.add_problem(
            Problem::new("only-s1", 0.0, 0.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.0, 10.0, 0.0))],
        );
        let mut htm = Htm::new(c, SyncPolicy::None);
        assert!(htm.predict(t(0.0), ServerId(0), &task(1, 0.0)).is_none());
        assert!(htm.predict(t(0.0), ServerId(1), &task(1, 0.0)).is_some());
    }

    #[test]
    fn retract_frees_the_trace() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        assert_eq!(htm.assignment(TaskId(1)), Some(ServerId(0)));
        assert!(htm.retract(t(10.0), TaskId(1)));
        assert_eq!(htm.assignment(TaskId(1)), None);
        // Server looks free again: a new prediction shows no perturbation.
        let p = htm.predict(t(10.0), ServerId(0), &task(2, 10.0)).unwrap();
        assert!(p.perturbations.is_empty());
        assert_eq!(p.completion, t(110.0));
    }

    /// Edge case for the crash path: retracting the *last* in-flight
    /// task of a server must return its trace to pristine under both
    /// repair policies — the ledger empties, the resident estimate
    /// zeroes, and the next prediction is the unloaded cost.
    #[test]
    fn retracting_last_in_flight_task_resets_server() {
        for repair in [RepairPolicy::Incremental, RepairPolicy::FullRedrain] {
            let mut htm = Htm::new(table(), SyncPolicy::ForceFinish);
            htm.set_repair_policy(repair);
            htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
            htm.commit(t(5.0), ServerId(0), &task(2, 5.0));
            assert!(htm.retract(t(10.0), TaskId(2)));
            assert!(htm.retract(t(10.0), TaskId(1)), "{repair:?}: last task");
            assert_eq!(htm.active_on(ServerId(0)), 0, "{repair:?}");
            assert_eq!(htm.resident_estimate(t(10.0), ServerId(0)), 0.0);
            let p = htm.predict(t(10.0), ServerId(0), &task(3, 10.0)).unwrap();
            assert!(p.perturbations.is_empty(), "{repair:?}");
            assert_eq!(p.completion, t(110.0), "{repair:?}");
        }
    }

    /// Edge case for the crash path: a single-task retraction racing
    /// the crash of its own server at the same instant. Whether the
    /// lone retract lands before the crash's oldest-first sweep of the
    /// remainder, or the sweep runs first and the racing retract finds
    /// its task already gone, the model ends in the same state.
    #[test]
    fn retract_then_crash_at_same_instant_is_order_independent() {
        let build = || {
            let mut htm = Htm::new(table(), SyncPolicy::ForceFinish);
            htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
            htm.commit(t(2.0), ServerId(0), &task(2, 2.0));
            htm.commit(t(4.0), ServerId(0), &task(3, 4.0));
            htm
        };
        // Ordering A: the lone retract of T2, then the crash sweep.
        let mut a = build();
        assert!(a.retract(t(50.0), TaskId(2)));
        assert!(a.retract(t(50.0), TaskId(1)));
        assert!(a.retract(t(50.0), TaskId(3)));
        // Ordering B: the crash sweep runs first and already covers the
        // racing task; the late retract reports it gone, mutating nothing.
        let mut b = build();
        assert!(b.retract(t(50.0), TaskId(1)));
        assert!(b.retract(t(50.0), TaskId(2)));
        assert!(b.retract(t(50.0), TaskId(3)));
        assert!(!b.retract(t(50.0), TaskId(2)), "sweep got there first");
        for htm in [&mut a, &mut b] {
            assert_eq!(htm.active_on(ServerId(0)), 0);
            assert_eq!(htm.assignment(TaskId(2)), None);
        }
        let pa = a.predict(t(50.0), ServerId(0), &task(9, 50.0)).unwrap();
        let pb = b.predict(t(50.0), ServerId(0), &task(9, 50.0)).unwrap();
        assert_eq!(pa.completion, pb.completion);
        assert!(pa.perturbations.is_empty() && pb.perturbations.is_empty());
    }

    #[test]
    fn sync_force_finish_corrects_model() {
        let mut htm = Htm::new(table(), SyncPolicy::ForceFinish);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        // Reality says T1 finished early, at t=60 (model said 100).
        htm.observe_completion(t(60.0), TaskId(1));
        let p = htm.predict(t(60.0), ServerId(0), &task(2, 60.0)).unwrap();
        assert!(p.perturbations.is_empty(), "model still thinks T1 runs");
        assert_eq!(p.completion, t(160.0));
    }

    #[test]
    fn sync_none_ignores_observations() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.observe_completion(t(60.0), TaskId(1));
        let p = htm.predict(t(60.0), ServerId(0), &task(2, 60.0)).unwrap();
        assert_eq!(p.perturbations.len(), 1, "open loop keeps simulating T1");
    }

    #[test]
    #[should_panic(expected = "committed twice")]
    fn double_commit_panics() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.commit(t(0.0), ServerId(1), &task(1, 0.0));
    }

    #[test]
    fn completions_on_reports_schedule() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.commit(t(0.0), ServerId(0), &task(2, 0.0));
        let mut fins = htm.completions_on(ServerId(0));
        fins.sort_by_key(|(id, _)| *id);
        assert_eq!(fins.len(), 2);
        assert_eq!(fins[0].1, t(200.0));
        assert_eq!(fins[1].1, t(200.0));
    }

    /// Regression: queries are pure (the trace is not advanced at query
    /// time), so the residency estimate must derive "still running" from
    /// the cached schedule rather than the raw job list — otherwise, under
    /// `SyncPolicy::None`, a server that stops receiving commits would
    /// report its peak residency forever and the memory-aware veto would
    /// exclude it permanently.
    #[test]
    fn resident_estimate_decays_as_simulated_tasks_finish() {
        let mut c = CostTable::new(1);
        c.add_problem(
            Problem::new("hungry", 0.0, 0.0, 100.0),
            vec![Some(PhaseCosts::new(0.0, 10.0, 0.0))],
        );
        let mut htm = Htm::new(c, SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        assert_eq!(htm.resident_estimate(t(0.0), ServerId(0)), 100.0);
        assert_eq!(htm.resident_estimate(t(5.0), ServerId(0)), 100.0);
        // The task's simulated completion is t=10: from then on it no
        // longer occupies memory, with no commit needed to notice.
        assert_eq!(htm.resident_estimate(t(10.0), ServerId(0)), 0.0);
        assert_eq!(htm.resident_estimate(t(1000.0), ServerId(0)), 0.0);
    }

    /// Two same-instant probes of the same problem must share one
    /// speculative drain (the memo key is the problem's costs, not the
    /// probe id) and still answer bit-identically to the reference path.
    #[test]
    fn same_problem_probes_share_a_drain() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        let a = htm
            .predict(t(5.0), ServerId(0), &task(100, 5.0))
            .unwrap()
            .clone();
        let before = htm.memo_stats();
        let b = htm
            .predict(t(5.0), ServerId(0), &task(101, 5.0))
            .unwrap()
            .clone();
        let after = htm.memo_stats();
        assert_eq!(after.drains, before.drains, "second probe must not drain");
        assert_eq!(after.cross_task_hits, before.cross_task_hits + 1);
        assert!(after.hit_rate() > 0.0);
        // Same costs at the same instant: identical numbers, relabelled.
        assert_eq!(a.completion, b.completion);
        assert_eq!(a.perturbations, b.perturbations);
        let reference = htm
            .predict_reference(t(5.0), ServerId(0), &task(101, 5.0))
            .unwrap();
        assert_eq!(b, reference);
    }

    /// A commit that follows a *relabelled* memo hit must still splice the
    /// correct after-schedule in as the new baseline.
    #[test]
    fn commit_after_cross_task_hit_splices_correctly() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.predict(t(5.0), ServerId(0), &task(100, 5.0)).unwrap();
        // Same problem, same instant, different id — then commit it.
        let winner = task(101, 5.0);
        htm.predict(t(5.0), ServerId(0), &winner).unwrap();
        htm.commit(t(5.0), ServerId(0), &winner);
        let cached = htm.cached_baseline(ServerId(0)).expect("baseline fresh");
        assert_eq!(cached.to_vec(), htm.trace(ServerId(0)).drain_schedule());
        assert!(cached.iter().any(|&(id, _)| id == TaskId(101)));
    }

    #[test]
    fn predict_agrees_with_reference_on_fixture() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.commit(t(5.0), ServerId(0), &task(2, 5.0));
        for now in [5.0, 40.0, 150.0, 500.0] {
            for s in [ServerId(0), ServerId(1)] {
                let probe = task(99, now);
                let fast = htm.predict(t(now), s, &probe).unwrap();
                let slow = htm.predict_reference(t(now), s, &probe).unwrap();
                assert_eq!(fast, slow, "now={now}, server={s}");
            }
        }
    }

    /// `predict_all` must agree with per-candidate `predict` even when the
    /// candidate set and the load are big enough to trigger the scoped-
    /// thread fan-out (16 servers × 70 active tasks ≫ the thresholds).
    #[test]
    fn predict_all_parallel_path_matches_serial() {
        let n_servers = 16usize;
        let mut table = CostTable::new(n_servers);
        table.add_problem(
            Problem::new("p", 0.5, 0.2, 0.0),
            (0..n_servers)
                .map(|s| Some(PhaseCosts::new(0.3, 20.0 + s as f64, 0.1)))
                .collect(),
        );
        let mut htm = Htm::new(table, SyncPolicy::None);
        let mut id = 0u64;
        for s in 0..n_servers as u32 {
            for k in 0..70 {
                let tk =
                    TaskInstance::new(TaskId(id), cas_platform::ProblemId(0), t(k as f64 * 0.25));
                htm.commit(tk.arrival, ServerId(s), &tk);
                id += 1;
            }
        }
        let candidates: Vec<ServerId> = (0..n_servers as u32).map(ServerId).collect();
        let probe = task(500_000, 60.0);
        let batch = htm.predict_all(t(60.0), &probe, &candidates);
        assert_eq!(batch.len(), candidates.len());
        for (s, got) in candidates.iter().zip(&batch) {
            let expected = htm.predict_reference(t(60.0), *s, &probe);
            assert_eq!(got.as_ref(), expected.as_ref(), "server {s}");
        }
    }

    /// Incremental repair keeps the baseline fresh through commits that
    /// were *not* preceded by a matching prediction (cold splice) and
    /// through retracts, matching a from-scratch re-drain exactly.
    #[test]
    fn spliced_baseline_matches_full_redrain() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        assert_eq!(htm.repair_policy(), RepairPolicy::Incremental);
        // Cold commits: no predict in between.
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.commit(t(5.0), ServerId(0), &task(2, 5.0));
        htm.commit(t(5.0), ServerId(1), &task(3, 5.0));
        for s in [ServerId(0), ServerId(1)] {
            let cached = htm.cached_baseline(s).expect("baseline stays fresh");
            assert_eq!(cached.to_vec(), htm.trace(s).drain_schedule(), "{s}");
        }
        // Warm commit: predict first (the engine's order), then commit.
        let probe = task(4, 8.0);
        htm.predict(t(8.0), ServerId(0), &probe).unwrap();
        htm.commit(t(8.0), ServerId(0), &probe);
        let cached = htm.cached_baseline(ServerId(0)).unwrap();
        assert_eq!(cached.to_vec(), htm.trace(ServerId(0)).drain_schedule());
        // Retract splices too.
        assert!(htm.retract(t(10.0), TaskId(2)));
        let cached = htm.cached_baseline(ServerId(0)).unwrap();
        assert_eq!(cached.to_vec(), htm.trace(ServerId(0)).drain_schedule());
        // Retracting an unknown task is a no-op.
        assert!(!htm.retract(t(11.0), TaskId(99)));
    }

    /// Completion-only fast mode must truncate drains (the counters say
    /// so) while reporting the exact completion the full engine computes,
    /// and a commit after a truncated prediction must still splice a
    /// complete baseline.
    #[test]
    fn completion_only_truncates_and_commit_completes_the_schedule() {
        let mut c = CostTable::new(1);
        c.add_problem(
            Problem::new("p", 0.0, 0.0, 0.0),
            vec![Some(PhaseCosts::new(0.0, 100.0, 0.0))],
        );
        c.add_problem(
            Problem::new("q", 0.0, 0.0, 0.0),
            vec![Some(PhaseCosts::new(0.0, 1.0, 0.0))],
        );
        let mut fast = Htm::new(c.clone(), SyncPolicy::None);
        fast.set_completion_only(true);
        let mut full = Htm::new(c, SyncPolicy::None);
        full.set_stage2_mode(Stage2Mode::Full);
        assert_eq!(fast.stage2_mode(), Stage2Mode::Fast);
        // Queue long tasks so a short probe completes strictly first and
        // the truncated drain has a tail to skip.
        for id in 0..4 {
            let tk = task(id, 0.0);
            fast.commit(t(0.0), ServerId(0), &tk);
            full.commit(t(0.0), ServerId(0), &tk);
        }
        let probe = TaskInstance::new(TaskId(100), cas_platform::ProblemId(1), t(1.0));
        let a = fast.predict(t(1.0), ServerId(0), &probe).unwrap();
        let b = full.predict(t(1.0), ServerId(0), &probe).unwrap();
        assert_eq!(
            a.completion.as_secs().to_bits(),
            b.completion.as_secs().to_bits()
        );
        assert!(a.perturbations.is_empty(), "completion-only depth");
        assert!(!b.perturbations.is_empty(), "full engine keeps them");
        let stats = fast.memo_stats();
        assert!(stats.truncated > 0, "drain must have stopped early");
        assert!(stats.truncation_rate() > 0.0);
        // Committing the probe needs the whole after-schedule: the splice
        // must still be bit-identical to a full re-drain.
        fast.commit(t(1.0), ServerId(0), &probe);
        full.commit(t(1.0), ServerId(0), &probe);
        let cached = fast.cached_baseline(ServerId(0)).expect("fresh");
        assert_eq!(cached.to_vec(), fast.trace(ServerId(0)).drain_schedule());
        assert_eq!(cached.len(), 5, "all five tasks in the spliced baseline");
    }

    /// Repeated queries against an unchanged server resume the shared
    /// baseline prefix instead of replaying the whole event history.
    #[test]
    fn repeat_queries_hit_the_prefix_cursor() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        for id in 0..3 {
            htm.commit(t(0.0), ServerId(0), &task(id, 0.0));
        }
        // Commits run drains of their own; measure the query phase alone.
        let s0 = htm.memo_stats();
        // Distinct costs per probe problem would be needed to dodge the
        // costs-keyed memo; distinct *times* do it too.
        for (k, now) in [5.0, 6.0, 7.0, 8.0].into_iter().enumerate() {
            htm.predict(t(now), ServerId(0), &task(100 + k as u64, now))
                .unwrap();
        }
        let stats = htm.memo_stats();
        assert_eq!(
            stats.drains - s0.drains,
            4,
            "four distinct questions, four drains"
        );
        assert!(
            stats.prefix_hits - s0.prefix_hits >= 3,
            "later drains resume the prefix: {stats:?}"
        );
        // The rate folds in the commit-time drains too (each a miss, the
        // generation having just changed), so only its liveness is pinned.
        assert!(stats.prefix_reuse_rate() > 0.0);
    }

    /// A crash retraction bumps the trace generation, which must
    /// invalidate both the costs-keyed drain memo and the prefix cursor:
    /// the same question re-asked after the retract runs a fresh drain
    /// (no stale hit) and answers from the repaired trace.
    #[test]
    fn retract_invalidates_drain_memo_and_prefix() {
        let mut htm = Htm::new(table(), SyncPolicy::None);
        htm.commit(t(0.0), ServerId(0), &task(1, 0.0));
        htm.commit(t(0.0), ServerId(0), &task(2, 0.0));
        let probe = task(100, 5.0);
        let before = htm.predict(t(5.0), ServerId(0), &probe).unwrap();
        let s0 = htm.memo_stats();
        // Same question again: answered from the memo, no new drain.
        htm.predict(t(5.0), ServerId(0), &task(101, 5.0)).unwrap();
        let s1 = htm.memo_stats();
        assert_eq!(s1.drains, s0.drains, "unchanged trace answers from memo");
        // Crash retraction: T1 vanishes at t=5.
        assert!(htm.retract(t(5.0), TaskId(1)));
        let after = htm.predict(t(5.0), ServerId(0), &task(102, 5.0)).unwrap();
        let s2 = htm.memo_stats();
        assert_eq!(
            s2.drains,
            s1.drains + 1,
            "post-retract query must re-drain, not hit the stale memo"
        );
        assert!(
            after.completion < before.completion,
            "answer reflects the retracted task: {before:?} vs {after:?}"
        );
        // The prefix cursor was generation-stamped too: the fresh drain
        // cannot have resumed the pre-retract snapshot.
        assert_eq!(s2.prefix_hits, s1.prefix_hits, "no stale prefix resume");
    }

    /// The forced-pool stage-2 scatter must answer bit-identically to the
    /// forced-serial path — the equality step the CI job runs by name.
    #[test]
    fn forced_parallel_stage2_matches_forced_serial() {
        let n_servers = 12usize;
        let mut table = CostTable::new(n_servers);
        table.add_problem(
            Problem::new("p", 0.5, 0.2, 0.0),
            (0..n_servers)
                .map(|s| Some(PhaseCosts::new(0.3, 15.0 + s as f64, 0.1)))
                .collect(),
        );
        let build = || {
            let mut htm = Htm::new(table.clone(), SyncPolicy::None);
            let mut id = 0u64;
            for s in 0..n_servers as u32 {
                for k in 0..9 {
                    let tk = TaskInstance::new(
                        TaskId(id),
                        cas_platform::ProblemId(0),
                        t(k as f64 * 0.5),
                    );
                    htm.commit(tk.arrival, ServerId(s), &tk);
                    id += 1;
                }
            }
            htm
        };
        let mut parallel = build();
        parallel.set_parallel_stage2(Some(true));
        let mut serial = build();
        serial.set_parallel_stage2(Some(false));
        let candidates: Vec<ServerId> = (0..n_servers as u32).map(ServerId).collect();
        for (k, now) in [10.0, 10.0, 30.0].into_iter().enumerate() {
            let probe = task(700_000 + k as u64, now);
            let a = parallel.predict_all(t(now), &probe, &candidates);
            let b = serial.predict_all(t(now), &probe, &candidates);
            assert_eq!(a, b, "scatter changed an answer at now={now}");
        }
        // Both sides agree with the clone-and-drain reference too.
        let probe = task(800_000, 40.0);
        let batch = parallel.predict_all(t(40.0), &probe, &candidates);
        for (s, got) in candidates.iter().zip(&batch) {
            let expected = serial.predict_reference(t(40.0), *s, &probe);
            assert_eq!(got.as_ref(), expected.as_ref(), "server {s}");
        }
    }

    /// Duplicate candidates are evaluated once and back-filled.
    #[test]
    fn predict_all_handles_duplicates_and_unsolvable() {
        let mut c = CostTable::new(2);
        c.add_problem(
            Problem::new("only-s1", 0.0, 0.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.0, 10.0, 0.0))],
        );
        let mut htm = Htm::new(c, SyncPolicy::None);
        let probe = task(1, 0.0);
        let res = htm.predict_all(t(0.0), &probe, &[ServerId(0), ServerId(1), ServerId(1)]);
        assert!(res[0].is_none(), "unsolvable server predicts None");
        assert!(res[1].is_some());
        assert_eq!(res[1], res[2], "duplicate candidate shares the result");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cas_platform::{PhaseCosts, Problem, ProblemId};
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    const N_SERVERS: usize = 3;
    const N_PROBLEMS: usize = 2;

    prop_compose! {
        fn arb_costs()(i in 0.0f64..4.0, c in 0.1f64..40.0, o in 0.0f64..4.0) -> PhaseCosts {
            PhaseCosts::new(i, c, o)
        }
    }

    /// Builds a 2-problem × 3-server table from raw draws; every problem is
    /// forced solvable on server 0 so commits always have a home.
    fn build_table(costs: &[PhaseCosts], solvable: &[bool]) -> CostTable {
        let mut table = CostTable::new(N_SERVERS);
        for p in 0..N_PROBLEMS {
            let row = (0..N_SERVERS)
                .map(|s| {
                    let k = p * N_SERVERS + s;
                    if s == 0 || solvable[k] {
                        Some(costs[k])
                    } else {
                        None
                    }
                })
                .collect();
            table.add_problem(Problem::new(format!("p{p}"), 0.1, 0.1, 0.0), row);
        }
        table
    }

    /// Asserts two predictions are bit-for-bit identical (f64 bit patterns,
    /// perturbation order included).
    fn assert_bit_identical(
        fast: &Prediction,
        slow: &Prediction,
    ) -> Result<(), proptest::TestCaseError> {
        prop_assert_eq!(
            fast.completion.as_secs().to_bits(),
            slow.completion.as_secs().to_bits(),
            "completion differs: {:?} vs {:?}",
            fast.completion,
            slow.completion
        );
        prop_assert_eq!(fast.queried_at, slow.queried_at);
        prop_assert_eq!(
            fast.perturbations.len(),
            slow.perturbations.len(),
            "perturbation sets differ: {:?} vs {:?}",
            &fast.perturbations,
            &slow.perturbations
        );
        for ((jf, pf), (js, ps)) in fast.perturbations.iter().zip(&slow.perturbations) {
            prop_assert_eq!(jf, js);
            prop_assert_eq!(
                pf.to_bits(),
                ps.to_bits(),
                "perturbation of {} differs: {} vs {}",
                jf,
                pf,
                ps
            );
        }
        Ok(())
    }

    /// After every trace mutation under incremental repair, the spliced
    /// baseline must be bit-for-bit what a full re-drain would compute —
    /// the acceptance property of the repair engine.
    fn assert_baselines_match_full_redrain(htm: &Htm) -> Result<(), proptest::TestCaseError> {
        for s in 0..N_SERVERS as u32 {
            let server = ServerId(s);
            let cached = htm.cached_baseline(server);
            prop_assert!(
                cached.is_some(),
                "incremental repair left server {server} with a stale baseline"
            );
            let cached = cached.unwrap();
            let full = htm.trace(server).drain_schedule();
            prop_assert_eq!(
                cached.len(),
                full.len(),
                "baseline length diverged on {}",
                server
            );
            for (a, b) in cached.iter().zip(&full) {
                prop_assert_eq!(a.0, b.0, "task order diverged on {}", server);
                prop_assert_eq!(
                    a.1.as_secs().to_bits(),
                    b.1.as_secs().to_bits(),
                    "completion of {} diverged on {}: {:?} vs {:?}",
                    a.0,
                    server,
                    a.1,
                    b.1
                );
            }
        }
        Ok(())
    }

    proptest! {
        /// The generation-cached, scratch-buffer prediction engine agrees
        /// **bit for bit** with the naive clone-and-drain reference over
        /// arbitrary interleavings of commit / predict / retract / observe
        /// (mirroring the calendar-vs-heap differential proptest), and
        /// after every mutation the incrementally spliced baseline equals
        /// a from-scratch re-drain, bit for bit.
        #[test]
        fn fast_predict_is_bitwise_equal_to_reference(
            costs in proptest::collection::vec(arb_costs(), 6),
            solvable in proptest::collection::vec(proptest::bool::ANY, 6),
            ops in proptest::collection::vec(
                // (op kind, server, problem, time gap)
                (0u32..10, 0u32..3, 0u32..2, 0.0f64..20.0),
                1..50,
            ),
            force_finish in proptest::bool::ANY,
        ) {
            let table = build_table(&costs, &solvable);
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            let mut htm = Htm::new(table, sync);
            let mut now = 0.0f64;
            let mut next_id = 0u64;
            let mut committed: Vec<TaskId> = Vec::new();
            for (kind, server, problem, gap) in ops {
                now += gap;
                let when = t(now);
                match kind {
                    // Half the ops are what-if queries, checked on every
                    // server so the per-server caches get hit, refreshed
                    // and cross-validated in the same round.
                    0..=4 => {
                        let probe = TaskInstance::new(
                            TaskId(1_000_000 + next_id),
                            ProblemId(problem),
                            when,
                        );
                        next_id += 1;
                        for s in 0..N_SERVERS as u32 {
                            let fast = htm.predict(when, ServerId(s), &probe);
                            let slow = htm.predict_reference(when, ServerId(s), &probe);
                            match (&fast, &slow) {
                                (None, None) => {}
                                (Some(f), Some(r)) => assert_bit_identical(f, r)?,
                                _ => prop_assert!(
                                    false,
                                    "solvability disagreement on {}",
                                    s
                                ),
                            }
                        }
                    }
                    // Commits mutate a trace and must invalidate its cache.
                    5..=7 => {
                        let task = TaskInstance::new(TaskId(next_id), ProblemId(problem), when);
                        next_id += 1;
                        let target = if htm.costs().costs(task.problem, ServerId(server)).is_some() {
                            ServerId(server)
                        } else {
                            ServerId(0) // always solvable by construction
                        };
                        htm.commit(when, target, &task);
                        committed.push(task.id);
                        assert_baselines_match_full_redrain(&htm)?;
                    }
                    // Retract a previously committed task.
                    8 => {
                        if let Some(id) = committed.pop() {
                            htm.retract(when, id);
                            assert_baselines_match_full_redrain(&htm)?;
                        }
                    }
                    // Feed back an observed completion (force-finishes the
                    // trace under SyncPolicy::ForceFinish, no-op otherwise).
                    _ => {
                        if let Some(&id) = committed.first() {
                            htm.observe_completion(when, id);
                            assert_baselines_match_full_redrain(&htm)?;
                        }
                    }
                }
            }
        }

        /// The two repair policies are observationally equivalent: an HTM
        /// running incremental splice repair and one running PR-1's
        /// invalidate-and-re-drain answer every query identically over the
        /// same interleaving.
        #[test]
        fn repair_policies_are_observationally_equal(
            costs in proptest::collection::vec(arb_costs(), 6),
            ops in proptest::collection::vec(
                (0u32..10, 0u32..3, 0u32..2, 0.0f64..20.0),
                1..40,
            ),
        ) {
            let solvable = vec![true; 6];
            let table = build_table(&costs, &solvable);
            let mut inc = Htm::new(table.clone(), SyncPolicy::ForceFinish);
            let mut full = Htm::new(table, SyncPolicy::ForceFinish);
            full.set_repair_policy(RepairPolicy::FullRedrain);
            prop_assert_eq!(inc.repair_policy(), RepairPolicy::Incremental);
            let mut now = 0.0f64;
            let mut next_id = 0u64;
            let mut committed: Vec<TaskId> = Vec::new();
            for (kind, server, problem, gap) in ops {
                now += gap;
                let when = t(now);
                match kind {
                    0..=4 => {
                        let probe = TaskInstance::new(
                            TaskId(1_000_000 + next_id),
                            ProblemId(problem),
                            when,
                        );
                        next_id += 1;
                        for s in 0..N_SERVERS as u32 {
                            let a = inc.predict(when, ServerId(s), &probe);
                            let b = full.predict(when, ServerId(s), &probe);
                            match (&a, &b) {
                                (None, None) => {}
                                (Some(f), Some(r)) => assert_bit_identical(f, r)?,
                                _ => prop_assert!(false, "solvability disagreement on {}", s),
                            }
                        }
                    }
                    5..=7 => {
                        let task = TaskInstance::new(TaskId(next_id), ProblemId(problem), when);
                        next_id += 1;
                        inc.commit(when, ServerId(server), &task);
                        full.commit(when, ServerId(server), &task);
                        committed.push(task.id);
                    }
                    8 => {
                        if let Some(id) = committed.pop() {
                            prop_assert_eq!(inc.retract(when, id), full.retract(when, id));
                        }
                    }
                    _ => {
                        if let Some(&id) = committed.first() {
                            inc.observe_completion(when, id);
                            full.observe_completion(when, id);
                        }
                    }
                }
            }
        }

        /// The two stage-2 drain engines are observationally equivalent:
        /// an HTM on the default [`Stage2Mode::Fast`] path (prefix-sharing
        /// drains, memoised truncation bookkeeping) and one pinned to
        /// [`Stage2Mode::Full`] (the pre-optimisation executable spec)
        /// answer every query bit-identically over arbitrary interleavings
        /// of commit / predict / retract / observe, and the Fast side's
        /// spliced baselines always equal a from-scratch re-drain.
        #[test]
        fn stage2_modes_are_observationally_equal(
            costs in proptest::collection::vec(arb_costs(), 6),
            ops in proptest::collection::vec(
                (0u32..10, 0u32..3, 0u32..2, 0.0f64..20.0),
                1..40,
            ),
        ) {
            let solvable = vec![true; 6];
            let table = build_table(&costs, &solvable);
            let mut fast = Htm::new(table.clone(), SyncPolicy::ForceFinish);
            let mut full = Htm::new(table, SyncPolicy::ForceFinish);
            full.set_stage2_mode(Stage2Mode::Full);
            prop_assert_eq!(fast.stage2_mode(), Stage2Mode::Fast);
            let mut now = 0.0f64;
            let mut next_id = 0u64;
            let mut committed: Vec<TaskId> = Vec::new();
            for (kind, server, problem, gap) in ops {
                now += gap;
                let when = t(now);
                match kind {
                    0..=4 => {
                        let probe = TaskInstance::new(
                            TaskId(1_000_000 + next_id),
                            ProblemId(problem),
                            when,
                        );
                        next_id += 1;
                        for s in 0..N_SERVERS as u32 {
                            let a = fast.predict(when, ServerId(s), &probe);
                            let b = full.predict(when, ServerId(s), &probe);
                            match (&a, &b) {
                                (None, None) => {}
                                (Some(f), Some(r)) => assert_bit_identical(f, r)?,
                                _ => prop_assert!(false, "solvability disagreement on {}", s),
                            }
                        }
                    }
                    5..=7 => {
                        let task = TaskInstance::new(TaskId(next_id), ProblemId(problem), when);
                        next_id += 1;
                        fast.commit(when, ServerId(server), &task);
                        full.commit(when, ServerId(server), &task);
                        committed.push(task.id);
                        assert_baselines_match_full_redrain(&fast)?;
                    }
                    8 => {
                        if let Some(id) = committed.pop() {
                            prop_assert_eq!(fast.retract(when, id), full.retract(when, id));
                            assert_baselines_match_full_redrain(&fast)?;
                        }
                    }
                    _ => {
                        if let Some(&id) = committed.first() {
                            fast.observe_completion(when, id);
                            full.observe_completion(when, id);
                        }
                    }
                }
            }
        }

        /// Completion-only depth (the truncated-drain path taken for
        /// heuristics that never read perturbations) reports the same
        /// completion **bits** as the Full engine over arbitrary
        /// interleavings — truncation may cut only the tail *after* the
        /// probe's own entry — and the splice-on-commit still leaves
        /// baselines equal to a full re-drain even when the preceding
        /// drain was truncated.
        #[test]
        fn completion_only_fast_matches_full_completions(
            costs in proptest::collection::vec(arb_costs(), 6),
            ops in proptest::collection::vec(
                (0u32..10, 0u32..3, 0u32..2, 0.0f64..20.0),
                1..40,
            ),
        ) {
            let solvable = vec![true; 6];
            let table = build_table(&costs, &solvable);
            let mut fast = Htm::new(table.clone(), SyncPolicy::ForceFinish);
            fast.set_completion_only(true);
            prop_assert!(fast.completion_only());
            let mut full = Htm::new(table, SyncPolicy::ForceFinish);
            full.set_stage2_mode(Stage2Mode::Full);
            let mut now = 0.0f64;
            let mut next_id = 0u64;
            let mut committed: Vec<TaskId> = Vec::new();
            for (kind, server, problem, gap) in ops {
                now += gap;
                let when = t(now);
                match kind {
                    0..=4 => {
                        let probe = TaskInstance::new(
                            TaskId(1_000_000 + next_id),
                            ProblemId(problem),
                            when,
                        );
                        next_id += 1;
                        for s in 0..N_SERVERS as u32 {
                            let a = fast.predict(when, ServerId(s), &probe);
                            let b = full.predict(when, ServerId(s), &probe);
                            match (&a, &b) {
                                (None, None) => {}
                                (Some(f), Some(r)) => {
                                    prop_assert_eq!(
                                        f.completion.as_secs().to_bits(),
                                        r.completion.as_secs().to_bits(),
                                        "completion differs on {}: {:?} vs {:?}",
                                        s,
                                        f.completion,
                                        r.completion
                                    );
                                    prop_assert_eq!(f.queried_at, r.queried_at);
                                    // The whole point of the depth flag:
                                    // the perturbation fill is skipped.
                                    prop_assert!(f.perturbations.is_empty());
                                }
                                _ => prop_assert!(false, "solvability disagreement on {}", s),
                            }
                        }
                    }
                    5..=7 => {
                        let task = TaskInstance::new(TaskId(next_id), ProblemId(problem), when);
                        next_id += 1;
                        fast.commit(when, ServerId(server), &task);
                        full.commit(when, ServerId(server), &task);
                        committed.push(task.id);
                        assert_baselines_match_full_redrain(&fast)?;
                    }
                    8 => {
                        if let Some(id) = committed.pop() {
                            prop_assert_eq!(fast.retract(when, id), full.retract(when, id));
                            assert_baselines_match_full_redrain(&fast)?;
                        }
                    }
                    _ => {
                        if let Some(&id) = committed.first() {
                            fast.observe_completion(when, id);
                            full.observe_completion(when, id);
                        }
                    }
                }
            }
        }
    }
}

//! What-if query results: the quantities of §2.4.
//!
//! For a candidate placement of a new task on server `i` already running
//! jobs `1..n_i`, the HTM reports:
//!
//! * `f(i, n_i+1)` — the new task's simulated completion date,
//! * `π(i, j) = f'(i, j) − f(i, j)` for every already-mapped job `j` — the
//!   perturbation the insertion inflicts,
//! * their sum (MP's objective) and the count of interfered tasks (MNI's).

use cas_platform::TaskId;
use cas_sim::SimTime;

/// The outcome of simulating a candidate placement on one server.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Simulated completion date of the new task, `f(i, n_i+1)`.
    pub completion: SimTime,
    /// The time the query was made (the task's would-be arrival on the
    /// server), so `completion - queried_at` is the simulated flow time.
    pub queried_at: SimTime,
    /// Per-task perturbations `π(i, j)` in seconds, for every task active on
    /// the server at query time.
    pub perturbations: Vec<(TaskId, f64)>,
}

impl Prediction {
    /// A placeholder with no perturbation storage. Reusable prediction
    /// buffers (decision memos, the router's commit-path scratch) start
    /// here and are overwritten in place by the `predict_into` family,
    /// which reuses the `perturbations` allocation across queries.
    pub fn empty() -> Prediction {
        Prediction {
            completion: SimTime::ZERO,
            queried_at: SimTime::ZERO,
            perturbations: Vec::new(),
        }
    }

    /// Sum of perturbations `Σ_j π(i, j)` — MP's objective (Fig. 3).
    pub fn sum_perturbation(&self) -> f64 {
        self.perturbations.iter().map(|(_, p)| p).sum()
    }

    /// Number of already-mapped tasks that experience interference
    /// (π > `eps`) — Weissman's MNI objective.
    pub fn interfered_count(&self, eps: f64) -> usize {
        self.perturbations.iter().filter(|(_, p)| *p > eps).count()
    }

    /// The new task's simulated time in system, `f(i, n_i+1) − a(n_i+1)`.
    pub fn flow_time(&self) -> f64 {
        (self.completion - self.queried_at).as_secs()
    }

    /// MSF's objective (Fig. 4): `Σ_j π(i, j) + d(i, n_i+1)` where `d` is
    /// "the manager estimated length of the new task".
    pub fn msf_objective(&self) -> f64 {
        self.sum_perturbation() + self.flow_time()
    }

    /// Largest single perturbation, 0 when none.
    pub fn max_perturbation(&self) -> f64 {
        self.perturbations
            .iter()
            .map(|(_, p)| *p)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Prediction {
        Prediction {
            completion: SimTime::from_secs(100.0),
            queried_at: SimTime::from_secs(40.0),
            perturbations: vec![(TaskId(1), 10.0), (TaskId(2), 0.0), (TaskId(3), 5.0)],
        }
    }

    #[test]
    fn aggregates() {
        let p = sample();
        assert_eq!(p.sum_perturbation(), 15.0);
        assert_eq!(p.interfered_count(1e-9), 2);
        assert_eq!(p.flow_time(), 60.0);
        assert_eq!(p.msf_objective(), 75.0);
        assert_eq!(p.max_perturbation(), 10.0);
    }

    #[test]
    fn empty_perturbations() {
        let p = Prediction {
            completion: SimTime::from_secs(5.0),
            queried_at: SimTime::ZERO,
            perturbations: vec![],
        };
        assert_eq!(p.sum_perturbation(), 0.0);
        assert_eq!(p.interfered_count(0.0), 0);
        assert_eq!(p.max_perturbation(), 0.0);
        assert_eq!(p.msf_objective(), 5.0);
    }
}

//! Criterion benchmark: scheduling decision cost.
//!
//! §5 claims "a scheduling decision cost is negligible compared to the
//! duration of the shortest task (less than 0.01 second in most of cases)
//! for all the proposed heuristics". This bench measures `select()` for
//! every heuristic with 4 servers and trace populations of 0–128 active
//! tasks per server — far beyond the paper's loads — and confirms the
//! sub-10 ms envelope holds by orders of magnitude in Rust.

use cas_core::heuristics::{HeuristicKind, SchedView};
use cas_core::{Htm, SyncPolicy};
use cas_platform::{
    CostTable, LoadReport, PhaseCosts, Problem, ProblemId, ServerId, TaskId, TaskInstance,
};
use cas_sim::{RngStream, SimTime, StreamKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table() -> CostTable {
    let mut t = CostTable::new(4);
    for p in 0..3 {
        let base = 15.0 * (p + 1) as f64;
        t.add_problem(
            Problem::new(format!("p{p}"), 1.0, 0.5, 0.0),
            (0..4)
                .map(|s| Some(PhaseCosts::new(0.2, base * (1.0 + s as f64), 0.1)))
                .collect(),
        );
    }
    t
}

/// Builds an HTM with `per_server` active tasks on each of the 4 servers.
fn loaded_htm(per_server: usize) -> Htm {
    let mut htm = Htm::new(table(), SyncPolicy::None);
    let mut id = 1000u64;
    for s in 0..4u32 {
        for k in 0..per_server {
            let t = TaskInstance::new(
                TaskId(id),
                ProblemId((k % 3) as u32),
                SimTime::from_secs(k as f64),
            );
            htm.commit(t.arrival, ServerId(s), &t);
            id += 1;
        }
    }
    htm
}

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_cost");
    let loads: Vec<LoadReport> = (0..4u32)
        .map(|i| LoadReport::initial(ServerId(i)))
        .collect();
    for kind in [
        HeuristicKind::Mct,
        HeuristicKind::Hmct,
        HeuristicKind::Mp,
        HeuristicKind::Msf,
        HeuristicKind::Mni,
    ] {
        for per_server in [0usize, 8, 32, 128] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), per_server),
                &per_server,
                |b, &n| {
                    let htm = loaded_htm(n);
                    let costs = table();
                    let mut heuristic = kind.build();
                    let mut rng = RngStream::derive(1, StreamKind::TieBreak);
                    let task =
                        TaskInstance::new(TaskId(1), ProblemId(0), SimTime::from_secs(500.0));
                    b.iter_batched(
                        || htm.clone(),
                        |mut htm| {
                            let mut view = SchedView::new(
                                task.arrival,
                                task,
                                costs.solvers(task.problem),
                                &costs,
                                &loads,
                                &mut htm,
                                &mut rng,
                            );
                            black_box(heuristic.select(&mut view))
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

/// A wider sweep: 64 servers, the scale the prediction cache is gated on.
fn table64() -> CostTable {
    let mut t = CostTable::new(64);
    for p in 0..3 {
        let base = 15.0 * (p + 1) as f64;
        t.add_problem(
            Problem::new(format!("p{p}"), 1.0, 0.5, 0.0),
            (0..64)
                .map(|s| {
                    Some(PhaseCosts::new(
                        0.2,
                        base * (1.0 + (s % 7) as f64 * 0.3),
                        0.1,
                    ))
                })
                .collect(),
        );
    }
    t
}

fn loaded_htm64(per_server: usize) -> Htm {
    let mut htm = Htm::new(table64(), SyncPolicy::None);
    let mut id = 1000u64;
    for s in 0..64u32 {
        for k in 0..per_server {
            let t = TaskInstance::new(
                TaskId(id),
                ProblemId((k % 3) as u32),
                SimTime::from_secs(k as f64),
            );
            htm.commit(t.arrival, ServerId(s), &t);
            id += 1;
        }
    }
    htm
}

/// The tentpole gate: one full decision (a what-if query per candidate over
/// all 64 servers) through the clone-based reference path vs the
/// generation-cached zero-clone engine.
fn bench_predict_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_cost_64srv");
    let probe = TaskInstance::new(TaskId(1), ProblemId(0), SimTime::from_secs(500.0));
    let candidates: Vec<ServerId> = (0..64u32).map(ServerId).collect();
    for per_server in [8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("clone_baseline", per_server),
            &per_server,
            |b, &n| {
                let mut htm = loaded_htm64(n);
                b.iter(|| {
                    for &s in &candidates {
                        black_box(htm.predict_reference(probe.arrival, s, &probe));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached_batched", per_server),
            &per_server,
            |b, &n| {
                let mut htm = loaded_htm64(n);
                b.iter(|| black_box(htm.predict_all(probe.arrival, &probe, &candidates)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decision, bench_predict_paths);
criterion_main!(benches);

//! Criterion benchmark: `FairShareResource` memory layout.
//!
//! The resource's two hot loops — `advance`'s uniform work subtraction and
//! `next_completion`'s minimum scan — dominate trace drains once servers
//! carry tens of tasks. The live implementation stores activities
//! structure-of-arrays (keys and remaining-work scalars in parallel
//! vectors); `AosResource` below preserves the previous array-of-structs
//! layout as the measured "before". The workload replays the 64-server
//! sweep shape: 64 resources, 8–128 activities each, one
//! advance → next_completion → add → remove cycle per iteration (the
//! per-event pattern of both the ground-truth engine and the HTM drains).

use cas_platform::FairShareResource;
use cas_sim::SimTime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;
use std::hint::black_box;

/// The pre-refactor implementation, kept verbatim: array-of-structs
/// entries plus the same O(1) key index the SoA version carries (so the
/// two sides differ in *layout only* and the comparison is honest).
struct AosResource {
    entries: Vec<(u64, f64)>,
    index: HashMap<u64, usize>,
    capacity: f64,
    updated_at: SimTime,
}

impl AosResource {
    fn new(capacity: f64) -> Self {
        AosResource {
            entries: Vec::new(),
            index: HashMap::new(),
            capacity,
            updated_at: SimTime::ZERO,
        }
    }

    fn advance(&mut self, now: SimTime) {
        if self.entries.is_empty() || now == self.updated_at {
            self.updated_at = now;
            return;
        }
        let dt = (now - self.updated_at).as_secs();
        let rate = self.capacity / self.entries.len() as f64;
        let done = rate * dt;
        for e in &mut self.entries {
            e.1 = (e.1 - done).max(0.0);
        }
        self.updated_at = now;
    }

    fn add(&mut self, now: SimTime, key: u64, work: f64) {
        self.advance(now);
        assert!(!self.index.contains_key(&key));
        self.index.insert(key, self.entries.len());
        self.entries.push((key, work));
    }

    fn remove(&mut self, now: SimTime, key: u64) -> Option<f64> {
        self.advance(now);
        let idx = self.index.remove(&key)?;
        let entry = self.entries.remove(idx);
        for shifted in &self.entries[idx..] {
            *self.index.get_mut(&shifted.0).expect("indexed entry") -= 1;
        }
        Some(entry.1)
    }

    fn next_completion(&self, now: SimTime) -> Option<(u64, SimTime)> {
        let lag = (now - self.updated_at).as_secs();
        let rate = self.capacity / self.entries.len().max(1) as f64;
        self.entries
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .map(|e| {
                let dt = ((e.1 / rate) - lag).max(0.0);
                (e.0, now + SimTime::from_secs(dt))
            })
    }
}

const N_SERVERS: usize = 64;

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare_layout");
    for per_server in [8usize, 32, 128] {
        group.throughput(Throughput::Elements(N_SERVERS as u64));
        group.bench_with_input(
            BenchmarkId::new("aos_before", per_server),
            &per_server,
            |b, &n| {
                let mut resources: Vec<AosResource> =
                    (0..N_SERVERS).map(|_| AosResource::new(1.0)).collect();
                for (s, r) in resources.iter_mut().enumerate() {
                    for k in 0..n {
                        r.add(SimTime::ZERO, k as u64, 1e12 + (s * n + k) as f64);
                    }
                }
                let mut now = 0.0;
                let mut next_id = n as u64;
                b.iter(|| {
                    now += 1.0;
                    let t = SimTime::from_secs(now);
                    for r in &mut resources {
                        r.add(t, next_id, 1.0);
                        black_box(r.next_completion(t));
                        r.remove(t, next_id);
                    }
                    next_id += 1;
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("soa_after", per_server),
            &per_server,
            |b, &n| {
                let mut resources: Vec<FairShareResource<u64>> = (0..N_SERVERS)
                    .map(|_| FairShareResource::new(1.0))
                    .collect();
                for (s, r) in resources.iter_mut().enumerate() {
                    for k in 0..n {
                        r.add(SimTime::ZERO, k as u64, 1e12 + (s * n + k) as f64);
                    }
                }
                let mut now = 0.0;
                let mut next_id = n as u64;
                b.iter(|| {
                    now += 1.0;
                    let t = SimTime::from_secs(now);
                    for r in &mut resources {
                        r.add(t, next_id, 1.0);
                        black_box(r.next_completion(t));
                        r.remove(t, next_id);
                    }
                    next_id += 1;
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);

//! Criterion benchmark: HTM trace-simulation throughput.
//!
//! The HTM's cost is dominated by what-if queries (clone + drain). This
//! bench measures the primitive operations at several trace sizes:
//! `predict` (one what-if), `commit` (advance + insert), and a full
//! `drain_schedule` (the f(i,j) extraction behind MSF's objective).

use cas_core::{Htm, ServerTrace, SyncPolicy};
use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId, ServerId, TaskId, TaskInstance};
use cas_sim::SimTime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn one_server_table() -> CostTable {
    let mut t = CostTable::new(1);
    t.add_problem(
        Problem::new("p", 1.0, 0.5, 0.0),
        vec![Some(PhaseCosts::new(0.5, 20.0, 0.2))],
    );
    t
}

fn populated_trace(n: usize) -> ServerTrace {
    let mut tr = ServerTrace::new();
    for i in 0..n {
        tr.add_task(
            SimTime::from_secs(i as f64 * 0.5),
            TaskId(i as u64),
            PhaseCosts::new(0.5, 20.0 + (i % 7) as f64, 0.2),
        );
    }
    tr
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("htm_predict");
    for n in [1usize, 8, 32, 128] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut htm = Htm::new(one_server_table(), SyncPolicy::None);
            for i in 0..n {
                let t = TaskInstance::new(
                    TaskId(i as u64),
                    ProblemId(0),
                    SimTime::from_secs(i as f64 * 0.1),
                );
                htm.commit(t.arrival, ServerId(0), &t);
            }
            let probe = TaskInstance::new(TaskId(9999), ProblemId(0), SimTime::from_secs(50.0));
            b.iter(|| black_box(htm.predict(probe.arrival, ServerId(0), &probe)));
        });
    }
    group.finish();
}

fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_drain_schedule");
    for n in [8usize, 64, 256] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let tr = populated_trace(n);
            b.iter(|| black_box(tr.drain_schedule().len()));
        });
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("htm_commit");
    group.bench_function("commit_into_32", |b| {
        let mut htm = Htm::new(one_server_table(), SyncPolicy::None);
        for i in 0..32 {
            let t = TaskInstance::new(
                TaskId(i as u64),
                ProblemId(0),
                SimTime::from_secs(i as f64 * 0.1),
            );
            htm.commit(t.arrival, ServerId(0), &t);
        }
        let mut next = 100u64;
        b.iter_batched(
            || htm.clone(),
            |mut h| {
                let t = TaskInstance::new(TaskId(next), ProblemId(0), SimTime::from_secs(10.0));
                h.commit(t.arrival, ServerId(0), &t);
                next += 1;
                black_box(h.active_on(ServerId(0)))
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_predict, bench_drain, bench_commit);
criterion_main!(benches);

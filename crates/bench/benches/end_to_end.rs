//! Criterion benchmark: full experiment throughput.
//!
//! Wall-clock cost of one complete paper-scale experiment (500 tasks, four
//! servers, noise on) per heuristic — the number that determines how many
//! replications a sweep can afford. Also benches the pooled runner against
//! the strictly sequential one.

use cas_core::heuristics::HeuristicKind;
use cas_middleware::{
    run_experiment, run_replications, run_replications_sequential, ExperimentConfig,
};
use cas_workload::metatask::MetataskSpec;
use cas_workload::{testbed, wastecpu};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_500_tasks");
    group.sample_size(20);
    let costs = wastecpu::cost_table();
    let servers = testbed::set2_servers();
    let tasks = MetataskSpec::paper(15.0).generate(1);
    for kind in HeuristicKind::PAPER {
        group.throughput(Throughput::Elements(tasks.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            let cfg = ExperimentConfig::paper(k, 3);
            b.iter(|| {
                black_box(run_experiment(
                    cfg,
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                ))
            });
        });
    }
    group.finish();
}

fn bench_parallel_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner_8_replications");
    group.sample_size(10);
    let costs = wastecpu::cost_table();
    let servers = testbed::set2_servers();
    let tasks = MetataskSpec::paper(20.0).generate(2);
    let workloads: Vec<_> = (0..8).map(|_| tasks.clone()).collect();
    let cfg = ExperimentConfig::paper(HeuristicKind::Msf, 9);
    group.bench_function(BenchmarkId::from_parameter("sequential"), |b| {
        b.iter(|| black_box(run_replications_sequential(cfg, &costs, &servers, &workloads).len()));
    });
    group.bench_function(BenchmarkId::from_parameter("pooled"), |b| {
        b.iter(|| black_box(run_replications(cfg, &costs, &servers, &workloads).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_full_run, bench_parallel_runner);
criterion_main!(benches);

//! Criterion benchmark: full experiment throughput.
//!
//! Wall-clock cost of one complete paper-scale experiment (500 tasks, four
//! servers, noise on) per heuristic — the number that determines how many
//! replications a sweep can afford. Also benches the parallel runner's
//! scaling across worker counts.

use cas_core::heuristics::HeuristicKind;
use cas_middleware::{run_experiment, run_replications, ExperimentConfig};
use cas_workload::metatask::MetataskSpec;
use cas_workload::{testbed, wastecpu};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_500_tasks");
    group.sample_size(20);
    let costs = wastecpu::cost_table();
    let servers = testbed::set2_servers();
    let tasks = MetataskSpec::paper(15.0).generate(1);
    for kind in HeuristicKind::PAPER {
        group.throughput(Throughput::Elements(tasks.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            let cfg = ExperimentConfig::paper(k, 3);
            b.iter(|| {
                black_box(run_experiment(
                    cfg,
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                ))
            });
        });
    }
    group.finish();
}

fn bench_parallel_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner_8_replications");
    group.sample_size(10);
    let costs = wastecpu::cost_table();
    let servers = testbed::set2_servers();
    let tasks = MetataskSpec::paper(20.0).generate(2);
    let workloads: Vec<_> = (0..8).map(|_| tasks.clone()).collect();
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let cfg = ExperimentConfig::paper(HeuristicKind::Msf, 9);
            b.iter(|| black_box(run_replications(cfg, &costs, &servers, &workloads, w).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_run, bench_parallel_runner);
criterion_main!(benches);

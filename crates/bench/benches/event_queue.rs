//! Criterion benchmark: event-queue and fair-share-resource throughput.
//!
//! The simulation kernel's hot paths: push/pop cycles on the stable binary
//! heap (with the hold-model access pattern a DES produces) and
//! advance/add/remove cycles on the fair-share resource.

use cas_platform::FairShareResource;
use cas_sim::{
    AdaptiveQueue, CalendarQueue, EventQueue, HeapQueue, RngStream, SimTime, StreamKind,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_queue_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    for size in [64usize, 1024, 16384] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            // Classic hold model: steady-state queue of `size` events; each
            // iteration pops the earliest and pushes a new one later.
            let mut rng = RngStream::derive(7, StreamKind::Custom(1));
            let mut q = HeapQueue::new();
            for i in 0..size {
                q.push(SimTime::from_secs(rng.uniform(0.0, 100.0)), i as u64);
            }
            b.iter(|| {
                let e = q.pop().expect("non-empty");
                q.push(e.at + SimTime::from_secs(rng.uniform(0.1, 10.0)), e.event);
                black_box(e.at)
            });
        });
    }
    group.finish();
}

fn bench_calendar_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar_queue_hold");
    for size in [64usize, 1024, 16384] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut rng = RngStream::derive(7, StreamKind::Custom(2));
            let mut q = CalendarQueue::new();
            for i in 0..size {
                q.push(SimTime::from_secs(rng.uniform(0.0, 100.0)), i as u64);
            }
            b.iter(|| {
                let e = q.pop().expect("non-empty");
                q.push(e.at + SimTime::from_secs(rng.uniform(0.1, 10.0)), e.event);
                black_box(e.at)
            });
        });
    }
    group.finish();
}

fn bench_adaptive_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_queue_hold");
    for size in [64usize, 1024, 16384] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut rng = RngStream::derive(7, StreamKind::Custom(3));
            let mut q = AdaptiveQueue::new();
            for i in 0..size {
                q.push(SimTime::from_secs(rng.uniform(0.0, 100.0)), i as u64);
            }
            b.iter(|| {
                let e = q.pop().expect("non-empty");
                q.push(e.at + SimTime::from_secs(rng.uniform(0.1, 10.0)), e.event);
                black_box(e.at)
            });
        });
    }
    group.finish();
}

fn bench_fairshare_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare_advance_cycle");
    for n in [2usize, 16, 128] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut res = FairShareResource::new(1.0);
            for i in 0..n {
                res.add(
                    SimTime::ZERO,
                    cas_platform::TaskId(i as u64),
                    1e12 + i as f64,
                );
            }
            let mut now = 0.0;
            let mut next_id = n as u64;
            b.iter(|| {
                now += 1.0;
                let t = SimTime::from_secs(now);
                res.add(t, cas_platform::TaskId(next_id), 1.0);
                let first = res.next_completion(t);
                res.remove(t, cas_platform::TaskId(next_id));
                next_id += 1;
                black_box(first)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_hold,
    bench_calendar_hold,
    bench_adaptive_hold,
    bench_fairshare_cycle
);
criterion_main!(benches);

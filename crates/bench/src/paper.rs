//! The values the paper reports, for side-by-side comparison.
//!
//! Absolute numbers are not expected to match (our substrate is a
//! simulator, DESIGN.md §2) — what must match is the *shape*: orderings,
//! rough factors, crossovers. The binaries print these references next to
//! the measured values and EXPERIMENTS.md records both.

/// One reference cell: heuristic column order MCT, HMCT, MP, MSF.
pub type Row4 = [f64; 4];

/// A reference table: metric name → per-heuristic values.
pub struct Reference {
    /// Table caption in the paper.
    pub caption: &'static str,
    /// (metric row, [MCT, HMCT, MP, MSF]).
    pub rows: &'static [(&'static str, Row4)],
}

/// Table 5 — matmul metatask, low rate.
pub const TABLE5: Reference = Reference {
    caption: "Table 5 (paper): matmul, low rate",
    rows: &[
        ("completed", [500.0, 500.0, 500.0, 500.0]),
        ("makespan", [9906.0, 9908.0, 10162.0, 9905.0]),
        ("sumflow", [25922.0, 19934.0, 26383.0, 19702.0]),
        ("maxflow", [230.0, 103.0, 517.0, 97.0]),
        ("maxstretch", [12.8, 5.8, 3.7, 5.3]),
        ("sooner", [f64::NAN, 325.0, 330.0, 325.0]),
    ],
};

/// Table 6 — matmul metatask, high rate (memory crunch).
pub const TABLE6: Reference = Reference {
    caption: "Table 6 (paper): matmul, high rate",
    rows: &[
        ("completed", [495.0, 358.0, 500.0, 500.0]),
        ("makespan", [7880.0, 5600.0, 7648.0, 7626.0]),
        ("sumflow", [89254.0, 25092.0, 34677.0, 31375.0]),
        ("maxflow", [1780.0, 500.0, 720.0, 250.0]),
        ("maxstretch", [99.0, 27.8, 6.3, 11.3]),
        ("sooner", [f64::NAN, 306.0, 418.0, 435.0]),
    ],
};

/// Table 7 — waste-cpu metatasks, low rate (means over the three
/// metatasks; the paper lists all three, we reference their mean).
pub const TABLE7: Reference = Reference {
    caption: "Table 7 (paper): waste-cpu, low rate (mean of 3 metatasks)",
    rows: &[
        ("completed", [500.0, 500.0, 500.0, 500.0]),
        ("makespan", [10055.7, 10050.7, 10107.0, 10051.0]),
        ("sumflow", [22843.7, 18555.3, 25117.3, 18587.0]),
        ("maxflow", [161.7, 104.7, 278.0, 112.0]),
        ("maxstretch", [3.7, 2.5, 1.9, 2.6]),
        ("sooner", [f64::NAN, 327.3, 325.7, 320.0]),
    ],
};

/// Table 8 — waste-cpu metatasks, high rate.
pub const TABLE8: Reference = Reference {
    caption: "Table 8 (paper): waste-cpu, high rate (mean of 3 metatasks)",
    rows: &[
        ("completed", [500.0, 500.0, 500.0, 500.0]),
        ("makespan", [7649.7, 7615.3, 7660.7, 7614.0]),
        ("sumflow", [54302.3, 37156.3, 31643.7, 31456.7]),
        ("maxflow", [305.7, 231.0, 322.7, 192.7]),
        ("maxstretch", [6.9, 4.8, 3.3, 3.9]),
        ("sooner", [f64::NAN, 383.0, 409.7, 412.3]),
    ],
};

/// Table 1 reference rows: (task, arrival, size, real, simulated, diff,
/// pct_err) for the two validation metatasks.
pub const TABLE1_METATASK_A: &[(u64, f64, u32, f64, f64)] = &[
    // (task, arrival, matrix size, real completion, simulated completion)
    (1, 33.00, 1500, 80.79, 79.99),
    (2, 59.92, 1200, 92.08, 93.19),
    (3, 73.92, 1800, 142.79, 142.50),
];

/// The second, nine-task validation metatask of Table 1.
pub const TABLE1_METATASK_B: &[(u64, f64, u32, f64, f64)] = &[
    (1, 29.41, 1500, 76.69, 76.29),
    (2, 56.43, 1200, 89.15, 89.50),
    (4, 96.41, 1200, 136.97, 139.40),
    (6, 140.41, 1200, 204.84, 204.85),
    (3, 70.42, 1800, 210.61, 195.74),
    (5, 121.43, 1500, 235.38, 232.92),
    (8, 181.45, 1200, 248.02, 248.56),
    (9, 206.41, 1200, 259.91, 261.63),
    (7, 166.42, 1800, 289.08, 288.91),
];

/// The paper's headline validation number: mean error under 3 %.
pub const TABLE1_MEAN_ERROR_PCT: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_are_consistent() {
        for t in [&TABLE5, &TABLE6, &TABLE7, &TABLE8] {
            assert_eq!(t.rows.len(), 6, "{}", t.caption);
            // sumflow of HTM heuristics beats MCT in every reference table
            // except MP at low rate — the claim our reproduction must echo.
            let sumflow = t.rows.iter().find(|(m, _)| *m == "sumflow").unwrap().1;
            assert!(sumflow[3] < sumflow[0], "MSF < MCT in {}", t.caption);
        }
    }

    #[test]
    fn table1_durations_positive() {
        for &(_, arrival, _, real, sim) in TABLE1_METATASK_A.iter().chain(TABLE1_METATASK_B) {
            assert!(real > arrival);
            assert!(sim > arrival);
        }
    }

    #[test]
    fn table1_paper_mean_error_below_3pct() {
        // Recompute the paper's own claim from its table: mean of
        // 100·|real−sim|/(real−arrival) stays under 3 %.
        let rows: Vec<f64> = TABLE1_METATASK_A
            .iter()
            .chain(TABLE1_METATASK_B)
            .map(|&(_, a, _, real, sim)| 100.0 * (real - sim).abs() / (real - a))
            .collect();
        let mean = rows.iter().sum::<f64>() / rows.len() as f64;
        assert!(mean < TABLE1_MEAN_ERROR_PCT, "paper mean = {mean}");
    }
}

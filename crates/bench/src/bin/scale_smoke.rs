//! The standing scale campaign: 1k servers, bursty arrivals, now at up to
//! 10⁶ tasks behind the two-stage decision pipeline.
//!
//! This is the workload the unified event kernel and the candidate
//! pipeline exist for: enough pending events to push the adaptive queue
//! onto its calendar backend, enough servers that an exhaustive
//! one-drain-per-candidate decision is the dominant cost, and enough
//! commits to make incremental baseline repair the difference between
//! minutes and hours. The binary:
//!
//! 1. runs the **headline campaign** — one HMCT experiment on a synthetic
//!    `SCALE_SMOKE_SERVERS`-server platform under inhomogeneous-Poisson
//!    (thinning) arrivals sized to ~50 % of aggregate capacity at the
//!    mean and ~80 % at crests, with the pruning selector of
//!    `SCALE_SMOKE_SELECTOR` (default `adaptive:8:64`);
//! 2. measures the **decision path** in isolation — µs per scheduling
//!    decision on a loaded platform, exhaustive versus `topk:16`
//!    shortlists (gate: ≥ `SCALE_DECISION_GATE`, default 5×);
//! 3. reruns a **comparison campaign** (`SCALE_SMOKE_COMPARE_TASKS`,
//!    default min(tasks, 100k)) under the exhaustive selector and checks
//!    that pruning moves the completion rate by at most
//!    `SCALE_COMPLETION_DELTA_GATE` (default 1 %).
//!
//! Everything lands in `BENCH_scale.json` (path overridable as argv[1]).
//! Exit is non-zero when the wall budget (`SCALE_SMOKE_BUDGET_SECS`,
//! default 600) is blown, tasks fail, or either pipeline gate regresses —
//! CI runs the 10⁵ configuration as a blocking job and the 10⁶
//! configuration (`SCALE_SMOKE_TASKS=1000000`) on a schedule.

use cas_core::heuristics::HeuristicKind;
use cas_core::{Htm, SelectorKind, SyncPolicy};
use cas_metrics::MetricSet;
use cas_middleware::{ExperimentConfig, GridWorld};
use cas_platform::{CostTable, ProblemId, ServerId, StaticIndex, TaskId, TaskInstance};
use cas_sim::{SimTime, Simulation};
use cas_workload::synthetic::{BurstArrivals, SyntheticPlatform};
use std::fmt::Write as _;
use std::time::Instant;

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One full campaign run; returns (metrics, wall seconds, events, queue
/// backend, queue migrations).
fn run_campaign(
    cfg: ExperimentConfig,
    costs: CostTable,
    servers: Vec<cas_platform::ServerSpec>,
    tasks: Vec<TaskInstance>,
) -> (MetricSet, f64, u64, &'static str, u64) {
    let world = GridWorld::new(cfg, costs, servers, tasks);
    let mut sim = Simulation::new(world);
    let start = Instant::now();
    let _ = sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let events = sim.processed();
    let backend = sim.queue().backend_name();
    let migrations = sim.queue().migrations();
    let world = sim.into_world();
    (
        MetricSet::compute(world.records()),
        wall,
        events,
        backend,
        migrations,
    )
}

/// Decision-path microbenchmark at full platform width: µs per HMCT-style
/// decision (argmin of predicted completion over the candidate set, one
/// commit per round as in a live scheduler), exhaustive candidates versus
/// a `topk`-pruned shortlist fed from the incrementally maintained index.
fn decision_microbench(costs: &CostTable, k: usize, per_server: usize) -> (f64, f64) {
    let n_servers = costs.n_servers();
    let build = || {
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut index = StaticIndex::new(costs);
        let mut id = 10_000_000u64;
        for s in 0..n_servers as u32 {
            for t in 0..per_server {
                let task = TaskInstance::new(
                    TaskId(id),
                    ProblemId((t % costs.n_problems()) as u32),
                    SimTime::from_secs(t as f64 * 0.5),
                );
                htm.commit(task.arrival, ServerId(s), &task);
                index.on_commit(ServerId(s));
                id += 1;
            }
        }
        (htm, index, id)
    };
    let all: Vec<ServerId> = (0..n_servers as u32).map(ServerId).collect();
    let decide = |htm: &mut Htm, probe: &TaskInstance, candidates: &[ServerId]| {
        let preds = htm.predict_all(probe.arrival, probe, candidates);
        candidates
            .iter()
            .zip(&preds)
            .filter_map(|(&s, p)| p.as_ref().map(|p| (s, p.completion.as_secs())))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite completion"))
            .map(|(s, _)| s)
            .expect("synthetic tables are fully solvable")
    };

    // Exhaustive side: every solver drained per round.
    let (mut htm, _, mut id) = build();
    let rounds_exh = 24;
    let mut now = per_server as f64;
    for warm in 0..2 {
        let probe = TaskInstance::new(TaskId(id + warm), ProblemId(0), SimTime::from_secs(now));
        decide(&mut htm, &probe, &all);
    }
    id += 2;
    let start = Instant::now();
    for round in 0..rounds_exh {
        now += 0.01;
        let probe = TaskInstance::new(
            TaskId(id),
            ProblemId((round % costs.n_problems()) as u32),
            SimTime::from_secs(now),
        );
        id += 1;
        let winner = decide(&mut htm, &probe, &all);
        htm.commit(probe.arrival, winner, &probe);
    }
    let exhaustive_us = start.elapsed().as_secs_f64() * 1e6 / rounds_exh as f64;

    // Pruned side: stage 1 from the index, stage 2 on the shortlist; the
    // index maintenance (one re-rank per commit) is timed too — it is
    // part of the decision path.
    let (mut htm, mut index, mut id) = build();
    let rounds_topk = 400;
    let mut now = per_server as f64;
    let mut scored = Vec::new();
    let mut shortlist = Vec::new();
    for warm in 0..2 {
        let probe = TaskInstance::new(TaskId(id + warm), ProblemId(0), SimTime::from_secs(now));
        index.k_best(probe.problem, k, &|_| true, &mut scored);
        shortlist.clear();
        shortlist.extend(scored.iter().map(|&(s, _)| s));
        shortlist.sort_unstable();
        decide(&mut htm, &probe, &shortlist);
    }
    id += 2;
    let start = Instant::now();
    for round in 0..rounds_topk {
        now += 0.01;
        let probe = TaskInstance::new(
            TaskId(id),
            ProblemId((round % costs.n_problems()) as u32),
            SimTime::from_secs(now),
        );
        id += 1;
        index.k_best(probe.problem, k, &|_| true, &mut scored);
        shortlist.clear();
        shortlist.extend(scored.iter().map(|&(s, _)| s));
        shortlist.sort_unstable();
        let winner = decide(&mut htm, &probe, &shortlist);
        htm.commit(probe.arrival, winner, &probe);
        index.on_commit(winner);
    }
    let topk_us = start.elapsed().as_secs_f64() * 1e6 / rounds_topk as f64;
    (exhaustive_us, topk_us)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let n_servers = env_or("SCALE_SMOKE_SERVERS", 1000.0) as usize;
    let n_tasks = env_or("SCALE_SMOKE_TASKS", 100_000.0) as usize;
    let budget_secs = env_or("SCALE_SMOKE_BUDGET_SECS", 600.0);
    let compare_tasks = env_or("SCALE_SMOKE_COMPARE_TASKS", n_tasks.min(100_000) as f64) as usize;
    let decision_gate = env_or("SCALE_DECISION_GATE", 5.0);
    let delta_gate = env_or("SCALE_COMPLETION_DELTA_GATE", 0.01);
    let selector_spec =
        std::env::var("SCALE_SMOKE_SELECTOR").unwrap_or_else(|_| "adaptive:8:64".to_string());
    let selector = SelectorKind::parse(&selector_spec)
        .unwrap_or_else(|| panic!("bad SCALE_SMOKE_SELECTOR {selector_spec}"));

    let platform = SyntheticPlatform {
        n_servers,
        heterogeneity: 4.0,
        n_problems: 3,
        base_cost: 15.0,
        cost_spread: 3.0,
        comm_fraction: 0.02,
        mem_fraction: 0.0,
    };
    let seed = 0x5CA1E;
    let servers = platform.servers(seed);
    let costs = platform.cost_table(seed);

    // Aggregate service rate: one task at a time per server at its mean
    // unloaded duration. The burst process runs at 50 % of it on average
    // and ~80 % at crests, so the system is loaded but stable.
    let total_rate: f64 = (0..n_servers)
        .map(|s| {
            let mean_cost: f64 = (0..platform.n_problems)
                .map(|p| {
                    costs
                        .costs(ProblemId(p as u32), ServerId(s as u32))
                        .expect("synthetic tables are fully solvable")
                        .total()
                })
                .sum::<f64>()
                / platform.n_problems as f64;
            1.0 / mean_cost
        })
        .sum();
    let mean_rate = 0.5 * total_rate;
    let burstiness = 4.0; // peak/trough ratio
    let base_rate = 2.0 * mean_rate / (1.0 + burstiness);
    let arrivals = BurstArrivals {
        n_tasks,
        base_rate,
        peak_rate: burstiness * base_rate,
        period: 1800.0,
        n_problems: platform.n_problems,
    };

    let build_start = Instant::now();
    let tasks = arrivals.generate(seed);
    let horizon = tasks.last().expect("non-empty campaign").arrival.as_secs();
    let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, seed);
    cfg.load_report_period = 30.0;
    cfg.selector = selector;
    let build_secs = build_start.elapsed().as_secs_f64();

    // 1. Headline campaign, pruned decision path.
    let (metrics, run_secs, events, queue_backend, queue_migrations) =
        run_campaign(cfg, costs.clone(), servers.clone(), tasks.clone());
    let completed = metrics.completed;
    eprintln!(
        "{n_servers} servers, {n_tasks} tasks over {horizon:.0} sim-seconds \
         (selector {selector_spec}): {completed} completed"
    );
    eprintln!(
        "build {build_secs:.2} s, run {run_secs:.2} s \
         ({:.0} events/s, {:.0} tasks/s); queue ended on `{queue_backend}` \
         after {queue_migrations} migration(s)",
        events as f64 / run_secs,
        n_tasks as f64 / run_secs
    );

    // 2. Decision-path microbench at full width.
    let (exhaustive_us, topk_us) = decision_microbench(&costs, 16, 48);
    let decision_speedup = exhaustive_us / topk_us;
    eprintln!(
        "decision path at {n_servers} servers x 48 tasks: exhaustive {exhaustive_us:.1} \
         µs/decision, topk:16 {topk_us:.1} µs/decision, speedup {decision_speedup:.1}x \
         (gate >= {decision_gate}x)"
    );

    // 3. Pruning-quality comparison on the burst campaign.
    let compare_arrivals = BurstArrivals {
        n_tasks: compare_tasks,
        ..arrivals
    };
    let compare_workload = compare_arrivals.generate(seed);
    let (pruned_m, pruned_secs) = if compare_tasks == n_tasks {
        (metrics, run_secs)
    } else {
        let (m, w, _, _, _) = run_campaign(
            cfg,
            costs.clone(),
            servers.clone(),
            compare_workload.clone(),
        );
        (m, w)
    };
    let (exh_m, exh_secs, _, _, _) = run_campaign(
        cfg.with_selector(SelectorKind::Exhaustive),
        costs.clone(),
        servers.clone(),
        compare_workload,
    );
    let pruned_rate = pruned_m.completed as f64 / compare_tasks as f64;
    let exh_rate = exh_m.completed as f64 / compare_tasks as f64;
    let completion_delta = (pruned_rate - exh_rate).abs();
    eprintln!(
        "pruning quality over {compare_tasks} tasks: completion {pruned_rate:.4} \
         (pruned, {pruned_secs:.1} s wall) vs {exh_rate:.4} (exhaustive, {exh_secs:.1} s wall), \
         delta {completion_delta:.4} (gate <= {delta_gate}); mean stretch {:.3} vs {:.3}",
        pruned_m.meanstretch, exh_m.meanstretch
    );

    let ok_campaign = run_secs <= budget_secs && completed == n_tasks;
    let ok_decision = decision_speedup >= decision_gate;
    let ok_delta = completion_delta <= delta_gate;
    let ok = ok_campaign && ok_decision && ok_delta;

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"scale_smoke\",\n  \"scenario\": \"{n_servers}-server burst campaign \
         (IPPP thinning arrivals, HMCT, adaptive event queue, incremental HTM repair, \
         two-stage candidate pipeline)\",\n\
  \"n_servers\": {n_servers},\n  \"n_tasks\": {n_tasks},\n  \"selector\": \"{selector_spec}\",\n\
  \"arrivals\": {{\"base_rate_per_s\": {base_rate:.4}, \"peak_rate_per_s\": {:.4}, \
         \"period_s\": 1800.0, \"mean_utilisation\": 0.5}},\n\
  \"sim_horizon_s\": {horizon:.1},\n  \"events_processed\": {events},\n\
  \"wall_build_s\": {build_secs:.3},\n  \"wall_run_s\": {run_secs:.3},\n\
  \"events_per_wall_s\": {:.0},\n  \"tasks_per_wall_s\": {:.0},\n\
  \"queue_backend_final\": \"{queue_backend}\",\n  \"queue_migrations\": {queue_migrations},\n\
  \"completed\": {completed},\n  \"mean_stretch\": {:.3},\n",
        burstiness * base_rate,
        events as f64 / run_secs,
        n_tasks as f64 / run_secs,
        metrics.meanstretch,
    );
    let _ = write!(
        json,
        "  \"decision_cost\": {{\n    \"unit\": \"microseconds per scheduling decision (HMCT \
         argmin, one commit per round)\",\n    \"servers\": {n_servers},\n    \
         \"per_server_tasks\": 48,\n    \"exhaustive_us_per_decision\": {exhaustive_us:.2},\n    \
         \"topk16_us_per_decision\": {topk_us:.2},\n    \"speedup\": {decision_speedup:.2},\n    \
         \"acceptance\": {{\"required_min_speedup\": {decision_gate}, \"pass\": {ok_decision}}}\n  }},\n"
    );
    let _ = write!(
        json,
        "  \"pruning_quality\": {{\n    \"compare_tasks\": {compare_tasks},\n    \
         \"pruned_completion_rate\": {pruned_rate:.6},\n    \
         \"exhaustive_completion_rate\": {exh_rate:.6},\n    \
         \"completion_delta\": {completion_delta:.6},\n    \
         \"pruned_mean_stretch\": {:.4},\n    \"exhaustive_mean_stretch\": {:.4},\n    \
         \"pruned_wall_s\": {pruned_secs:.3},\n    \"exhaustive_wall_s\": {exh_secs:.3},\n    \
         \"acceptance\": {{\"max_completion_delta\": {delta_gate}, \"pass\": {ok_delta}}}\n  }},\n",
        pruned_m.meanstretch, exh_m.meanstretch
    );
    let _ = write!(
        json,
        "  \"acceptance\": {{\"budget_wall_s\": {budget_secs}, \"all_tasks_complete\": {}, \
         \"decision_gate_pass\": {ok_decision}, \"completion_delta_pass\": {ok_delta}, \
         \"pass\": {ok}}}\n}}\n",
        completed == n_tasks,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path} (budget {budget_secs:.0} s, pass: {ok})");
    if !ok {
        std::process::exit(1);
    }
}

//! The standing scale campaign: 1k servers, bursty arrivals, now at up to
//! 10⁶ tasks behind the two-stage decision pipeline.
//!
//! This is the workload the unified event kernel and the candidate
//! pipeline exist for: enough pending events to push the adaptive queue
//! onto its calendar backend, enough servers that an exhaustive
//! one-drain-per-candidate decision is the dominant cost, and enough
//! commits to make incremental baseline repair the difference between
//! minutes and hours. The binary:
//!
//! 1. runs the **headline campaign** — one HMCT experiment on a synthetic
//!    `SCALE_SMOKE_SERVERS`-server platform under inhomogeneous-Poisson
//!    (thinning) arrivals sized to ~50 % of aggregate capacity at the
//!    mean and ~80 % at crests, with the pruning selector of
//!    `SCALE_SMOKE_SELECTOR` (default `adaptive:8:64`);
//! 2. measures the **decision path** in isolation — µs per scheduling
//!    decision on a loaded platform, exhaustive versus `topk:16`
//!    shortlists (gate: ≥ `SCALE_DECISION_GATE`, default 5×);
//! 3. reruns a **comparison campaign** (`SCALE_SMOKE_COMPARE_TASKS`,
//!    default min(tasks, 100k)) under the exhaustive selector and checks
//!    that pruning moves the completion rate by at most
//!    `SCALE_COMPLETION_DELTA_GATE` (default 1 %);
//! 4. reruns the comparison campaign in **both stage-2 modes** —
//!    truncated prefix-sharing fast drains (the default) versus the full
//!    pre-optimisation engine kept as the executable spec — requiring
//!    bit-identical records, gating the isolated `stage2_predict` phase
//!    time at ≥ `STAGE2_GATE` (default 1.5×; CI uses 1.2×) and requiring
//!    the drain counters (drains, truncations, prefix-cursor reuses)
//!    live in the new `stage2` JSON section;
//! 5. reruns the headline campaign through the **shard federation**
//!    (`SCALE_SMOKE_SHARDS`, default `auto`) and checks the sharded
//!    completion rate within the same delta gate of the unsharded run;
//! 6. checks **group-walk equality**: the comparison campaign rerun with
//!    every shard its own group (`auto:1`) must be record-identical to
//!    the flat lazy walk — the two-level tree may prune walks, never
//!    decisions (exact gate, like the skyline-on/off arm);
//! 7. measures the **decision pipeline at production width** — one full
//!    two-stage decision plus commit and complete hooks per task through
//!    the real router — at `SHARD_BENCH_SERVERS` (default 10k) servers,
//!    unsharded versus `SHARD_BENCH_SHARDS` (default auto ⇒ 16) shards
//!    (gate: ≥ `SHARD_DECISION_GATE`, default 3×);
//! 8. measures the **two-level walk** against the flat skyline walk at
//!    `SHARD_TREE_SHARDS` (default 1024, the auto cap — the walk shape a
//!    million-server federation pays) over the same farm (gate: ≥
//!    `SHARD_TREE_GATE`, default 1.3×, with both per-level skip counters
//!    required live);
//! 9. measures the **hot path** twice: the stage-1 decision loop in
//!    isolation — k-best walk + re-rank hooks, flat ladder versus the
//!    BTree executable spec (gate: ≥ `HOTPATH_GATE`, default 1.3×) —
//!    and the full pipeline against the previous PR's decision path
//!    replayed through its executable-spec knobs (gates: bit-identical
//!    decisions, no-regression within `HOTPATH_PIPELINE_TOLERANCE`);
//! 10. reruns the sharded campaign under a **fault schedule**
//!     (`SCALE_CHURN_MTBF`, default 400 s — far below the campaign
//!     length — and `SCALE_CHURN_MTTR`, default 60 s) and gates on
//!     accounting: every task must end terminal, completed or dropped
//!     with a reason code; nothing may be lost in flight;
//! 11. replays a **fitted trace** whose crest class outruns the bounded
//!     admission buffer on its own compiled farm, gating on an
//!     uncontended gate being bit-invisible, deterministic and
//!     shard-invariant replay, exact terminal accounting against the
//!     admission counters, and live backpressure counters — the JSON
//!     gains a `trace` section with per-user-class SLOs.
//!
//! The whole run executes under the always-on phase profiler: the JSON
//! gains a `profile` section (per-phase totals, estimated span overhead
//! gated at ≤ `SCALE_PROFILE_OVERHEAD_GATE`, default 2 %, with every
//! phase required live) and a `peak_pending` section (event-kernel
//! high-water mark across the three campaigns, gated at
//! `SCALE_PEAK_PENDING_GATE`).
//!
//! Everything lands in `BENCH_scale.json` (path overridable as argv[1]).
//! Exit is non-zero when the wall budget (`SCALE_SMOKE_BUDGET_SECS`,
//! default 600) is blown, tasks fail, or any pipeline gate regresses —
//! CI runs the 1k/10⁵ configuration as a blocking job, the 1k/10⁶
//! configuration (`SCALE_SMOKE_TASKS=1000000`) nightly, and the
//! 10k-server/10⁶-task sharded configuration nightly as well; the
//! 100k-server/10⁷-task hierarchical campaign has its own nightly
//! binary (`scale_100k`, writing `BENCH_scale_100k.json`).

use cas_core::heuristics::HeuristicKind;
use cas_core::{Htm, MemoStats, SelectorKind, Stage2Mode, SyncPolicy};
use cas_metrics::{prof, MetricSet};
use cas_middleware::shard::DecisionInputs;
use cas_middleware::{
    run_experiment, run_experiment_with_users, AgentRouter, ChurnStats, ExperimentConfig,
    GridWorld, Sharding, SkylineStats,
};
use cas_platform::{
    CostTable, IndexScoring, LoadReport, ProblemId, RankingsBackend, ServerId, StaticIndex, TaskId,
    TaskInstance,
};
use cas_sim::{RngStream, SimTime, Simulation, StreamKind};
use cas_workload::synthetic::{BurstArrivals, SyntheticPlatform};
use cas_workload::trace::{AppProfile, FittedTraceSpec, TraceWorkload};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Everything one campaign run reports back.
struct CampaignRun {
    records: Vec<cas_metrics::TaskRecord>,
    metrics: MetricSet,
    wall: f64,
    events: u64,
    backend: &'static str,
    migrations: u64,
    /// Kernel events spent on periodic load reports (O(n) per period in
    /// the default mode, O(S) with aggregated per-shard reports).
    report_events: u64,
    /// Kernel queue-pressure high-water mark.
    peak_pending: usize,
    /// Skyline visit/skip counters (zero off the lazy-merge path).
    skyline: SkylineStats,
    /// Farm-lifecycle counters (all zero on a frozen farm).
    churn: ChurnStats,
    /// Stage-2 drain-engine counters, merged across shards: drains run,
    /// memo hits, truncations, prefix-cursor reuses.
    stage2: MemoStats,
}

fn run_campaign(
    cfg: ExperimentConfig,
    costs: CostTable,
    servers: Vec<cas_platform::ServerSpec>,
    tasks: Vec<TaskInstance>,
) -> CampaignRun {
    let world = GridWorld::new(cfg, costs, servers, tasks);
    let mut sim = Simulation::new(world);
    let start = Instant::now();
    let _ = sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let events = sim.processed();
    let backend = sim.queue().backend_name();
    let migrations = sim.queue().migrations();
    let peak_pending = sim.peak_pending();
    let world = sim.into_world();
    let metrics = MetricSet::compute(world.records());
    let report_events = world.report_events();
    let skyline = world.agent().skyline_stats();
    let churn = world.churn_stats();
    let stage2 = world.agent().stage2_stats();
    CampaignRun {
        metrics,
        report_events,
        skyline,
        churn,
        stage2,
        records: world.into_records(),
        wall,
        events,
        backend,
        migrations,
        peak_pending,
    }
}

/// Decision-path microbenchmark at full platform width: µs per HMCT-style
/// decision (argmin of predicted completion over the candidate set, one
/// commit per round as in a live scheduler), exhaustive candidates versus
/// a `topk`-pruned shortlist fed from the incrementally maintained index.
fn decision_microbench(costs: &CostTable, k: usize, per_server: usize) -> (f64, f64) {
    let n_servers = costs.n_servers();
    let build = || {
        let mut htm = Htm::new(costs.clone(), SyncPolicy::None);
        let mut index = StaticIndex::new(costs);
        let mut id = 10_000_000u64;
        for s in 0..n_servers as u32 {
            for t in 0..per_server {
                let task = TaskInstance::new(
                    TaskId(id),
                    ProblemId((t % costs.n_problems()) as u32),
                    SimTime::from_secs(t as f64 * 0.5),
                );
                let work = costs
                    .unloaded_duration(task.problem, ServerId(s))
                    .expect("synthetic tables are fully solvable");
                htm.commit(task.arrival, ServerId(s), &task);
                index.on_commit(ServerId(s), work);
                id += 1;
            }
        }
        (htm, index, id)
    };
    let all: Vec<ServerId> = (0..n_servers as u32).map(ServerId).collect();
    let decide = |htm: &mut Htm, probe: &TaskInstance, candidates: &[ServerId]| {
        let preds = htm.predict_all(probe.arrival, probe, candidates);
        candidates
            .iter()
            .zip(&preds)
            .filter_map(|(&s, p)| p.as_ref().map(|p| (s, p.completion.as_secs())))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite completion"))
            .map(|(s, _)| s)
            .expect("synthetic tables are fully solvable")
    };

    // Exhaustive side: every solver drained per round.
    let (mut htm, _, mut id) = build();
    let rounds_exh = 24;
    let mut now = per_server as f64;
    for warm in 0..2 {
        let probe = TaskInstance::new(TaskId(id + warm), ProblemId(0), SimTime::from_secs(now));
        decide(&mut htm, &probe, &all);
    }
    id += 2;
    let start = Instant::now();
    for round in 0..rounds_exh {
        now += 0.01;
        let probe = TaskInstance::new(
            TaskId(id),
            ProblemId((round % costs.n_problems()) as u32),
            SimTime::from_secs(now),
        );
        id += 1;
        let winner = decide(&mut htm, &probe, &all);
        htm.commit(probe.arrival, winner, &probe);
    }
    let exhaustive_us = start.elapsed().as_secs_f64() * 1e6 / rounds_exh as f64;

    // Pruned side: stage 1 from the index, stage 2 on the shortlist; the
    // index maintenance (one re-rank per commit) is timed too — it is
    // part of the decision path.
    let (mut htm, mut index, mut id) = build();
    let rounds_topk = 400;
    let mut now = per_server as f64;
    let mut scored = Vec::new();
    let mut shortlist = Vec::new();
    for warm in 0..2 {
        let probe = TaskInstance::new(TaskId(id + warm), ProblemId(0), SimTime::from_secs(now));
        index.k_best(probe.problem, k, &|_| true, &mut scored);
        shortlist.clear();
        shortlist.extend(scored.iter().map(|&(s, _)| s));
        shortlist.sort_unstable();
        decide(&mut htm, &probe, &shortlist);
    }
    id += 2;
    let start = Instant::now();
    for round in 0..rounds_topk {
        now += 0.01;
        let probe = TaskInstance::new(
            TaskId(id),
            ProblemId((round % costs.n_problems()) as u32),
            SimTime::from_secs(now),
        );
        id += 1;
        index.k_best(probe.problem, k, &|_| true, &mut scored);
        shortlist.clear();
        shortlist.extend(scored.iter().map(|&(s, _)| s));
        shortlist.sort_unstable();
        let winner = decide(&mut htm, &probe, &shortlist);
        let work = costs
            .unloaded_duration(probe.problem, winner)
            .expect("synthetic tables are fully solvable");
        htm.commit(probe.arrival, winner, &probe);
        index.on_commit(winner, work);
    }
    let topk_us = start.elapsed().as_secs_f64() * 1e6 / rounds_topk as f64;
    (exhaustive_us, topk_us)
}

/// Per-task decision-pipeline microbench through the **real router** at
/// farm width `n_servers`: every round runs one full two-stage decision
/// (adaptive selector, as the campaign uses), commits the winner and —
/// once the in-flight window fills — completes the oldest task, i.e. the
/// commit *and* complete hooks (model repair + index re-rank) are timed
/// as part of the pipeline, exactly as a live campaign pays them.
/// Returns µs/task for the pre-federation engine, the unsharded single
/// agent, the eager-merge federation and the skyline-merge federation
/// over the same platform (plus the skyline arm's skipped-shard rate):
/// the sharded contrasts are purely structural (per-engine state `O(n)`
/// vs `O(n/S)`, scatter `O(S)` walks vs skyline-pruned), since worker
/// fan-out cannot change results and this host measures the serial path.
fn sharding_microbench(
    costs: &CostTable,
    specs: &[cas_platform::ServerSpec],
    n_shards: usize,
    per_server: usize,
    width: usize,
    rounds: usize,
) -> (f64, f64, f64, f64, f64) {
    let n_servers = costs.n_servers();
    let reports: Vec<LoadReport> = (0..n_servers as u32)
        .map(|i| LoadReport::initial(ServerId(i)))
        .collect();
    let server_mem: Vec<f64> = specs.iter().map(|s| s.total_mem_mb()).collect();
    // Fixed width so both arms run identical stage-2 batches: the
    // contrast under measurement is the structural O(n) vs O(n/S) cost,
    // not selector-width dynamics. The default width is the adaptive
    // selector's calm floor (8) — its standing width in the campaign.
    let selector = SelectorKind::TopK { k: width };

    // `legacy_scan` replays the pre-federation engine's per-decision
    // O(n) platform scan (it collected every server's admission limit on
    // every arrival — the line the federation PR hoisted into the world
    // build) and pins the arm to that engine's decision internals —
    // BTree rankings and batched stage 2, both since rebuilt by the
    // hot-path PR — so the arm keeps measuring the engine as it stood
    // before the federation, the same way `decision_cost` keeps the
    // exhaustive loop as its predecessor baseline. Without the pin the
    // baseline silently inherits every later single-agent speedup and
    // the structural contrast this section gates on erodes.
    let run = |shards: Option<usize>, legacy_scan: bool, skyline: bool| -> (f64, SkylineStats) {
        // ForceFinish so completions actually leave the traces — the
        // standing state of a live campaign — and so the complete hook
        // exercises the incremental repair the federation routes to one
        // shard.
        let mut router = AgentRouter::new(
            costs,
            shards,
            selector,
            IndexScoring::RemainingWork,
            SyncPolicy::ForceFinish,
        )
        .with_skyline(skyline);
        if legacy_scan {
            router = router
                .with_rankings(RankingsBackend::Btree)
                .with_batch_predict(true);
        }
        let mut heuristic = HeuristicKind::Hmct.build();
        let mut tie_rng = RngStream::derive(9, StreamKind::TieBreak);
        let mut id = 50_000_000u64;
        // Campaign-like standing load: `per_server` tasks on every
        // second server — the ~0.5 mean utilisation of the standing
        // campaign leaves roughly half the farm idle at any instant, and
        // stage-1 steers new work there.
        for s in (0..n_servers as u32).filter(|s| s % 2 == 1) {
            for t in 0..per_server {
                let task = TaskInstance::new(
                    TaskId(id),
                    ProblemId((t % costs.n_problems()) as u32),
                    SimTime::from_secs(t as f64 * 0.5),
                );
                let work = costs
                    .unloaded_duration(task.problem, ServerId(s))
                    .expect("synthetic tables are fully solvable");
                router.on_commit(task.arrival, ServerId(s), &task, work);
                id += 1;
            }
        }
        let mut now = per_server as f64;
        let mut inflight: VecDeque<(TaskId, ServerId, f64)> = VecDeque::new();
        let admit = |_: ServerId| true;
        let round_trip =
            |now: f64,
             id: u64,
             round: usize,
             router: &mut AgentRouter,
             heuristic: &mut dyn cas_core::Heuristic,
             tie_rng: &mut RngStream,
             inflight: &mut VecDeque<(TaskId, ServerId, f64)>| {
                let when = SimTime::from_secs(now);
                let task = TaskInstance::new(
                    TaskId(id),
                    ProblemId((round % costs.n_problems()) as u32),
                    when,
                );
                let legacy_mem: Vec<f64> = if legacy_scan {
                    specs.iter().map(|s| s.total_mem_mb()).collect()
                } else {
                    Vec::new()
                };
                let pick = router
                    .decide(
                        DecisionInputs {
                            now: when,
                            task,
                            costs,
                            reports: &reports,
                            server_mem: if legacy_scan {
                                &legacy_mem
                            } else {
                                &server_mem
                            },
                            admit: &admit,
                        },
                        heuristic,
                        tie_rng,
                    )
                    .expect("synthetic tables are fully solvable");
                let work = costs
                    .unloaded_duration(task.problem, pick)
                    .expect("picked implies solvable");
                router.on_commit(when, pick, &task, work);
                inflight.push_back((task.id, pick, work));
                if inflight.len() > 64 {
                    let (done, server, w) = inflight.pop_front().expect("window is full");
                    router.on_complete(when, server, done, w, now, now * 0.95);
                }
            };
        for warm in 0..4 {
            now += 0.01;
            round_trip(
                now,
                id,
                warm,
                &mut router,
                heuristic.as_mut(),
                &mut tie_rng,
                &mut inflight,
            );
            id += 1;
        }
        let start = Instant::now();
        for round in 0..rounds {
            now += 0.01;
            round_trip(
                now,
                id,
                round,
                &mut router,
                heuristic.as_mut(),
                &mut tie_rng,
                &mut inflight,
            );
            id += 1;
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        (us, router.skyline_stats())
    };

    // Interleaved repetitions, median per arm: the arms' working sets
    // differ by orders of magnitude, so one-shot means are at the mercy
    // of host noise.
    let reps = 5;
    let mut samples = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut skip_rate = 0.0;
    for _ in 0..reps {
        samples[0].push(run(None, true, true).0);
        samples[1].push(run(None, false, true).0);
        samples[2].push(run(Some(n_shards), false, false).0);
        let (us, stats) = run(Some(n_shards), false, true);
        samples[3].push(us);
        // Deterministic: every rep sees the same decisions, so any rep's
        // skip counters are the run's skip counters.
        skip_rate = stats.skip_rate();
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let [mut legacy, mut unsharded, mut eager, mut skyline] = samples;
    (
        median(&mut legacy),
        median(&mut unsharded),
        median(&mut eager),
        median(&mut skyline),
        skip_rate,
    )
}

/// Group-walk microbench at federation scale: µs per task through the
/// full decision pipeline (as [`sharding_microbench`]) with the skyline
/// federation's **flat** shard walk versus the **two-level tree** walk
/// over the same `n_shards` — the contrast is purely the per-decision
/// walk bookkeeping (flat: build + sort an `O(S)` order vector and test
/// every shard's skyline key; tree: sort `O(S/G)` group keys and descend
/// only into groups whose group skyline survives), since both walks
/// visit the identical shard set and run identical stage-2 batches.
/// `n_shards` defaults to the auto-shard cap (1024): the walk shape a
/// million-server federation pays, hosted on the 10k bench farm.
/// Returns (flat µs/task, tree µs/task, tree-arm counters).
fn tree_walk_microbench(
    costs: &CostTable,
    specs: &[cas_platform::ServerSpec],
    n_shards: usize,
    group_size: usize,
    per_server: usize,
    width: usize,
    rounds: usize,
) -> (f64, f64, SkylineStats) {
    let n_servers = costs.n_servers();
    let reports: Vec<LoadReport> = (0..n_servers as u32)
        .map(|i| LoadReport::initial(ServerId(i)))
        .collect();
    let server_mem: Vec<f64> = specs.iter().map(|s| s.total_mem_mb()).collect();
    let selector = SelectorKind::TopK { k: width };

    let run = |grouped: bool| -> (f64, SkylineStats) {
        let mut router = AgentRouter::new(
            costs,
            Some(n_shards),
            selector,
            IndexScoring::RemainingWork,
            SyncPolicy::ForceFinish,
        )
        .with_skyline(true);
        router = if grouped {
            router.with_group_size(group_size)
        } else {
            router.with_tree(false)
        };
        let mut heuristic = HeuristicKind::Hmct.build();
        let mut tie_rng = RngStream::derive(9, StreamKind::TieBreak);
        let mut id = 70_000_000u64;
        for s in (0..n_servers as u32).filter(|s| s % 2 == 1) {
            for t in 0..per_server {
                let task = TaskInstance::new(
                    TaskId(id),
                    ProblemId((t % costs.n_problems()) as u32),
                    SimTime::from_secs(t as f64 * 0.5),
                );
                let work = costs
                    .unloaded_duration(task.problem, ServerId(s))
                    .expect("synthetic tables are fully solvable");
                router.on_commit(task.arrival, ServerId(s), &task, work);
                id += 1;
            }
        }
        let mut now = per_server as f64;
        let mut inflight: VecDeque<(TaskId, ServerId, f64)> = VecDeque::new();
        let admit = |_: ServerId| true;
        let mut round_trip = |now: f64, id: u64, round: usize, router: &mut AgentRouter| {
            let when = SimTime::from_secs(now);
            let task = TaskInstance::new(
                TaskId(id),
                ProblemId((round % costs.n_problems()) as u32),
                when,
            );
            let pick = router
                .decide(
                    DecisionInputs {
                        now: when,
                        task,
                        costs,
                        reports: &reports,
                        server_mem: &server_mem,
                        admit: &admit,
                    },
                    heuristic.as_mut(),
                    &mut tie_rng,
                )
                .expect("synthetic tables are fully solvable");
            let work = costs
                .unloaded_duration(task.problem, pick)
                .expect("picked implies solvable");
            router.on_commit(when, pick, &task, work);
            inflight.push_back((task.id, pick, work));
            if inflight.len() > 64 {
                let (done, server, w) = inflight.pop_front().expect("window is full");
                router.on_complete(when, server, done, w, now, now * 0.95);
            }
        };
        for warm in 0..4 {
            now += 0.01;
            round_trip(now, id, warm, &mut router);
            id += 1;
        }
        let start = Instant::now();
        for round in 0..rounds {
            now += 0.01;
            round_trip(now, id, round, &mut router);
            id += 1;
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        (us, router.skyline_stats())
    };

    let reps = 5;
    let (mut flat, mut tree) = (Vec::new(), Vec::new());
    let mut tree_stats = SkylineStats::default();
    for _ in 0..reps {
        flat.push(run(false).0);
        let (us, stats) = run(true);
        tree.push(us);
        // Deterministic: every rep replays the same decisions.
        tree_stats = stats;
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    (median(&mut flat), median(&mut tree), tree_stats)
}

/// Hot-path microbench: the full decision pipeline (as
/// [`sharding_microbench`]'s skyline arm) under the **current** decision
/// path — flat rankings, direct zero-allocation stage 2 — versus the
/// **previous PR's** path replayed through its executable-spec knobs:
/// BTree rankings (`RankingsBackend::Btree`) and the batch `predict_all`
/// stage 2 (`with_batch_predict`). Both arms are proven bit-identical in
/// decisions (differential suites + the in-run pick comparison here), so
/// the contrast is pure constant factors: ranking-walk cache behaviour,
/// re-rank cost on the commit/complete hooks, and per-decision
/// allocation. Returns (baseline µs/task, current µs/task,
/// decisions-equal).
fn hotpath_microbench(
    costs: &CostTable,
    specs: &[cas_platform::ServerSpec],
    n_shards: usize,
    per_server: usize,
    width: usize,
    rounds: usize,
) -> (f64, f64, bool) {
    let n_servers = costs.n_servers();
    let reports: Vec<LoadReport> = (0..n_servers as u32)
        .map(|i| LoadReport::initial(ServerId(i)))
        .collect();
    let server_mem: Vec<f64> = specs.iter().map(|s| s.total_mem_mb()).collect();
    let selector = SelectorKind::TopK { k: width };

    let run = |baseline: bool| -> (f64, Vec<ServerId>) {
        let mut router = AgentRouter::new(
            costs,
            Some(n_shards),
            selector,
            IndexScoring::RemainingWork,
            SyncPolicy::ForceFinish,
        )
        .with_skyline(true);
        if baseline {
            router = router
                .with_rankings(RankingsBackend::Btree)
                .with_batch_predict(true);
        }
        let mut heuristic = HeuristicKind::Hmct.build();
        let mut tie_rng = RngStream::derive(9, StreamKind::TieBreak);
        let mut id = 90_000_000u64;
        for s in (0..n_servers as u32).filter(|s| s % 2 == 1) {
            for t in 0..per_server {
                let task = TaskInstance::new(
                    TaskId(id),
                    ProblemId((t % costs.n_problems()) as u32),
                    SimTime::from_secs(t as f64 * 0.5),
                );
                let work = costs
                    .unloaded_duration(task.problem, ServerId(s))
                    .expect("synthetic tables are fully solvable");
                router.on_commit(task.arrival, ServerId(s), &task, work);
                id += 1;
            }
        }
        let mut now = per_server as f64;
        let mut inflight: VecDeque<(TaskId, ServerId, f64)> = VecDeque::new();
        let mut picks = Vec::with_capacity(rounds);
        let admit = |_: ServerId| true;
        let mut round_trip =
            |now: f64, id: u64, round: usize, router: &mut AgentRouter| -> ServerId {
                let when = SimTime::from_secs(now);
                let task = TaskInstance::new(
                    TaskId(id),
                    ProblemId((round % costs.n_problems()) as u32),
                    when,
                );
                let pick = router
                    .decide(
                        DecisionInputs {
                            now: when,
                            task,
                            costs,
                            reports: &reports,
                            server_mem: &server_mem,
                            admit: &admit,
                        },
                        heuristic.as_mut(),
                        &mut tie_rng,
                    )
                    .expect("synthetic tables are fully solvable");
                let work = costs
                    .unloaded_duration(task.problem, pick)
                    .expect("picked implies solvable");
                router.on_commit(when, pick, &task, work);
                inflight.push_back((task.id, pick, work));
                if inflight.len() > 64 {
                    let (done, server, w) = inflight.pop_front().expect("window is full");
                    router.on_complete(when, server, done, w, now, now * 0.95);
                }
                pick
            };
        for warm in 0..4 {
            now += 0.01;
            round_trip(now, id, warm, &mut router);
            id += 1;
        }
        let start = Instant::now();
        for round in 0..rounds {
            now += 0.01;
            picks.push(round_trip(now, id, round, &mut router));
            id += 1;
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        (us, picks)
    };

    let reps = 5;
    let (mut baseline, mut current) = (Vec::new(), Vec::new());
    let mut decisions_equal = true;
    for _ in 0..reps {
        let (us_b, picks_b) = run(true);
        baseline.push(us_b);
        let (us_c, picks_c) = run(false);
        current.push(us_c);
        // Deterministic: every rep replays the same decisions, and the
        // two arms must pick identical servers round for round.
        decisions_equal &= picks_b == picks_c;
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    (median(&mut baseline), median(&mut current), decisions_equal)
}

/// Decision-loop microbench: the stage-1 layer's steady-state loop in
/// isolation — one k-best walk plus the commit/complete re-rank hooks
/// per round against a standing load — flat ladder versus the BTree
/// executable spec on identical index state. This is the layer the flat
/// rankings rewrite targets, so the ≥1.3× constant-factor claim is
/// gated here (the full pipeline above it is dominated by stage-2 HTM
/// drains — see the `profile` section — and is gated on record equality
/// plus no-regression instead, the same layer-isolation precedent as
/// the exhaustive-vs-topk decision gate). Returns (btree µs/round, flat
/// µs/round).
fn decision_loop_microbench(costs: &CostTable, k: usize, rounds: usize) -> (f64, f64) {
    let n_servers = costs.n_servers();
    let run = |backend: RankingsBackend| -> f64 {
        let mut index = StaticIndex::new(costs);
        index.set_backend(backend);
        // Standing load on every odd server, so ranks are non-trivial.
        for s in (0..n_servers as u32).filter(|s| s % 2 == 1) {
            let w = costs
                .unloaded_duration(ProblemId(0), ServerId(s))
                .expect("synthetic tables are fully solvable");
            index.on_commit(ServerId(s), w);
        }
        let admit = |_: ServerId| true;
        let mut scored = Vec::new();
        let mut inflight: VecDeque<(ServerId, f64)> = VecDeque::new();
        let mut round_trip = |index: &mut StaticIndex, round: usize| {
            let p = ProblemId((round % costs.n_problems()) as u32);
            index.k_best(p, k, &admit, &mut scored);
            let (winner, _) = scored[0];
            let w = costs
                .unloaded_duration(p, winner)
                .expect("shortlisted implies solvable");
            index.on_commit(winner, w);
            inflight.push_back((winner, w));
            if inflight.len() > 64 {
                let (s, w) = inflight.pop_front().expect("window is full");
                index.on_complete(s, w);
            }
        };
        for r in 0..200 {
            round_trip(&mut index, r);
        }
        let start = Instant::now();
        for r in 0..rounds {
            round_trip(&mut index, r);
        }
        start.elapsed().as_secs_f64() * 1e6 / rounds as f64
    };
    let reps = 5;
    let (mut btree, mut flat) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        btree.push(run(RankingsBackend::Btree));
        flat.push(run(RankingsBackend::Flat));
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    (median(&mut btree), median(&mut flat))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let n_servers = env_or("SCALE_SMOKE_SERVERS", 1000.0) as usize;
    let n_tasks = env_or("SCALE_SMOKE_TASKS", 100_000.0) as usize;
    let budget_secs = env_or("SCALE_SMOKE_BUDGET_SECS", 600.0);
    let compare_tasks = env_or("SCALE_SMOKE_COMPARE_TASKS", n_tasks.min(100_000) as f64) as usize;
    let decision_gate = env_or("SCALE_DECISION_GATE", 5.0);
    let delta_gate = env_or("SCALE_COMPLETION_DELTA_GATE", 0.01);
    let skyline_gate = env_or("SKYLINE_DECISION_GATE", 1.5);
    let selector_spec =
        std::env::var("SCALE_SMOKE_SELECTOR").unwrap_or_else(|_| "adaptive:8:64".to_string());
    let selector = SelectorKind::parse(&selector_spec)
        .unwrap_or_else(|| panic!("bad SCALE_SMOKE_SELECTOR {selector_spec}"));
    let shards_spec = std::env::var("SCALE_SMOKE_SHARDS").unwrap_or_else(|_| "auto".to_string());
    let sharding = Sharding::parse(&shards_spec)
        .unwrap_or_else(|| panic!("bad SCALE_SMOKE_SHARDS {shards_spec} (N|auto)"));
    let shard_bench_servers = env_or("SHARD_BENCH_SERVERS", 10_000.0) as usize;
    let shard_bench_shards = match env_or("SHARD_BENCH_SHARDS", 0.0) as usize {
        0 => cas_platform::ShardMap::auto_shards(shard_bench_servers),
        s => s,
    };
    // Standing load at the campaign's 0.5 mean utilisation is ~0.5
    // tasks in flight per server; 1 is the conservative round-up.
    let shard_bench_per_server = env_or("SHARD_BENCH_PER_SERVER", 1.0) as usize;
    let shard_bench_width = env_or("SHARD_BENCH_WIDTH", 8.0) as usize;
    let shard_bench_rounds = env_or("SHARD_BENCH_ROUNDS", 400.0) as usize;
    let shard_gate = env_or("SHARD_DECISION_GATE", 3.0);
    // The group-walk microbench runs at the auto-shard cap by default:
    // the flat-vs-tree contrast is the per-decision walk bookkeeping,
    // and 1024 shards is the walk shape the auto policy hands a
    // million-server federation (hosted here on the 10k bench farm).
    let tree_shards = env_or("SHARD_TREE_SHARDS", 1024.0) as usize;
    let tree_group = env_or(
        "SHARD_TREE_GROUP",
        cas_platform::ShardTree::DEFAULT_GROUP_SHARDS as f64,
    ) as usize;
    let tree_gate = env_or("SHARD_TREE_GATE", 1.3);
    let hotpath_gate = env_or("HOTPATH_GATE", 1.3);
    // Stage-2 drain-engine gate: the isolated `stage2_predict` phase of
    // the fast engine versus the full executable-spec replay. 1.5× is
    // the local floor; CI overrides to 1.2× for noisy shared runners.
    let stage2_gate = env_or("STAGE2_GATE", 1.5);
    let profile_overhead_gate = env_or("SCALE_PROFILE_OVERHEAD_GATE", 0.02);
    // Queue-pressure ceiling: the pre-generated arrivals dominate the
    // pending set (~n_tasks), periodic per-server reports add ~n_servers
    // in the unsharded arm; the default leaves modest headroom beyond
    // that so a leak of retained events fails loudly.
    let peak_pending_gate = env_or(
        "SCALE_PEAK_PENDING_GATE",
        (n_tasks + 2 * n_servers + 1024) as f64,
    ) as usize;

    // The always-on profiler covers the whole binary: every campaign and
    // microbench below accumulates into the same thread-local phase
    // counters, so the churn arm keeps the `churn` phase live and the
    // overhead estimate is measured against total wall time.
    prof::reset();
    let prof_start = Instant::now();

    let platform = SyntheticPlatform {
        n_servers,
        heterogeneity: 4.0,
        n_problems: 3,
        base_cost: 15.0,
        cost_spread: 3.0,
        comm_fraction: 0.02,
        mem_fraction: 0.0,
    };
    let seed = 0x5CA1E;
    let servers = platform.servers(seed);
    let costs = platform.cost_table(seed);

    // Aggregate service rate: one task at a time per server at its mean
    // unloaded duration. The burst process runs at 50 % of it on average
    // and ~80 % at crests, so the system is loaded but stable.
    let total_rate: f64 = (0..n_servers)
        .map(|s| {
            let mean_cost: f64 = (0..platform.n_problems)
                .map(|p| {
                    costs
                        .costs(ProblemId(p as u32), ServerId(s as u32))
                        .expect("synthetic tables are fully solvable")
                        .total()
                })
                .sum::<f64>()
                / platform.n_problems as f64;
            1.0 / mean_cost
        })
        .sum();
    let mean_rate = 0.5 * total_rate;
    let burstiness = 4.0; // peak/trough ratio
    let base_rate = 2.0 * mean_rate / (1.0 + burstiness);
    let arrivals = BurstArrivals {
        n_tasks,
        base_rate,
        peak_rate: burstiness * base_rate,
        period: 1800.0,
        n_problems: platform.n_problems,
    };

    let build_start = Instant::now();
    let tasks = arrivals.generate(seed);
    let horizon = tasks.last().expect("non-empty campaign").arrival.as_secs();
    let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, seed);
    cfg.load_report_period = 30.0;
    cfg.selector = selector;
    let build_secs = build_start.elapsed().as_secs_f64();

    // 1. Headline campaign, pruned decision path.
    let headline = run_campaign(cfg, costs.clone(), servers.clone(), tasks.clone());
    let metrics = headline.metrics;
    let (run_secs, events) = (headline.wall, headline.events);
    let (queue_backend, queue_migrations) = (headline.backend, headline.migrations);
    let completed = metrics.completed;
    eprintln!(
        "{n_servers} servers, {n_tasks} tasks over {horizon:.0} sim-seconds \
         (selector {selector_spec}): {completed} completed"
    );
    eprintln!(
        "build {build_secs:.2} s, run {run_secs:.2} s \
         ({:.0} events/s, {:.0} tasks/s); queue ended on `{queue_backend}` \
         after {queue_migrations} migration(s)",
        events as f64 / run_secs,
        n_tasks as f64 / run_secs
    );

    // 2. Decision-path microbench at full width.
    let (exhaustive_us, topk_us) = decision_microbench(&costs, 16, 48);
    let decision_speedup = exhaustive_us / topk_us;
    eprintln!(
        "decision path at {n_servers} servers x 48 tasks: exhaustive {exhaustive_us:.1} \
         µs/decision, topk:16 {topk_us:.1} µs/decision, speedup {decision_speedup:.1}x \
         (gate >= {decision_gate}x)"
    );

    // 3. Pruning-quality comparison on the burst campaign.
    let compare_arrivals = BurstArrivals {
        n_tasks: compare_tasks,
        ..arrivals
    };
    let compare_workload = compare_arrivals.generate(seed);
    let (pruned_m, pruned_secs) = if compare_tasks == n_tasks {
        (metrics, run_secs)
    } else {
        let run = run_campaign(
            cfg,
            costs.clone(),
            servers.clone(),
            compare_workload.clone(),
        );
        (run.metrics, run.wall)
    };
    let exh = run_campaign(
        cfg.with_selector(SelectorKind::Exhaustive),
        costs.clone(),
        servers.clone(),
        compare_workload.clone(),
    );
    let (exh_m, exh_secs) = (exh.metrics, exh.wall);
    let pruned_rate = pruned_m.completed as f64 / compare_tasks as f64;
    let exh_rate = exh_m.completed as f64 / compare_tasks as f64;
    let completion_delta = (pruned_rate - exh_rate).abs();
    eprintln!(
        "pruning quality over {compare_tasks} tasks: completion {pruned_rate:.4} \
         (pruned, {pruned_secs:.1} s wall) vs {exh_rate:.4} (exhaustive, {exh_secs:.1} s wall), \
         delta {completion_delta:.4} (gate <= {delta_gate}); mean stretch {:.3} vs {:.3}",
        pruned_m.meanstretch, exh_m.meanstretch
    );

    // 3b. Stage-2 drain engine: the comparison campaign rerun in both
    // stage-2 modes. `fast` (the default) answers each what-if with a
    // truncated drain resumed from the per-server baseline-prefix cursor
    // and scatters large batches over the pool; `full` replays the
    // pre-optimisation engine kept as the executable spec. Three gates:
    // records bit-identical (the optimisation may never move a
    // decision), the isolated `stage2_predict` phase ≥ `STAGE2_GATE`×
    // faster, and the drain counters live — a silent fallback to full
    // drains would pass equality while surrendering the speedup.
    //
    // The arm squeezes the comparison arrival pattern to ~`STAGE2_LOAD`
    // mean utilisation (default 0.9; the headline sits at 0.5). At half
    // load most candidate servers are idle at decision time and both
    // engines answer a what-if in O(1), so the differential would mostly
    // measure shared overhead; near saturation the bursty crests run
    // past capacity, queues deepen, and the gate measures drain cost
    // where draining is the work. Deep queues also keep the truncation
    // counter robustly live instead of a near-zero fluke.
    let stage2_load = env_or("SCALE_SMOKE_STAGE2_LOAD", 0.9);
    let squeeze = stage2_load / 0.5;
    let stage2_arrivals = BurstArrivals {
        n_tasks: compare_tasks,
        base_rate: arrivals.base_rate * squeeze,
        peak_rate: arrivals.peak_rate * squeeze,
        ..arrivals
    };
    let stage2_workload = stage2_arrivals.generate(seed);
    let prof_fast0 = prof::snapshot();
    let stage2_fast_run =
        run_campaign(cfg, costs.clone(), servers.clone(), stage2_workload.clone());
    let stage2_fast_ns = prof::snapshot()
        .since(&prof_fast0)
        .nanos_of(prof::Phase::Stage2Predict);
    let prof_full0 = prof::snapshot();
    let stage2_full_run = run_campaign(
        cfg.with_stage2(Stage2Mode::Full),
        costs.clone(),
        servers.clone(),
        stage2_workload,
    );
    let stage2_full_ns = prof::snapshot()
        .since(&prof_full0)
        .nanos_of(prof::Phase::Stage2Predict);
    let stage2_equal = stage2_fast_run.records == stage2_full_run.records;
    let stage2_speedup = stage2_full_ns as f64 / stage2_fast_ns.max(1) as f64;
    let s2 = stage2_fast_run.stage2;
    let ok_stage2_equal = stage2_equal;
    let ok_stage2_speed = stage2_speedup >= stage2_gate;
    let ok_stage2_counters = s2.drains > 0 && s2.truncated > 0 && s2.prefix_hits > 0;
    eprintln!(
        "stage-2 drain engine over {compare_tasks} tasks at {stage2_load:.2} mean load: \
         records equal: {stage2_equal}; \
         stage2_predict {:.2} s fast vs {:.2} s full, speedup {stage2_speedup:.2}x \
         (gate >= {stage2_gate}x); {} drains ({} truncated, {:.1}%), {} memo hits \
         ({:.1}% hit rate), {} prefix-cursor reuses ({:.1}% of drains)",
        stage2_fast_ns as f64 / 1e9,
        stage2_full_ns as f64 / 1e9,
        s2.drains,
        s2.truncated,
        100.0 * s2.truncation_rate(),
        s2.hits,
        100.0 * s2.hit_rate(),
        s2.prefix_hits,
        100.0 * s2.prefix_reuse_rate(),
    );

    // 4. The sharded campaign: same workload through the shard
    // federation in its production configuration — skyline merge on,
    // load reports aggregated per shard; pruning decisions, hooks and
    // model repair all stay O(shard), report kernel events O(S) per
    // period. Gate: the federation may move the completion rate by at
    // most the same delta the pruning gate allows.
    let n_shards = sharding.resolve(n_servers).unwrap_or(1);
    let cfg_sharded = cfg.with_shards(sharding).with_aggregated_reports(true);
    let sharded = run_campaign(cfg_sharded, costs.clone(), servers.clone(), tasks.clone());
    let (sharded_m, sharded_secs) = (sharded.metrics, sharded.wall);
    let sharded_rate = sharded_m.completed as f64 / n_tasks as f64;
    let headline_rate = completed as f64 / n_tasks as f64;
    let shard_delta = (sharded_rate - headline_rate).abs();
    let campaign_skip_rate = sharded.skyline.skip_rate();
    eprintln!(
        "sharded campaign ({n_shards} shards): {} / {n_tasks} completed in {sharded_secs:.1} s \
         wall (unsharded {run_secs:.1} s), completion delta {shard_delta:.4} \
         (gate <= {delta_gate}), mean stretch {:.3} vs {:.3}",
        sharded_m.completed, sharded_m.meanstretch, metrics.meanstretch
    );
    eprintln!(
        "  skyline: skipped {:.1}% of shard walks ({} skips / {} decisions); \
         report kernel events {} (aggregated per shard) vs {} (per server, unsharded arm); \
         peak pending events {} vs {}",
        100.0 * campaign_skip_rate,
        sharded.skyline.shard_skips,
        sharded.skyline.decisions,
        sharded.report_events,
        headline.report_events,
        sharded.peak_pending,
        headline.peak_pending,
    );

    // 4b. Skyline-on/off whole-run equality at the comparison size: the
    // lazy merge must not move a single record. The delta gate here is
    // exact (= 0) — pruning the walk may never prune the semantics.
    let sky_on = run_campaign(
        cfg_sharded,
        costs.clone(),
        servers.clone(),
        compare_workload.clone(),
    );
    let sky_off = run_campaign(
        cfg_sharded.with_skyline(false),
        costs.clone(),
        servers.clone(),
        compare_workload,
    );
    let skyline_equal = sky_on.records == sky_off.records;
    let skyline_delta = ((sky_on.metrics.completed as f64 - sky_off.metrics.completed as f64)
        / compare_tasks as f64)
        .abs();
    eprintln!(
        "skyline equivalence over {compare_tasks} tasks ({n_shards} shards): records equal: \
         {skyline_equal}, completion delta {skyline_delta} (gate = 0 exactly), \
         {:.1} s wall skyline-on vs {:.1} s skyline-off, skipped-shard-rate {:.3}",
        sky_on.wall,
        sky_off.wall,
        sky_on.skyline.skip_rate(),
    );

    // 4c. Group-walk whole-run equality: the two-level tree rerun of the
    // comparison campaign (`auto:1` — every shard its own group, so the
    // group walk drives every decision) must be record-identical to the
    // flat lazy walk at the same shard count. Exact gate, like 4b: the
    // tree may only prune walks, never decisions.
    let cfg_flat_auto = cfg
        .with_shards(Sharding::AUTO)
        .with_aggregated_reports(true);
    let flat_auto = if sharding == Sharding::AUTO {
        None // `sky_on` already ran exactly this configuration.
    } else {
        Some(run_campaign(
            cfg_flat_auto,
            costs.clone(),
            servers.clone(),
            compare_arrivals.generate(seed),
        ))
    };
    let flat_ref = flat_auto.as_ref().unwrap_or(&sky_on);
    let grouped = run_campaign(
        cfg.with_shards(Sharding::Auto {
            group_size: Some(1),
        })
        .with_aggregated_reports(true),
        costs.clone(),
        servers.clone(),
        compare_arrivals.generate(seed),
    );
    let auto_shards_n = Sharding::AUTO.resolve(n_servers).unwrap_or(1);
    let tree_equal = grouped.records == flat_ref.records;
    let tree_active = auto_shards_n > 1;
    let ok_tree_equal = tree_equal && (!tree_active || grouped.skyline.group_visits > 0);
    eprintln!(
        "group-walk equivalence over {compare_tasks} tasks (auto:1 => {auto_shards_n} singleton \
         groups): records equal: {tree_equal}, {:.1} s wall grouped vs {:.1} s flat; \
         group walks skipped {:.1}% ({} skips / {} visits), \
         shard walks inside visited groups skipped {:.1}%",
        grouped.wall,
        flat_ref.wall,
        100.0 * grouped.skyline.group_skip_rate(),
        grouped.skyline.group_skips,
        grouped.skyline.group_visits,
        100.0 * grouped.skyline.skip_rate(),
    );

    // 5. Decision-pipeline microbench at production width: the full
    // two-stage decision + commit + complete hooks through the real
    // router, unsharded vs federated, at `SHARD_BENCH_SERVERS` servers.
    let shard_platform = SyntheticPlatform {
        n_servers: shard_bench_servers,
        ..platform
    };
    let shard_costs = shard_platform.cost_table(seed);
    let shard_specs = shard_platform.servers(seed);
    let (legacy_us, unsharded_us, sharded_eager_us, sharded_us, bench_skip_rate) =
        sharding_microbench(
            &shard_costs,
            &shard_specs,
            shard_bench_shards,
            shard_bench_per_server,
            shard_bench_width,
            shard_bench_rounds,
        );
    let shard_speedup = legacy_us / sharded_us;
    let shard_speedup_cached = unsharded_us / sharded_us;
    let skyline_speedup = sharded_eager_us / sharded_us;
    eprintln!(
        "decision pipeline at {shard_bench_servers} servers x {shard_bench_per_server} tasks, \
         width {shard_bench_width}: pre-federation engine {legacy_us:.1} µs/task, \
         unsharded (mem scan hoisted) {unsharded_us:.1} µs/task, \
         {shard_bench_shards} shards eager merge {sharded_eager_us:.1} µs/task, \
         skyline merge {sharded_us:.1} µs/task; speedup {shard_speedup:.2}x \
         vs pre-federation (gate >= {shard_gate}x), {shard_speedup_cached:.2}x vs hoisted \
         unsharded, {skyline_speedup:.2}x vs eager merge (gate >= {skyline_gate}x, \
         skipped-shard-rate {bench_skip_rate:.3})"
    );

    // 5b. Group-walk microbench: flat versus two-level skyline walk at
    // `SHARD_TREE_SHARDS` shards (default: the 1024 auto cap) over the
    // same bench farm. Both arms visit the identical shard set and run
    // identical stage-2 batches — the contrast is the walk bookkeeping
    // the tree exists to collapse.
    let tree_groups = tree_shards.div_ceil(tree_group);
    let (flat_walk_us, tree_walk_us, tree_stats) = tree_walk_microbench(
        &shard_costs,
        &shard_specs,
        tree_shards,
        tree_group,
        shard_bench_per_server,
        shard_bench_width,
        shard_bench_rounds,
    );
    let tree_speedup = flat_walk_us / tree_walk_us;
    let ok_tree_decision =
        tree_speedup >= tree_gate && tree_stats.group_skips > 0 && tree_stats.shard_skips > 0;
    eprintln!(
        "group walk at {shard_bench_servers} servers, {tree_shards} shards in {tree_groups} \
         groups of {tree_group}: flat walk {flat_walk_us:.1} µs/task, tree walk \
         {tree_walk_us:.1} µs/task, speedup {tree_speedup:.2}x (gate >= {tree_gate}x); \
         groups skipped {:.1}% ({} / {} considered), member shards skipped {:.1}%",
        100.0 * tree_stats.group_skip_rate(),
        tree_stats.group_skips,
        tree_stats.group_visits + tree_stats.group_skips,
        100.0 * tree_stats.skip_rate(),
    );

    // 5c. Hot-path microbenches, two layers. The decision loop —
    // stage-1 k-best walk + commit/complete re-rank hooks in isolation
    // at the bench farm's full width — carries the ≥1.3× flat-vs-btree
    // constant-factor gate (layer isolation, the exhaustive-vs-topk
    // precedent). The full pipeline — current path (flat rankings,
    // direct zero-allocation stage 2) against the previous PR's path
    // replayed through its executable-spec knobs (BTree rankings, batch
    // `predict_all` stage 2) — is dominated by stage-2 HTM drains (see
    // the profile section), so it gates on bit-identical decisions plus
    // no-regression instead.
    let hotpath_loop_rounds = env_or("HOTPATH_LOOP_ROUNDS", 20_000.0) as usize;
    let hotpath_pipeline_tolerance = env_or("HOTPATH_PIPELINE_TOLERANCE", 1.05);
    let (loop_btree_us, loop_flat_us) =
        decision_loop_microbench(&shard_costs, shard_bench_width, hotpath_loop_rounds);
    let loop_speedup = loop_btree_us / loop_flat_us;
    let (hotpath_baseline_us, hotpath_us, hotpath_equal) = hotpath_microbench(
        &shard_costs,
        &shard_specs,
        shard_bench_shards,
        shard_bench_per_server,
        shard_bench_width,
        shard_bench_rounds,
    );
    let hotpath_speedup = hotpath_baseline_us / hotpath_us;
    let ok_hotpath = loop_speedup >= hotpath_gate
        && hotpath_equal
        && hotpath_us <= hotpath_baseline_us * hotpath_pipeline_tolerance;
    eprintln!(
        "hot path at {shard_bench_servers} servers: decision loop (stage-1 walk + re-rank, \
         width {shard_bench_width}) btree {loop_btree_us:.3} µs/round, flat ladder \
         {loop_flat_us:.3} µs/round, speedup {loop_speedup:.2}x (gate >= {hotpath_gate}x); \
         full pipeline over {shard_bench_shards} shards: previous-PR replay (btree rankings, \
         batch stage 2) {hotpath_baseline_us:.2} µs/task, current (flat rankings, direct \
         stage 2) {hotpath_us:.2} µs/task, speedup {hotpath_speedup:.2}x (gates: decisions \
         equal: {hotpath_equal}, no-regression <= {hotpath_pipeline_tolerance}x)"
    );

    // 6. The living-farm gate: the sharded campaign rerun under a fault
    // schedule whose MTBF is far below the campaign length, so every
    // server crashes several times. The gate is **accounting**, not
    // completion: every task must end terminal — completed, or dropped
    // with a reason code once its re-dispatch budget (or last live
    // solver) is gone. Nothing may be lost in flight.
    let churn_mtbf = env_or("SCALE_CHURN_MTBF", 400.0);
    let churn_mttr = env_or("SCALE_CHURN_MTTR", 60.0);
    let churn_seed = env_or("SCALE_CHURN_SEED", 7.0) as u64;
    let cfg_churn = cfg_sharded
        .with_churn(churn_mtbf, churn_mttr)
        .with_churn_seed(churn_seed);
    let churned = run_campaign(cfg_churn, costs.clone(), servers.clone(), tasks.clone());
    let churn_stats = churned.churn;
    let (mut churn_completed, mut churn_budget_drops, mut churn_solver_drops, mut churn_other) =
        (0u64, 0u64, 0u64, 0u64);
    for r in &churned.records {
        match r.outcome {
            cas_metrics::TaskOutcome::Completed { .. } => churn_completed += 1,
            cas_metrics::TaskOutcome::Dropped { reason } => match reason.code() {
                "redispatch_budget" => churn_budget_drops += 1,
                "no_live_solver" => churn_solver_drops += 1,
                _ => churn_other += 1,
            },
            _ => churn_other += 1,
        }
    }
    let churn_rate = churn_completed as f64 / n_tasks as f64;
    let mut churn_stretches: Vec<f64> =
        churned.records.iter().filter_map(|r| r.stretch()).collect();
    churn_stretches.sort_unstable_by(|a, b| a.partial_cmp(b).expect("stretches are finite"));
    let churn_p99 = churn_stretches
        .get(((churn_stretches.len() as f64 * 0.99).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(f64::NAN);
    let ok_churn = churn_other == 0
        && churn_completed + churn_budget_drops + churn_solver_drops == n_tasks as u64
        && churn_stats.crashes > 0
        && churned.wall <= budget_secs;
    eprintln!(
        "churn campaign (mtbf {churn_mtbf:.0} s, mttr {churn_mttr:.0} s, seed {churn_seed}): \
         {churn_completed} completed + {churn_budget_drops} dropped (budget) + \
         {churn_solver_drops} dropped (no live solver) of {n_tasks} in {:.1} s wall; \
         {} crashes, {} retractions, {} re-dispatches, {} rebalances (pass: {ok_churn})",
        churned.wall,
        churn_stats.crashes,
        churn_stats.retractions,
        churn_stats.redispatches,
        churn_stats.rebalances,
    );

    // 7. The trace gate: a fitted three-app trace — steady background,
    // a crest class submitting faster than the admission gate drains,
    // and a sparse long-job class — replayed on its own compiled farm
    // (a trace binds its farm; the campaign platform stays untouched).
    // Four gates: the *uncontended* gate must be bit-invisible, the
    // contended replay must be deterministic and shard-invariant, every
    // task must end terminal with the admission counters balancing the
    // record-level sheds exactly, and the backpressure counters must be
    // live (something buffered, something shed) under the crest.
    let trace_seed = env_or("SCALE_TRACE_SEED", 24301.0) as u64;
    let trace_spec = FittedTraceSpec {
        apps: vec![
            AppProfile {
                user: 0,
                n_tasks: 300,
                mean_gap_s: 8.0,
                mean_duration_s: 10.0,
            },
            AppProfile {
                user: 1,
                n_tasks: 600,
                mean_gap_s: 0.8,
                mean_duration_s: 10.0,
            },
            AppProfile {
                user: 2,
                n_tasks: 50,
                mean_gap_s: 50.0,
                mean_duration_s: 30.0,
            },
        ],
    };
    let mut trace_src = trace_spec.generate(trace_seed);
    let tc = TraceWorkload {
        n_servers: 8,
        ..TraceWorkload::default()
    }
    .compile(&mut trace_src, trace_seed)
    .expect("fitted trace is non-empty");
    let trace_n = tc.tasks.len();
    let trace_cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, trace_seed);
    let trace_run = |cfg: ExperimentConfig| {
        run_experiment_with_users(
            cfg,
            tc.costs.clone(),
            tc.servers.clone(),
            tc.tasks.clone(),
            tc.users.clone(),
        )
    };
    let trace_plain = run_experiment(
        trace_cfg,
        tc.costs.clone(),
        tc.servers.clone(),
        tc.tasks.clone(),
    );
    let (trace_unc, trace_unc_stats, _) = trace_run(trace_cfg.with_admission(trace_n + 1, 1, 1.0));
    let trace_invisible = trace_plain == trace_unc && trace_unc_stats.buffered == 0;
    // 6 concurrent admissions at ~10 s mean demand drain ~0.6 tasks/s
    // against a crest of ~1.25/s: the gate must buffer and shed.
    let trace_adm = trace_cfg.with_admission(6, 24, 45.0);
    let trace_start = Instant::now();
    let (trace_recs, trace_stats, trace_waits) = trace_run(trace_adm);
    let trace_wall = trace_start.elapsed().as_secs_f64();
    let trace_rerun = trace_run(trace_adm);
    let trace_deterministic =
        trace_recs == trace_rerun.0 && trace_stats == trace_rerun.1 && trace_waits == trace_rerun.2;
    let trace_sharded_run = trace_run(trace_adm.with_shards(Sharding::Federated { shards: 4 }));
    let trace_shard_equal = trace_recs == trace_sharded_run.0 && trace_stats == trace_sharded_run.1;
    let (mut trace_completed, mut trace_adm_sheds, mut trace_other_drops, mut trace_nonterminal) =
        (0u64, 0u64, 0u64, 0u64);
    for r in &trace_recs {
        match r.outcome {
            cas_metrics::TaskOutcome::Completed { .. } => trace_completed += 1,
            cas_metrics::TaskOutcome::Failed => trace_other_drops += 1,
            cas_metrics::TaskOutcome::Dropped { reason } => {
                if reason.code() == "admission_deadline" {
                    trace_adm_sheds += 1;
                } else {
                    trace_other_drops += 1;
                }
            }
            cas_metrics::TaskOutcome::InFlight => trace_nonterminal += 1,
        }
    }
    let trace_terminal = trace_nonterminal == 0
        && trace_completed + trace_adm_sheds + trace_other_drops == trace_n as u64;
    let trace_counters_live = trace_stats.peak_buffered > 0
        && trace_stats.shed_deadline + trace_stats.shed_overflow > 0
        && trace_stats.buffered == trace_stats.dequeued + trace_stats.shed_deadline
        && trace_adm_sheds == trace_stats.shed_deadline + trace_stats.shed_overflow;
    let ok_trace = trace_invisible
        && trace_deterministic
        && trace_shard_equal
        && trace_terminal
        && trace_counters_live;
    let trace_slo = cas_metrics::per_class_slo(&trace_recs, &tc.users, &trace_waits);
    eprintln!(
        "trace campaign ({trace_n} tasks, 3 classes, admission 6:24:45, seed {trace_seed}): \
         {trace_completed} completed + {trace_adm_sheds} shed (admission) + {trace_other_drops} \
         other drops in {trace_wall:.2} s wall; peak admitted {} / buffered {}; invisible \
         uncontended: {trace_invisible}, deterministic: {trace_deterministic}, sharded == \
         single: {trace_shard_equal} (pass: {ok_trace})",
        trace_stats.peak_admitted, trace_stats.peak_buffered,
    );
    for c in &trace_slo {
        eprintln!(
            "  user {}: {} tasks, {} completed, drop {:.1} %, p50 stretch {:.2}, p99 stretch \
             {:.2}, mean buffered {:.2} s",
            c.user,
            c.tasks,
            c.completed,
            c.drop_rate_pct,
            c.p50_stretch.unwrap_or(f64::NAN),
            c.p99_stretch.unwrap_or(f64::NAN),
            c.mean_buffered_s,
        );
    }

    // The profile snapshot closes over every arm above; the overhead
    // estimate (calibrated span cost × spans closed) must stay within
    // `profile_overhead_gate` of total wall, and every phase must have
    // closed at least one span — a dead phase means an instrumentation
    // hole.
    let prof_wall = prof_start.elapsed().as_secs_f64();
    let prof_totals = prof::snapshot();
    let (profile_json, ok_profile) =
        prof::render_profile_json(&prof_totals, prof_wall, profile_overhead_gate);
    eprint!(
        "phase profile over {prof_wall:.1} s wall (pass: {ok_profile}):\n{}",
        prof::render_profile_table(&prof_totals, prof_wall)
    );

    let peak_pending_max = headline
        .peak_pending
        .max(sharded.peak_pending)
        .max(churned.peak_pending);
    let ok_peak_pending = peak_pending_max <= peak_pending_gate;
    eprintln!(
        "peak pending kernel events: headline {}, sharded {}, churn {} (gate <= \
         {peak_pending_gate}, pass: {ok_peak_pending})",
        headline.peak_pending, sharded.peak_pending, churned.peak_pending
    );

    let ok_campaign = run_secs <= budget_secs && completed == n_tasks;
    let ok_decision = decision_speedup >= decision_gate;
    let ok_delta = completion_delta <= delta_gate;
    let ok_shard_delta = shard_delta <= delta_gate && sharded_m.completed == n_tasks;
    let ok_shard_decision = shard_speedup >= shard_gate;
    let ok_skyline_equal = skyline_equal && skyline_delta == 0.0;
    let ok_skyline_decision = skyline_speedup >= skyline_gate && bench_skip_rate > 0.0;
    let ok = ok_campaign
        && ok_decision
        && ok_delta
        && ok_shard_delta
        && ok_shard_decision
        && ok_skyline_equal
        && ok_skyline_decision
        && ok_tree_equal
        && ok_tree_decision
        && ok_churn
        && ok_trace
        && ok_hotpath
        && ok_stage2_equal
        && ok_stage2_speed
        && ok_stage2_counters
        && ok_profile
        && ok_peak_pending;

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"scale_smoke\",\n  \"scenario\": \"{n_servers}-server burst campaign \
         (IPPP thinning arrivals, HMCT, adaptive event queue, incremental HTM repair, \
         two-stage candidate pipeline)\",\n\
  \"n_servers\": {n_servers},\n  \"n_tasks\": {n_tasks},\n  \"selector\": \"{selector_spec}\",\n\
  \"arrivals\": {{\"base_rate_per_s\": {base_rate:.4}, \"peak_rate_per_s\": {:.4}, \
         \"period_s\": 1800.0, \"mean_utilisation\": 0.5}},\n\
  \"sim_horizon_s\": {horizon:.1},\n  \"events_processed\": {events},\n\
  \"wall_build_s\": {build_secs:.3},\n  \"wall_run_s\": {run_secs:.3},\n\
  \"events_per_wall_s\": {:.0},\n  \"tasks_per_wall_s\": {:.0},\n\
  \"queue_backend_final\": \"{queue_backend}\",\n  \"queue_migrations\": {queue_migrations},\n\
  \"completed\": {completed},\n  \"mean_stretch\": {:.3},\n",
        burstiness * base_rate,
        events as f64 / run_secs,
        n_tasks as f64 / run_secs,
        metrics.meanstretch,
    );
    let _ = write!(
        json,
        "  \"decision_cost\": {{\n    \"unit\": \"microseconds per scheduling decision (HMCT \
         argmin, one commit per round)\",\n    \"servers\": {n_servers},\n    \
         \"per_server_tasks\": 48,\n    \"exhaustive_us_per_decision\": {exhaustive_us:.2},\n    \
         \"topk16_us_per_decision\": {topk_us:.2},\n    \"speedup\": {decision_speedup:.2},\n    \
         \"acceptance\": {{\"required_min_speedup\": {decision_gate}, \"pass\": {ok_decision}}}\n  }},\n"
    );
    let _ = write!(
        json,
        "  \"pruning_quality\": {{\n    \"compare_tasks\": {compare_tasks},\n    \
         \"pruned_completion_rate\": {pruned_rate:.6},\n    \
         \"exhaustive_completion_rate\": {exh_rate:.6},\n    \
         \"completion_delta\": {completion_delta:.6},\n    \
         \"pruned_mean_stretch\": {:.4},\n    \"exhaustive_mean_stretch\": {:.4},\n    \
         \"pruned_wall_s\": {pruned_secs:.3},\n    \"exhaustive_wall_s\": {exh_secs:.3},\n    \
         \"acceptance\": {{\"max_completion_delta\": {delta_gate}, \"pass\": {ok_delta}}}\n  }},\n",
        pruned_m.meanstretch, exh_m.meanstretch
    );
    let _ = write!(
        json,
        "  \"sharding\": {{\n    \"campaign\": {{\n      \"shards\": {n_shards},\n      \
         \"completed\": {},\n      \"wall_run_s\": {sharded_secs:.3},\n      \
         \"unsharded_wall_run_s\": {run_secs:.3},\n      \"mean_stretch\": {:.4},\n      \
         \"completion_delta_vs_unsharded\": {shard_delta:.6},\n      \
         \"skipped_shard_rate\": {campaign_skip_rate:.4},\n      \
         \"group_visits\": {},\n      \"group_skips\": {},\n      \
         \"group_skip_rate\": {:.4},\n      \
         \"acceptance\": {{\"max_completion_delta\": {delta_gate}, \"pass\": {ok_shard_delta}}}\n    }},\n    \
         \"reports\": {{\n      \"aggregated_per_shard\": true,\n      \
         \"report_kernel_events_sharded\": {},\n      \
         \"report_kernel_events_unsharded_per_server\": {},\n      \
         \"peak_pending_events_sharded\": {},\n      \
         \"peak_pending_events_unsharded\": {},\n      \
         \"note\": \"aggregated mode fires one kernel event per shard per period (O(S)) instead \
         of one per server (O(n)); the unsharded headline arm keeps the per-server schedule\"\n    }},\n    \
         \"skyline\": {{\n      \"equivalence\": {{\n        \"tasks\": {compare_tasks},\n        \
         \"records_equal\": {skyline_equal},\n        \
         \"completion_delta\": {skyline_delta:.6},\n        \
         \"wall_on_s\": {:.3},\n        \"wall_off_s\": {:.3},\n        \
         \"skipped_shard_rate\": {:.4},\n        \
         \"acceptance\": {{\"required\": \"records bit-identical, delta exactly 0\", \
         \"pass\": {ok_skyline_equal}}}\n      }},\n      \
         \"decision_path\": {{\n        \"eager_merge_us_per_task\": {sharded_eager_us:.2},\n        \
         \"skyline_merge_us_per_task\": {sharded_us:.2},\n        \
         \"speedup_vs_eager\": {skyline_speedup:.2},\n        \
         \"skipped_shard_rate\": {bench_skip_rate:.4},\n        \
         \"acceptance\": {{\"required_min_speedup\": {skyline_gate}, \
         \"required_skip_rate\": \"> 0\", \"pass\": {ok_skyline_decision}}}\n      }}\n    }},\n    \
         \"decision_path\": {{\n      \"unit\": \"microseconds per task through the full decision \
         pipeline (two-stage decision, commit hook, complete hook; HMCT, TopK width \
         {shard_bench_width})\",\n      \
         \"servers\": {shard_bench_servers},\n      \"shards\": {shard_bench_shards},\n      \
         \"per_server_tasks\": {shard_bench_per_server},\n      \
         \"pre_federation_us_per_task\": {legacy_us:.2},\n      \
         \"unsharded_us_per_task\": {unsharded_us:.2},\n      \
         \"sharded_eager_us_per_task\": {sharded_eager_us:.2},\n      \
         \"sharded_us_per_task\": {sharded_us:.2},\n      \
         \"speedup_vs_pre_federation\": {shard_speedup:.2},\n      \
         \"speedup_vs_unsharded\": {shard_speedup_cached:.2},\n      \
         \"note\": \"pre_federation replays the engine as it stood before the federation \
         (per-decision O(n) platform scan, BTree rankings, batched stage 2), the predecessor \
         baseline this section gates against — the same convention decision_cost uses with the \
         exhaustive loop; unsharded_us_per_task is the current single-agent path with the scan \
         hoisted; sharded_us_per_task is the production skyline \
         merge (sharded_eager_us_per_task replays the eager full scatter)\",\n      \
         \"acceptance\": {{\"required_min_speedup\": {shard_gate}, \"pass\": {ok_shard_decision}}}\n    }},\n",
        sharded_m.completed,
        sharded_m.meanstretch,
        sharded.skyline.group_visits,
        sharded.skyline.group_skips,
        sharded.skyline.group_skip_rate(),
        sharded.report_events,
        headline.report_events,
        sharded.peak_pending,
        headline.peak_pending,
        sky_on.wall,
        sky_off.wall,
        sky_on.skyline.skip_rate(),
    );
    let _ = write!(
        json,
        "    \"tree\": {{\n      \"equivalence\": {{\n        \"tasks\": {compare_tasks},\n        \
         \"auto_shards\": {auto_shards_n},\n        \"group_size\": 1,\n        \
         \"records_equal\": {tree_equal},\n        \
         \"wall_grouped_s\": {:.3},\n        \"wall_flat_s\": {:.3},\n        \
         \"group_visits\": {},\n        \"group_skips\": {},\n        \
         \"group_skip_rate\": {:.4},\n        \"member_shard_skip_rate\": {:.4},\n        \
         \"acceptance\": {{\"required\": \"records bit-identical to the flat walk; group walk \
         live when auto resolves > 1 shard\", \"pass\": {ok_tree_equal}}}\n      }},\n      \
         \"decision_path\": {{\n        \"unit\": \"microseconds per task through the full \
         decision pipeline (two-stage decision, commit hook, complete hook; HMCT, TopK width \
         {shard_bench_width})\",\n        \
         \"servers\": {shard_bench_servers},\n        \"shards\": {tree_shards},\n        \
         \"groups\": {tree_groups},\n        \"group_fanout\": {tree_group},\n        \
         \"flat_walk_us_per_task\": {flat_walk_us:.2},\n        \
         \"tree_walk_us_per_task\": {tree_walk_us:.2},\n        \
         \"speedup_vs_flat\": {tree_speedup:.2},\n        \
         \"group_visits\": {},\n        \"group_skips\": {},\n        \
         \"group_skip_rate\": {:.4},\n        \"member_shard_skip_rate\": {:.4},\n        \
         \"note\": \"SHARD_TREE_SHARDS defaults to the auto-shard cap: the walk shape a \
         million-server federation pays, hosted on the bench farm; both arms visit the same \
         shard set, so the contrast is walk bookkeeping alone\",\n        \
         \"acceptance\": {{\"required_min_speedup\": {tree_gate}, \
         \"required_counters\": \"group and member-shard skips > 0\", \
         \"pass\": {ok_tree_decision}}}\n      }}\n    }}\n  }},\n",
        grouped.wall,
        flat_ref.wall,
        grouped.skyline.group_visits,
        grouped.skyline.group_skips,
        grouped.skyline.group_skip_rate(),
        grouped.skyline.skip_rate(),
        tree_stats.group_visits,
        tree_stats.group_skips,
        tree_stats.group_skip_rate(),
        tree_stats.skip_rate(),
    );
    let _ = write!(
        json,
        "  \"churn\": {{\n    \"scenario\": \"the sharded campaign under a fault schedule: \
         exponential per-server uptime (MTBF far below the campaign length) and repair time; \
         crashed placements are retracted through the HTM/index and re-dispatched with backoff \
         until the budget is spent\",\n    \
         \"mtbf_s\": {churn_mtbf},\n    \"mttr_s\": {churn_mttr},\n    \
         \"churn_seed\": {churn_seed},\n    \"wall_run_s\": {:.3},\n    \
         \"crashes\": {},\n    \"joins\": {},\n    \"leaves\": {},\n    \
         \"retractions\": {},\n    \"redispatches\": {},\n    \"drops\": {},\n    \
         \"rebalances\": {},\n    \"completed\": {churn_completed},\n    \
         \"dropped_redispatch_budget\": {churn_budget_drops},\n    \
         \"dropped_no_live_solver\": {churn_solver_drops},\n    \
         \"completion_rate\": {churn_rate:.6},\n    \"p99_stretch\": {churn_p99:.4},\n    \
         \"acceptance\": {{\"required\": \"every task terminal: completed + dropped (with reason \
         code) == n_tasks, crashes > 0, wall within budget\", \"pass\": {ok_churn}}}\n  }},\n",
        churned.wall,
        churn_stats.crashes,
        churn_stats.joins,
        churn_stats.leaves,
        churn_stats.retractions,
        churn_stats.redispatches,
        churn_stats.drops,
        churn_stats.rebalances,
    );
    let mut trace_slo_json = String::new();
    for (i, c) in trace_slo.iter().enumerate() {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.4}"));
        let _ = write!(
            trace_slo_json,
            "{}{{\"user\": {}, \"tasks\": {}, \"completed\": {}, \"dropped\": {}, \
             \"drop_rate_pct\": {:.2}, \"p50_stretch\": {}, \"p99_stretch\": {}, \
             \"mean_buffered_s\": {:.3}}}",
            if i == 0 { "" } else { ", " },
            c.user,
            c.tasks,
            c.completed,
            c.dropped,
            c.drop_rate_pct,
            opt(c.p50_stretch),
            opt(c.p99_stretch),
            c.mean_buffered_s,
        );
    }
    let _ = write!(
        json,
        "  \"trace\": {{\n    \"scenario\": \"fitted three-app trace (steady background, an \
         over-capacity crest class, a sparse long-job class) compiled to its own farm and \
         replayed through the bounded admission buffer with per-user fair dequeue and \
         admission deadlines\",\n    \
         \"n_tasks\": {trace_n},\n    \"n_servers\": 8,\n    \"trace_seed\": {trace_seed},\n    \
         \"admission\": {{\"capacity\": 6, \"buffer\": 24, \"deadline_s\": 45.0}},\n    \
         \"wall_run_s\": {trace_wall:.3},\n    \
         \"completed\": {trace_completed},\n    \
         \"shed_admission_deadline\": {trace_adm_sheds},\n    \
         \"dropped_other\": {trace_other_drops},\n    \
         \"buffered\": {},\n    \"dequeued\": {},\n    \"shed_deadline\": {},\n    \
         \"shed_overflow\": {},\n    \"reentries\": {},\n    \
         \"peak_admitted\": {},\n    \"peak_buffered\": {},\n    \
         \"per_class_slo\": [{trace_slo_json}],\n    \
         \"uncontended_bit_invisible\": {trace_invisible},\n    \
         \"deterministic_replay\": {trace_deterministic},\n    \
         \"sharded_equals_single\": {trace_shard_equal},\n    \
         \"acceptance\": {{\"required\": \"uncontended gate bit-invisible, replay deterministic \
         and shard-invariant, every task terminal (completed + sheds + drops == n_tasks), \
         buffer and shed counters live and balancing the records exactly\", \
         \"pass\": {ok_trace}}}\n  }},\n",
        trace_stats.buffered,
        trace_stats.dequeued,
        trace_stats.shed_deadline,
        trace_stats.shed_overflow,
        trace_stats.reentries,
        trace_stats.peak_admitted,
        trace_stats.peak_buffered,
    );
    let _ = write!(
        json,
        "  \"hotpath\": {{\n    \
         \"servers\": {shard_bench_servers},\n    \
         \"decision_loop\": {{\n      \
         \"unit\": \"microseconds per round of the stage-1 steady-state loop (k-best walk + \
         commit + complete re-rank hooks, width {shard_bench_width})\",\n      \
         \"btree_us_per_round\": {loop_btree_us:.3},\n      \
         \"flat_us_per_round\": {loop_flat_us:.3},\n      \
         \"speedup\": {loop_speedup:.2}\n    }},\n    \
         \"pipeline\": {{\n      \
         \"unit\": \"microseconds per task through the full decision pipeline (two-stage \
         decision, commit hook, complete hook; HMCT, TopK width {shard_bench_width}, \
         {shard_bench_shards} shards)\",\n      \
         \"baseline_us_per_task\": {hotpath_baseline_us:.2},\n      \
         \"current_us_per_task\": {hotpath_us:.2},\n      \
         \"speedup\": {hotpath_speedup:.2},\n      \
         \"decisions_equal\": {hotpath_equal}\n    }},\n    \
         \"note\": \"the decision loop isolates the layer the flat-ladder rankings rewrite \
         targets and carries the constant-factor gate; the pipeline arm replays the previous \
         PR's decision path through its executable-spec knobs — BTree rankings and the batch \
         predict_all stage 2 — on the same farm, is dominated by stage-2 HTM drains (see the \
         profile section), and gates on bit-identical decisions (differential suites + the \
         in-run pick comparison) plus no-regression\",\n    \
         \"acceptance\": {{\"required_min_decision_loop_speedup\": {hotpath_gate}, \
         \"required_max_pipeline_ratio\": {hotpath_pipeline_tolerance}, \
         \"required\": \"decisions bit-identical across pipeline arms\", \
         \"pass\": {ok_hotpath}}}\n  }},\n"
    );
    let _ = write!(
        json,
        "  \"stage2\": {{\n    \"mode_default\": \"fast\",\n    \
         \"mean_load\": {stage2_load:.2},\n    \
         \"equivalence\": {{\n      \"tasks\": {compare_tasks},\n      \
         \"records_equal\": {stage2_equal},\n      \
         \"wall_fast_s\": {:.3},\n      \"wall_full_s\": {:.3},\n      \
         \"acceptance\": {{\"required\": \"whole-campaign records bit-identical fast vs \
         full\", \"pass\": {ok_stage2_equal}}}\n    }},\n    \
         \"phase\": {{\n      \"unit\": \"seconds of stage2_predict phase time over the \
         squeezed comparison campaign, per mode\",\n      \
         \"fast_stage2_predict_s\": {:.3},\n      \
         \"full_stage2_predict_s\": {:.3},\n      \
         \"speedup\": {stage2_speedup:.2},\n      \
         \"acceptance\": {{\"required_min_speedup\": {stage2_gate}, \
         \"pass\": {ok_stage2_speed}}}\n    }},\n    \
         \"counters\": {{\n      \"drains_run\": {},\n      \"memo_hits\": {},\n      \
         \"memo_hit_rate\": {:.4},\n      \"cross_task_hits\": {},\n      \
         \"truncated\": {},\n      \"truncation_rate\": {:.4},\n      \
         \"prefix_reuses\": {},\n      \"prefix_reuse_rate\": {:.4},\n      \
         \"headline_campaign\": {{\"drains_run\": {}, \"truncated\": {}, \
         \"prefix_reuses\": {}, \"memo_hit_rate\": {:.4}}},\n      \
         \"acceptance\": {{\"required\": \"drains, truncations and prefix reuses all > 0 \
         (the fast engine must actually run, truncate and resume)\", \
         \"pass\": {ok_stage2_counters}}}\n    }},\n    \
         \"note\": \"fast answers each what-if with a truncated drain resumed from the \
         per-server prefix cursor and scatters large batches over the worker pool; full \
         replays the pre-optimisation engine kept as the executable spec — equality gates \
         on whole-campaign records, speedup on the isolated stage2_predict phase\"\n  }},\n",
        stage2_fast_run.wall,
        stage2_full_run.wall,
        stage2_fast_ns as f64 / 1e9,
        stage2_full_ns as f64 / 1e9,
        s2.drains,
        s2.hits,
        s2.hit_rate(),
        s2.cross_task_hits,
        s2.truncated,
        s2.truncation_rate(),
        s2.prefix_hits,
        s2.prefix_reuse_rate(),
        headline.stage2.drains,
        headline.stage2.truncated,
        headline.stage2.prefix_hits,
        headline.stage2.hit_rate(),
    );
    let _ = write!(
        json,
        "  \"peak_pending\": {{\n    \"headline\": {},\n    \"sharded\": {},\n    \
         \"churn\": {},\n    \
         \"acceptance\": {{\"max_peak_pending_events\": {peak_pending_gate}, \
         \"pass\": {ok_peak_pending}}}\n  }},\n",
        headline.peak_pending, sharded.peak_pending, churned.peak_pending,
    );
    let _ = writeln!(json, "  \"profile\": {profile_json},");
    let _ = write!(
        json,
        "  \"acceptance\": {{\"budget_wall_s\": {budget_secs}, \"all_tasks_complete\": {}, \
         \"decision_gate_pass\": {ok_decision}, \"completion_delta_pass\": {ok_delta}, \
         \"shard_delta_pass\": {ok_shard_delta}, \"shard_decision_gate_pass\": {ok_shard_decision}, \
         \"skyline_equivalence_pass\": {ok_skyline_equal}, \
         \"skyline_decision_gate_pass\": {ok_skyline_decision}, \
         \"tree_equivalence_pass\": {ok_tree_equal}, \
         \"tree_decision_gate_pass\": {ok_tree_decision}, \
         \"churn_gate_pass\": {ok_churn}, \
         \"trace_gate_pass\": {ok_trace}, \
         \"hotpath_gate_pass\": {ok_hotpath}, \
         \"stage2_equivalence_pass\": {ok_stage2_equal}, \
         \"stage2_gate_pass\": {ok_stage2_speed}, \
         \"stage2_counters_pass\": {ok_stage2_counters}, \
         \"profile_gate_pass\": {ok_profile}, \
         \"peak_pending_gate_pass\": {ok_peak_pending}, \
         \"pass\": {ok}}}\n}}\n",
        completed == n_tasks,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path} (budget {budget_secs:.0} s, pass: {ok})");
    if !ok {
        std::process::exit(1);
    }
}

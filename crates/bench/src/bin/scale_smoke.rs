//! The standing scale campaign: 1k servers, 100k tasks, bursty arrivals.
//!
//! This is the workload the unified event kernel exists for: enough
//! pending events to push the adaptive queue onto its calendar backend,
//! enough servers to exercise the pool-parallel prediction fan-out, and
//! enough commits to make incremental baseline repair the difference
//! between minutes and hours. The binary runs one HMCT experiment on a
//! synthetic 1k-server platform under an inhomogeneous-Poisson (thinning)
//! arrival process sized to ~50 % of aggregate service capacity at the
//! mean and ~80 % at burst crests, then writes `BENCH_scale.json` (path
//! overridable as argv[1]) with wall-clock, event-throughput and queue
//! figures.
//!
//! Exit is non-zero when the wall-clock budget (`SCALE_SMOKE_BUDGET_SECS`,
//! default 600) is blown or tasks fail — CI runs this under the release
//! profile as the `scale_smoke` job. `SCALE_SMOKE_SERVERS` /
//! `SCALE_SMOKE_TASKS` shrink the campaign for local iteration.

use cas_core::heuristics::HeuristicKind;
use cas_metrics::MetricSet;
use cas_middleware::{ExperimentConfig, GridWorld};
use cas_platform::{ProblemId, ServerId};
use cas_sim::Simulation;
use cas_workload::synthetic::{BurstArrivals, SyntheticPlatform};
use std::time::Instant;

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let n_servers = env_or("SCALE_SMOKE_SERVERS", 1000.0) as usize;
    let n_tasks = env_or("SCALE_SMOKE_TASKS", 100_000.0) as usize;
    let budget_secs = env_or("SCALE_SMOKE_BUDGET_SECS", 600.0);

    let platform = SyntheticPlatform {
        n_servers,
        heterogeneity: 4.0,
        n_problems: 3,
        base_cost: 15.0,
        cost_spread: 3.0,
        comm_fraction: 0.02,
        mem_fraction: 0.0,
    };
    let seed = 0x5CA1E;
    let servers = platform.servers(seed);
    let costs = platform.cost_table(seed);

    // Aggregate service rate: one task at a time per server at its mean
    // unloaded duration. The burst process runs at 50 % of it on average
    // and ~80 % at crests, so the system is loaded but stable.
    let total_rate: f64 = (0..n_servers)
        .map(|s| {
            let mean_cost: f64 = (0..platform.n_problems)
                .map(|p| {
                    costs
                        .costs(ProblemId(p as u32), ServerId(s as u32))
                        .expect("synthetic tables are fully solvable")
                        .total()
                })
                .sum::<f64>()
                / platform.n_problems as f64;
            1.0 / mean_cost
        })
        .sum();
    let mean_rate = 0.5 * total_rate;
    let burstiness = 4.0; // peak/trough ratio
    let base_rate = 2.0 * mean_rate / (1.0 + burstiness);
    let arrivals = BurstArrivals {
        n_tasks,
        base_rate,
        peak_rate: burstiness * base_rate,
        period: 1800.0,
        n_problems: platform.n_problems,
    };

    let build_start = Instant::now();
    let tasks = arrivals.generate(seed);
    let horizon = tasks.last().expect("non-empty campaign").arrival.as_secs();
    let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, seed);
    cfg.load_report_period = 30.0;
    let world = GridWorld::new(cfg, costs, servers, tasks);
    let mut sim = Simulation::new(world);
    let build_secs = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    let outcome = sim.run_to_completion();
    let run_secs = run_start.elapsed().as_secs_f64();

    let events = sim.processed();
    let queue_backend = sim.queue().backend_name();
    let queue_migrations = sim.queue().migrations();
    let world = sim.into_world();
    let metrics = MetricSet::compute(world.records());
    let completed = metrics.completed;
    let ok = run_secs <= budget_secs && completed == n_tasks;

    eprintln!(
        "{n_servers} servers, {n_tasks} tasks over {horizon:.0} sim-seconds: \
         outcome {outcome:?}, {completed} completed"
    );
    eprintln!(
        "build {build_secs:.2} s, run {run_secs:.2} s \
         ({:.0} events/s, {:.0} tasks/s); queue ended on `{queue_backend}` \
         after {queue_migrations} migration(s)",
        events as f64 / run_secs,
        n_tasks as f64 / run_secs
    );

    let json = format!(
        "{{\n  \"bench\": \"scale_smoke\",\n  \"scenario\": \"1k-server burst campaign \
         (IPPP thinning arrivals, HMCT, adaptive event queue, incremental HTM repair)\",\n\
  \"n_servers\": {n_servers},\n  \"n_tasks\": {n_tasks},\n\
  \"arrivals\": {{\"base_rate_per_s\": {base_rate:.4}, \"peak_rate_per_s\": {:.4}, \
         \"period_s\": 1800.0, \"mean_utilisation\": 0.5}},\n\
  \"sim_horizon_s\": {horizon:.1},\n  \"events_processed\": {events},\n\
  \"wall_build_s\": {build_secs:.3},\n  \"wall_run_s\": {run_secs:.3},\n\
  \"events_per_wall_s\": {:.0},\n  \"tasks_per_wall_s\": {:.0},\n\
  \"queue_backend_final\": \"{queue_backend}\",\n  \"queue_migrations\": {queue_migrations},\n\
  \"completed\": {completed},\n  \"mean_stretch\": {:.3},\n\
  \"acceptance\": {{\"budget_wall_s\": {budget_secs}, \"all_tasks_complete\": {}, \
         \"pass\": {ok}}}\n}}\n",
        burstiness * base_rate,
        events as f64 / run_secs,
        n_tasks as f64 / run_secs,
        metrics.meanstretch,
        completed == n_tasks,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path} (budget {budget_secs:.0} s, pass: {ok})");
    if !ok {
        std::process::exit(1);
    }
}

//! Ablation B: what the HTM's accuracy depends on.
//!
//! Three sweeps over the matmul workload:
//!
//! 1. **Ground-truth noise σ** — Table 1's ≈3 % error should scale with the
//!    machine-level run-time variability.
//! 2. **Load-report period** — the HTM doesn't care (it never reads load
//!    reports) but MCT does: its sum-flow degrades as its picture staleness
//!    grows, while HMCT stays flat. This isolates *why* the HTM wins.
//! 3. **Sync policy** — the paper's future work: closing the loop
//!    (force-finishing observed completions in the trace) should reduce
//!    prediction error under heavy noise.

use cas_core::heuristics::HeuristicKind;
use cas_core::SyncPolicy;
use cas_metrics::{MetricSet, Table};
use cas_middleware::validate::{mean_error_pct, rows_from_records};
use cas_middleware::{run_experiment, ExperimentConfig};
use cas_workload::metatask::MetataskSpec;
use cas_workload::{matmul, testbed};

fn main() {
    let costs = matmul::cost_table();
    let servers = testbed::set1_servers();
    let tasks = MetataskSpec::paper(20.0).generate(0xBEEF);

    // --- Sweep 1: noise level vs HTM prediction error. -------------------
    let mut t1 = Table::new(
        "HTM prediction error vs ground-truth noise (matmul, low rate)",
        vec!["mean error %".into(), "max error %".into()],
    );
    for sigma in [0.0, 0.01, 0.03, 0.05, 0.10, 0.20] {
        let mut cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 1);
        cfg.noise_sigma = sigma;
        let recs = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        let rows = rows_from_records(&recs);
        let mean = mean_error_pct(&rows);
        let max = rows.iter().map(|r| r.error_pct).fold(0.0, f64::max);
        t1.push_row_f64(format!("sigma = {sigma:.2}"), &[mean, max], 2);
    }
    println!("{}", t1.render());
    println!();

    // --- Sweep 2: load-report staleness: MCT vs HMCT sum-flow. -----------
    let mut t2 = Table::new(
        "Sum-flow vs load-report period (matmul, low rate)",
        vec!["MCT".into(), "HMCT".into()],
    );
    for period in [5.0, 15.0, 30.0, 60.0, 120.0, 300.0] {
        let row: Vec<f64> = [HeuristicKind::Mct, HeuristicKind::Hmct]
            .iter()
            .map(|&k| {
                let mut cfg = ExperimentConfig::paper(k, 2);
                cfg.load_report_period = period;
                let recs = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                MetricSet::compute(&recs).sumflow
            })
            .collect();
        t2.push_row_f64(format!("period {period:>5.0} s"), &row, 0);
    }
    println!("{}", t2.render());
    println!();

    // --- Sweep 3: sync policy under heavy noise. --------------------------
    let mut t3 = Table::new(
        "HTM prediction error vs sync policy (matmul, sigma = 0.10)",
        vec!["open loop".into(), "force-finish sync".into()],
    );
    for seed in [10u64, 11, 12] {
        let row: Vec<f64> = [SyncPolicy::None, SyncPolicy::ForceFinish]
            .iter()
            .map(|&sync| {
                let mut cfg = ExperimentConfig::paper(HeuristicKind::Msf, seed);
                cfg.noise_sigma = 0.10;
                cfg.sync = sync;
                let recs = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                mean_error_pct(&rows_from_records(&recs))
            })
            .collect();
        t3.push_row_f64(format!("seed {seed}"), &row, 2);
    }
    println!("{}", t3.render());
    println!();

    // --- Sweep 4: the per-server-link modelling simplification. ----------
    // The HTM models each server's links independently; §6's ground truth
    // lets every transfer interfere with every other. Enabling the shared
    // client link measures how much that simplification costs the HTM —
    // on matmul, whose transfers are tens of MB.
    let mut t4 = Table::new(
        "HTM prediction error vs link model (matmul, sigma = 0.03)",
        vec!["per-server links".into(), "shared client link".into()],
    );
    for seed in [20u64, 21, 22] {
        let row: Vec<f64> = [false, true]
            .iter()
            .map(|&shared| {
                let mut cfg = ExperimentConfig::paper(HeuristicKind::Msf, seed);
                cfg.shared_client_link = shared;
                let recs = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                mean_error_pct(&rows_from_records(&recs))
            })
            .collect();
        t4.push_row_f64(format!("seed {seed}"), &row, 2);
    }
    println!("{}", t4.render());
    println!(
        "\nNotes: force-finish sync trims the tail of stale simulated tasks, so its\n\
         mean error should not exceed the open-loop error at high noise; the\n\
         shared-link arm shows the error the HTM's per-server link assumption\n\
         adds when the ground truth has global transfer interference."
    );
}

//! Prints the Table 3 workload definition (matmul costs & memory needs) —
//! the static information compiled into the agent, for reference.

use cas_metrics::Table;
use cas_platform::{ProblemId, ServerId};
use cas_workload::matmul;

fn main() {
    let costs = matmul::cost_table();
    let servers = ["chamagne", "cabestan", "artimon", "pulney"];
    let mut table = Table::new(
        "Table 3: multiplication tasks' needs (input/compute/output seconds)",
        servers.iter().map(|s| s.to_string()).collect(),
    );
    for (i, size) in matmul::SIZES.iter().enumerate() {
        let p = ProblemId(i as u32);
        let cells = (0..4)
            .map(|s| {
                let c = costs.costs(p, ServerId(s)).unwrap();
                format!("{}/{}/{}", c.input, c.compute, c.output)
            })
            .collect();
        let (input_mb, output_mb) = matmul::DATA_MB[i];
        table.push_row(
            format!("{size} (mem {:.2} MB)", input_mb + output_mb),
            cells,
        );
    }
    println!("{}", table.render());
}

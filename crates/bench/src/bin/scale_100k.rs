//! The hierarchical-federation campaign: 100k servers, 10⁷ tasks, one
//! sharded HMCT experiment through the two-level skyline tree.
//!
//! This is the workload the group walk exists for: `--shards auto` on a
//! 100k farm resolves to 157 shards in 10 groups of 16, so every
//! decision's ascending-skyline walk prunes whole groups before it
//! touches a member shard. The binary runs exactly one campaign — the
//! production configuration (auto sharding, skyline merge, aggregated
//! per-shard load reports, the adaptive selector) — and gates on:
//!
//! * **completion** — every task must complete (the 100k farm itself is
//!   frozen; crash-safe accounting at this binary's settings is covered
//!   by the churn smoke below);
//! * **wall budget** — `SCALE100K_BUDGET_SECS` (default 4500: the full
//!   campaign measures ~52 min on one dev core at ~3.2k tasks/s, and
//!   the parallel stage-1 arm reclaims a large slice of that on
//!   multi-core runners, so the envelope carries ~1.4× margin);
//! * **liveness of both walk levels** — group and member-shard skip
//!   counters must be non-zero: a silent fall-back to the flat walk is
//!   a regression even when it completes in time;
//! * **liveness of the stage-2 drain engine** — drains, truncations and
//!   prefix-cursor reuses (the `stage2` JSON section) must all be
//!   non-zero: HMCT is completion-only, so a campaign whose fast drains
//!   never truncate or resume the shared baseline prefix has silently
//!   fallen back to full drains;
//! * **event-kernel high water** — `peak_pending` stays under
//!   `SCALE100K_PEAK_PENDING_GATE` (default `tasks + 2·servers +
//!   1024`): pending events must track the inflight population, not the
//!   campaign length;
//! * **phase profile** — the whole run executes under the always-on
//!   phase profiler; the JSON records per-phase totals, every phase must
//!   close at least one span, and the estimated span overhead must stay
//!   under `SCALE100K_PROFILE_OVERHEAD_GATE` (default 2 %). Because the
//!   100k farm schedules no churn events, a **churn smoke** — a
//!   laptop-scale faulted campaign (`SCALE100K_CHURN_SERVERS`/`_TASKS`,
//!   defaults 2000/20k, MTBF 400 s, MTTR 60 s) — runs in the same
//!   process to exercise the churn phase and re-check terminal
//!   accounting under crashes.
//!
//! Sizes are env-overridable (`SCALE100K_SERVERS`, `SCALE100K_TASKS`)
//! so the same binary smoke-tests at laptop scale. Results land in
//! `BENCH_scale_100k.json` (path overridable as argv[1]); CI runs the
//! full configuration nightly, non-blocking.

use cas_core::heuristics::HeuristicKind;
use cas_core::SelectorKind;
use cas_metrics::{prof, MetricSet};
use cas_middleware::{ExperimentConfig, GridWorld, Sharding};
use cas_platform::{CostTable, ProblemId, ServerId};
use cas_sim::Simulation;
use cas_workload::synthetic::{BurstArrivals, SyntheticPlatform};
use std::fmt::Write as _;
use std::time::Instant;

fn env_or(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Aggregate service rate of the farm (tasks per sim-second with every
/// server busy), the base of the arrival-rate sizing.
fn aggregate_rate(platform: &SyntheticPlatform, costs: &CostTable) -> f64 {
    (0..platform.n_servers)
        .map(|s| {
            let mean_cost: f64 = (0..platform.n_problems)
                .map(|p| {
                    costs
                        .costs(ProblemId(p as u32), ServerId(s as u32))
                        .expect("synthetic tables are fully solvable")
                        .total()
                })
                .sum::<f64>()
                / platform.n_problems as f64;
            1.0 / mean_cost
        })
        .sum()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale_100k.json".to_string());
    let n_servers = env_or("SCALE100K_SERVERS", 100_000.0) as usize;
    let n_tasks = env_or("SCALE100K_TASKS", 10_000_000.0) as usize;
    let budget_secs = env_or("SCALE100K_BUDGET_SECS", 4500.0);
    let selector_spec =
        std::env::var("SCALE100K_SELECTOR").unwrap_or_else(|_| "adaptive:8:64".to_string());
    let selector = SelectorKind::parse(&selector_spec)
        .unwrap_or_else(|| panic!("bad SCALE100K_SELECTOR {selector_spec}"));
    let shards_spec = std::env::var("SCALE100K_SHARDS").unwrap_or_else(|_| "auto".to_string());
    let sharding = Sharding::parse(&shards_spec)
        .unwrap_or_else(|| panic!("bad SCALE100K_SHARDS {shards_spec} (N|auto[:G])"));
    let n_shards = sharding.resolve(n_servers).unwrap_or(1);
    let profile_overhead_gate = env_or("SCALE100K_PROFILE_OVERHEAD_GATE", 0.02);
    let peak_pending_gate = env_or(
        "SCALE100K_PEAK_PENDING_GATE",
        (n_tasks + 2 * n_servers + 1024) as f64,
    ) as usize;
    let churn_servers = env_or("SCALE100K_CHURN_SERVERS", 2000.0) as usize;
    let churn_tasks = env_or("SCALE100K_CHURN_TASKS", 20_000.0) as usize;

    let platform = SyntheticPlatform {
        n_servers,
        heterogeneity: 4.0,
        n_problems: 3,
        base_cost: 15.0,
        cost_spread: 3.0,
        comm_fraction: 0.02,
        mem_fraction: 0.0,
    };
    let seed = 0x100_000;
    let build_start = Instant::now();
    let servers = platform.servers(seed);
    let costs = platform.cost_table(seed);

    // Same sizing as the standing scale campaign: arrivals at 50 % of
    // aggregate service capacity on average, ~80 % at crests.
    let mean_rate = 0.5 * aggregate_rate(&platform, &costs);
    let burstiness = 4.0;
    let base_rate = 2.0 * mean_rate / (1.0 + burstiness);
    let arrivals = BurstArrivals {
        n_tasks,
        base_rate,
        peak_rate: burstiness * base_rate,
        period: 1800.0,
        n_problems: platform.n_problems,
    };
    let tasks = arrivals.generate(seed);
    let horizon = tasks.last().expect("non-empty campaign").arrival.as_secs();

    let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, seed);
    cfg.load_report_period = 30.0;
    cfg.selector = selector;
    let cfg = cfg.with_shards(sharding).with_aggregated_reports(true);
    let build_secs = build_start.elapsed().as_secs_f64();

    prof::reset();
    let prof_start = Instant::now();
    let world = GridWorld::new(cfg, costs, servers, tasks);
    let n_groups = world.agent().tree().n_groups();
    let tree_active = world.agent().tree().n_groups() > 1;
    let mut sim = Simulation::new(world);
    let start = Instant::now();
    let _ = sim.run_to_completion();
    let run_secs = start.elapsed().as_secs_f64();
    let events = sim.processed();
    let queue_backend = sim.queue().backend_name();
    let peak_pending = sim.peak_pending();
    let world = sim.into_world();
    let metrics = MetricSet::compute(world.records());
    let skyline = world.agent().skyline_stats();
    let stage2 = world.agent().stage2_stats();
    let report_events = world.report_events();
    let completed = metrics.completed;

    eprintln!(
        "{n_servers} servers in {n_shards} shards / {n_groups} groups, {n_tasks} tasks over \
         {horizon:.0} sim-seconds (selector {selector_spec}): {completed} completed"
    );
    eprintln!(
        "build {build_secs:.2} s, run {run_secs:.2} s ({:.0} events/s, {:.0} tasks/s); \
         queue ended on `{queue_backend}`, peak pending {peak_pending}, \
         report kernel events {report_events}",
        events as f64 / run_secs,
        n_tasks as f64 / run_secs,
    );
    eprintln!(
        "group walk: skipped {:.1}% of group walks ({} / {} considered), \
         {:.1}% of member-shard walks ({} / {} considered)",
        100.0 * skyline.group_skip_rate(),
        skyline.group_skips,
        skyline.group_visits + skyline.group_skips,
        100.0 * skyline.skip_rate(),
        skyline.shard_skips,
        skyline.shard_visits + skyline.shard_skips,
    );
    eprintln!(
        "stage-2 drain engine: {} drains ({} truncated, {:.1}%), {} memo hits \
         ({:.1}% hit rate), {} prefix-cursor reuses ({:.1}% of drains)",
        stage2.drains,
        stage2.truncated,
        100.0 * stage2.truncation_rate(),
        stage2.hits,
        100.0 * stage2.hit_rate(),
        stage2.prefix_hits,
        100.0 * stage2.prefix_reuse_rate(),
    );

    // Churn smoke: the 100k farm is frozen, so the churn phase of the
    // profile — and crash-safe terminal accounting at this binary's
    // configuration — is exercised by a laptop-scale faulted campaign in
    // the same process.
    let churn_platform = SyntheticPlatform {
        n_servers: churn_servers,
        ..platform
    };
    let churn_costs = churn_platform.cost_table(seed);
    let churn_specs = churn_platform.servers(seed);
    let churn_mean_rate = 0.5 * aggregate_rate(&churn_platform, &churn_costs);
    let churn_base_rate = 2.0 * churn_mean_rate / (1.0 + burstiness);
    let churn_arrivals = BurstArrivals {
        n_tasks: churn_tasks,
        base_rate: churn_base_rate,
        peak_rate: burstiness * churn_base_rate,
        period: 1800.0,
        n_problems: churn_platform.n_problems,
    };
    let mut churn_cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, seed);
    churn_cfg.load_report_period = 30.0;
    churn_cfg.selector = selector;
    let churn_cfg = churn_cfg
        .with_shards(sharding)
        .with_aggregated_reports(true)
        .with_churn(
            env_or("SCALE100K_CHURN_MTBF", 400.0),
            env_or("SCALE100K_CHURN_MTTR", 60.0),
        )
        .with_churn_seed(7);
    let churn_start = Instant::now();
    let churn_world = GridWorld::new(
        churn_cfg,
        churn_costs,
        churn_specs,
        churn_arrivals.generate(seed),
    );
    let mut churn_sim = Simulation::new(churn_world);
    let _ = churn_sim.run_to_completion();
    let churn_wall = churn_start.elapsed().as_secs_f64();
    let churn_world = churn_sim.into_world();
    let churn_stats = churn_world.churn_stats();
    let (mut churn_completed, mut churn_dropped, mut churn_other) = (0u64, 0u64, 0u64);
    for r in churn_world.records() {
        match r.outcome {
            cas_metrics::TaskOutcome::Completed { .. } => churn_completed += 1,
            cas_metrics::TaskOutcome::Dropped { reason } => match reason.code() {
                "redispatch_budget" | "no_live_solver" => churn_dropped += 1,
                _ => churn_other += 1,
            },
            _ => churn_other += 1,
        }
    }
    let ok_churn_smoke = churn_other == 0
        && churn_completed + churn_dropped == churn_tasks as u64
        && churn_stats.crashes > 0;
    eprintln!(
        "churn smoke at {churn_servers} servers / {churn_tasks} tasks: {churn_completed} \
         completed + {churn_dropped} dropped with reason in {churn_wall:.2} s wall; \
         {} crashes, {} retractions, {} re-dispatches (pass: {ok_churn_smoke})",
        churn_stats.crashes, churn_stats.retractions, churn_stats.redispatches,
    );

    // Phase profile of everything above (build + campaign + churn
    // smoke), from the always-on profiler.
    let prof_wall = prof_start.elapsed().as_secs_f64();
    let prof_totals = prof::snapshot();
    let (profile_json, ok_profile) =
        prof::render_profile_json(&prof_totals, prof_wall, profile_overhead_gate);
    eprintln!(
        "phase profile over {prof_wall:.3} s wall (pass: {ok_profile}):\n{}",
        prof::render_profile_table(&prof_totals, prof_wall)
    );
    let ok_peak_pending = peak_pending <= peak_pending_gate;
    eprintln!(
        "peak pending kernel events: {peak_pending} (gate <= {peak_pending_gate}, \
         pass: {ok_peak_pending})"
    );

    let ok_complete = completed == n_tasks;
    let ok_budget = run_secs <= budget_secs;
    // Both walk levels must be live whenever the configuration calls
    // for them: a silent flat-walk fall-back is a regression.
    let ok_counters = !tree_active || (skyline.group_skips > 0 && skyline.group_visits > 0);
    // The fast drain engine must actually run, truncate and resume the
    // prefix cursor — all-zero counters mean a silent full-drain
    // fall-back (HMCT is completion-only, so truncation must be live).
    let ok_stage2 = stage2.drains > 0 && stage2.truncated > 0 && stage2.prefix_hits > 0;
    let ok = ok_complete
        && ok_budget
        && ok_counters
        && ok_stage2
        && ok_churn_smoke
        && ok_profile
        && ok_peak_pending;

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"scale_100k\",\n  \"scenario\": \"{n_servers}-server burst campaign \
         through the hierarchical shard federation (two-level skyline tree, aggregated \
         per-shard reports, IPPP thinning arrivals, HMCT)\",\n\
  \"n_servers\": {n_servers},\n  \"n_tasks\": {n_tasks},\n  \"selector\": \"{selector_spec}\",\n\
  \"shards\": {n_shards},\n  \"groups\": {n_groups},\n  \"tree_active\": {tree_active},\n\
  \"sim_horizon_s\": {horizon:.1},\n  \"events_processed\": {events},\n\
  \"wall_build_s\": {build_secs:.3},\n  \"wall_run_s\": {run_secs:.3},\n\
  \"events_per_wall_s\": {:.0},\n  \"tasks_per_wall_s\": {:.0},\n\
  \"queue_backend_final\": \"{queue_backend}\",\n  \"peak_pending_events\": {peak_pending},\n\
  \"report_kernel_events\": {report_events},\n\
  \"completed\": {completed},\n  \"mean_stretch\": {:.3},\n",
        events as f64 / run_secs,
        n_tasks as f64 / run_secs,
        metrics.meanstretch,
    );
    let _ = write!(
        json,
        "  \"skyline\": {{\n    \"decisions\": {},\n    \
         \"group_visits\": {},\n    \"group_skips\": {},\n    \
         \"group_skip_rate\": {:.4},\n    \
         \"shard_visits\": {},\n    \"shard_skips\": {},\n    \
         \"member_shard_skip_rate\": {:.4}\n  }},\n",
        skyline.decisions,
        skyline.group_visits,
        skyline.group_skips,
        skyline.group_skip_rate(),
        skyline.shard_visits,
        skyline.shard_skips,
        skyline.skip_rate(),
    );
    let _ = write!(
        json,
        "  \"stage2\": {{\n    \"mode\": \"fast\",\n    \"drains_run\": {},\n    \
         \"memo_hits\": {},\n    \"memo_hit_rate\": {:.4},\n    \
         \"cross_task_hits\": {},\n    \"truncated\": {},\n    \
         \"truncation_rate\": {:.4},\n    \"prefix_reuses\": {},\n    \
         \"prefix_reuse_rate\": {:.4},\n    \
         \"acceptance\": {{\"required\": \"drains, truncations and prefix reuses all > 0\", \
         \"pass\": {ok_stage2}}}\n  }},\n",
        stage2.drains,
        stage2.hits,
        stage2.hit_rate(),
        stage2.cross_task_hits,
        stage2.truncated,
        stage2.truncation_rate(),
        stage2.prefix_hits,
        stage2.prefix_reuse_rate(),
    );
    let _ = write!(
        json,
        "  \"churn_smoke\": {{\n    \"servers\": {churn_servers},\n    \
         \"tasks\": {churn_tasks},\n    \"wall_s\": {churn_wall:.3},\n    \
         \"completed\": {churn_completed},\n    \"dropped_with_reason\": {churn_dropped},\n    \
         \"crashes\": {},\n    \"retractions\": {},\n    \"redispatches\": {},\n    \
         \"note\": \"the 100k farm is frozen, so the churn phase of the profile and \
         crash-safe terminal accounting are exercised by this laptop-scale faulted campaign \
         in the same process\",\n    \
         \"acceptance\": {{\"required\": \"every task terminal (completed or dropped with \
         reason), crashes observed\", \"pass\": {ok_churn_smoke}}}\n  }},\n",
        churn_stats.crashes, churn_stats.retractions, churn_stats.redispatches,
    );
    let _ = writeln!(
        json,
        "  \"peak_pending\": {{\"campaign\": {peak_pending}, \
         \"acceptance\": {{\"max_peak_pending_events\": {peak_pending_gate}, \
         \"pass\": {ok_peak_pending}}}}},"
    );
    let _ = writeln!(json, "  \"profile\": {profile_json},");
    let _ = write!(
        json,
        "  \"acceptance\": {{\"budget_wall_s\": {budget_secs}, \
         \"all_tasks_complete\": {ok_complete}, \"within_budget\": {ok_budget}, \
         \"walk_levels_live\": {ok_counters}, \"stage2_counters_live\": {ok_stage2}, \
         \"churn_smoke_pass\": {ok_churn_smoke}, \
         \"profile_gate_pass\": {ok_profile}, \"peak_pending_gate_pass\": {ok_peak_pending}, \
         \"pass\": {ok}}}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path} (budget {budget_secs:.0} s, pass: {ok})");
    if !ok {
        std::process::exit(1);
    }
}

//! Reproduces Table 8: waste-cpu metatasks at the high arrival rate
//! (mean gap 15 s) — where MP and MSF overtake HMCT on sum-flow.

use cas_bench::paper::TABLE8;
use cas_bench::tables::{format_against_reference, run_table, TableSpec, Workload};

fn main() {
    let spec = TableSpec::new(
        Workload::WasteCpu,
        cas_workload::metatask::HIGH_RATE_MEAN_GAP,
    );
    let outcome = run_table(spec);
    let table = format_against_reference(
        &outcome,
        &TABLE8,
        "Table 8 reproduction: waste-cpu, high rate (mean gap 15 s), 3 metatasks x 500 tasks",
    );
    println!("{}", table.render());
    println!("{}", cas_metrics::render_csv(&table));
}

//! Microbench of the stage-2 what-if path: per-query cost of the fast
//! (truncated, prefix-sharing) and full (spec) drain engines, and the
//! per-candidate cost of [`Htm::predict_all`]'s batching layer, at a
//! campaign-realistic shape (1000 servers, ~tens of candidates, a
//! handful of active tasks per server). Diagnostic only — no gates.

use std::time::Instant;

use cas_core::{Htm, Stage2Mode, SyncPolicy};
use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId, ServerId, TaskId, TaskInstance};
use cas_sim::SimTime;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

const SERVERS: usize = 1000;

fn build(active_per_server: usize) -> (Htm, Vec<TaskInstance>) {
    let mut c = CostTable::new(SERVERS);
    c.add_problem(
        Problem::new("p", 0.0, 0.0, 0.0),
        (0..SERVERS)
            .map(|i| Some(PhaseCosts::new(1.0, 100.0 + i as f64, 1.0)))
            .collect(),
    );
    let mut htm = Htm::new(c, SyncPolicy::None);
    let mut next_id = 0u64;
    for s in 0..SERVERS {
        for k in 0..active_per_server {
            let task = TaskInstance::new(TaskId(next_id), ProblemId(0), t(0.1 * k as f64));
            next_id += 1;
            htm.commit(t(0.1 * k as f64), ServerId(s as u32), &task);
        }
    }
    let probes: Vec<TaskInstance> = (0..1024)
        .map(|i| TaskInstance::new(TaskId(next_id + i as u64), ProblemId(0), t(1.0)))
        .collect();
    (htm, probes)
}

fn bench_predict(htm: &mut Htm, probes: &[TaskInstance], mode: Stage2Mode, label: &str) {
    htm.set_stage2_mode(mode);
    htm.set_completion_only(true);
    let iters = 400_000usize;
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..iters {
        let probe = &probes[i % probes.len()];
        let server = ServerId(((i * 7) % SERVERS) as u32);
        let now = t(2.0 + i as f64 * 1e-6);
        let p = htm.predict(now, server, probe).expect("solvable");
        acc += p.completion.as_secs();
    }
    let per = t0.elapsed().as_nanos() as f64 / iters as f64;
    eprintln!("{label:28} {per:8.1} ns/query   (acc {acc:.1})");
}

fn bench_predict_all(htm: &mut Htm, probes: &[TaskInstance], width: usize, mode: Stage2Mode) {
    htm.set_stage2_mode(mode);
    htm.set_completion_only(true);
    let iters = 40_000usize;
    let candidates: Vec<ServerId> = (0..width)
        .map(|k| ServerId((k * 13 % SERVERS) as u32))
        .collect();
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..iters {
        let probe = &probes[i % probes.len()];
        let now = t(2.0 + i as f64 * 1e-6);
        let preds = htm.predict_all(now, probe, &candidates);
        acc += preds[0]
            .as_ref()
            .map(|p| p.completion.as_secs())
            .unwrap_or(0.0);
    }
    let per = t0.elapsed().as_nanos() as f64 / iters as f64;
    let per_cand = per / width as f64;
    eprintln!(
        "predict_all w={width} {mode:?}      {per:8.1} ns/call  {per_cand:8.1} ns/cand   (acc {acc:.1})"
    );
}

fn main() {
    for active in [1usize, 4, 16] {
        eprintln!("--- {active} active tasks/server ---");
        let (mut htm, probes) = build(active);
        bench_predict(&mut htm, &probes, Stage2Mode::Fast, "predict fast");
        bench_predict(&mut htm, &probes, Stage2Mode::Full, "predict full");
        bench_predict(&mut htm, &probes, Stage2Mode::Fast, "predict fast (again)");
        bench_predict_all(&mut htm, &probes, 42, Stage2Mode::Fast);
        bench_predict_all(&mut htm, &probes, 42, Stage2Mode::Full);
    }
}

//! Reproduces Table 7: waste-cpu metatasks at the low arrival rate
//! (mean gap 20 s) — the memory-free workload, three metatasks.

use cas_bench::paper::TABLE7;
use cas_bench::tables::{format_against_reference, run_table, TableSpec, Workload};

fn main() {
    let spec = TableSpec::new(
        Workload::WasteCpu,
        cas_workload::metatask::LOW_RATE_MEAN_GAP,
    );
    let outcome = run_table(spec);
    let table = format_against_reference(
        &outcome,
        &TABLE7,
        "Table 7 reproduction: waste-cpu, low rate (mean gap 20 s), 3 metatasks x 500 tasks",
    );
    println!("{}", table.render());
    println!("{}", cas_metrics::render_csv(&table));
}

//! Reproduces Fig. 1: the Gantt chart of a server trace before and after a
//! new task is mapped, with the perturbations π_j the insertion inflicts.
//!
//! The scenario mirrors the figure: two tasks (T1, T2) computing on a
//! shared server; a third task (T3) arrives mid-flight; shares drop from
//! 50 % to 33.3 % and every completion date slides right.

use cas_core::{Gantt, Htm, ServerTrace, SyncPolicy};
use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId, ServerId, TaskId, TaskInstance};
use cas_sim::SimTime;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn main() {
    // --- Old Gantt chart: T1 and T2 share the CPU. -----------------------
    let mut before = ServerTrace::new().with_recording();
    before.add_task(t(0.0), TaskId(1), PhaseCosts::new(0.0, 60.0, 0.0));
    before.add_task(t(0.0), TaskId(2), PhaseCosts::new(0.0, 90.0, 0.0));
    let mut before_done = before.clone();
    before_done.drain();
    println!("Old Gantt chart (before the new task):\n");
    println!("{}", Gantt::from_trace(&before_done).render_ascii(72));

    // --- The agent asks the HTM what mapping T3 would do. ----------------
    let mut costs = CostTable::new(1);
    costs.add_problem(
        Problem::new("fig1-60", 0.0, 0.0, 0.0),
        vec![Some(PhaseCosts::new(0.0, 60.0, 0.0))],
    );
    costs.add_problem(
        Problem::new("fig1-90", 0.0, 0.0, 0.0),
        vec![Some(PhaseCosts::new(0.0, 90.0, 0.0))],
    );
    costs.add_problem(
        Problem::new("fig1-30", 0.0, 0.0, 0.0),
        vec![Some(PhaseCosts::new(0.0, 30.0, 0.0))],
    );
    let mut htm = Htm::new(costs, SyncPolicy::None);
    htm.enable_recording(ServerId(0));
    htm.commit(
        t(0.0),
        ServerId(0),
        &TaskInstance::new(TaskId(1), ProblemId(0), t(0.0)),
    );
    htm.commit(
        t(0.0),
        ServerId(0),
        &TaskInstance::new(TaskId(2), ProblemId(1), t(0.0)),
    );
    let new_task = TaskInstance::new(TaskId(3), ProblemId(2), t(30.0));
    let prediction = htm
        .predict(t(30.0), ServerId(0), &new_task)
        .expect("server solves the problem");
    println!("Perturbations of the new task (π_j = f'_j − f_j):");
    for (task, pi) in &prediction.perturbations {
        println!("  π({task}) = {pi:.1} s");
    }
    println!(
        "  new task completion f(n+1) = {:.1} s  (sum π = {:.1}, MSF objective = {:.1})\n",
        prediction.completion.as_secs(),
        prediction.sum_perturbation(),
        prediction.msf_objective()
    );

    // --- Gantt chart with the new task. ----------------------------------
    htm.commit(t(30.0), ServerId(0), &new_task);
    let mut after = htm.trace(ServerId(0)).clone();
    after.drain();
    println!("Gantt chart with the new task (T3 arrives at t=30):\n");
    println!("{}", Gantt::from_trace(&after).render_ascii(72));
}

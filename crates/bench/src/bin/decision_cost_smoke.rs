//! Decision-cost smoke benchmark, JSON output.
//!
//! Measures the cost of one full scheduling decision — a what-if query per
//! candidate across a 64-server platform — through the two prediction
//! paths:
//!
//! * `clone_baseline` — [`Htm::predict_reference`], the original
//!   clone-and-drain implementation;
//! * `cached_batched` — [`Htm::predict_all`], the generation-cached,
//!   zero-clone, batch engine.
//!
//! Two workload modes bracket reality: `steady` issues decisions with no
//! commits in between (every server's baseline cache stays warm) and
//! `churn` commits the chosen task after every decision (one server's
//! cache invalidated per round, as in a live scheduler).
//!
//! A second section measures the **commit path**: the cost of absorbing a
//! placement into the model, from the commit call to the next baseline
//! consumer (`resident_estimate`, the memory-aware veto's per-decision
//! read). Each round replays the engine's exact order — predict the
//! chosen server, commit, read the baseline — and times only the
//! commit-and-read portion:
//!
//! * `commit_full_redrain` — PR-1 behaviour ([`RepairPolicy::FullRedrain`]):
//!   the commit invalidates the baseline and the read pays a full
//!   re-drain of the server's trace;
//! * `commit_incremental` — [`RepairPolicy::Incremental`] (the default):
//!   the commit adopts the memoised speculative after-schedule, so the
//!   read is a cache hit.
//!
//! A third section measures the **prediction memo**: the speculative
//! after-drain is keyed on (problem costs, instant, trace generation) —
//! not the probe id — so same-instant probes of the same problem share
//! one drain. The section times a second same-problem batch against the
//! first and reports the memo's hit-rate counters
//! ([`cas_core::MemoStats`]).
//!
//! Writes `BENCH_decision_cost.json` (path overridable as argv[1]) with
//! per-configuration timings and speedups; CI runs this as the perf gate
//! (decision gate ≥ 3x vs clone, commit-path gate ≥ 2x vs full re-drain).

use cas_core::{Htm, MemoStats, RepairPolicy, SyncPolicy};
use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId, ServerId, TaskId, TaskInstance};
use cas_sim::SimTime;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const N_SERVERS: u32 = 64;

fn table64() -> CostTable {
    let mut t = CostTable::new(N_SERVERS as usize);
    for p in 0..3 {
        let base = 15.0 * (p + 1) as f64;
        t.add_problem(
            Problem::new(format!("p{p}"), 1.0, 0.5, 0.0),
            (0..N_SERVERS)
                .map(|s| {
                    Some(PhaseCosts::new(
                        0.2,
                        base * (1.0 + (s % 7) as f64 * 0.3),
                        0.1,
                    ))
                })
                .collect(),
        );
    }
    t
}

fn loaded_htm(per_server: usize) -> Htm {
    let mut htm = Htm::new(table64(), SyncPolicy::None);
    let mut id = 1000u64;
    for s in 0..N_SERVERS {
        for k in 0..per_server {
            let t = TaskInstance::new(
                TaskId(id),
                ProblemId((k % 3) as u32),
                SimTime::from_secs(k as f64),
            );
            htm.commit(t.arrival, ServerId(s), &t);
            id += 1;
        }
    }
    htm
}

#[derive(Clone, Copy, PartialEq)]
enum Path {
    CloneBaseline,
    CachedBatched,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Decisions only; no trace mutation between rounds.
    Steady,
    /// Commit the picked task after every decision (cache churn).
    Churn,
}

/// Runs `rounds` decisions and returns the mean microseconds per decision.
fn run(path: Path, mode: Mode, per_server: usize, rounds: usize) -> f64 {
    let mut htm = loaded_htm(per_server);
    let candidates: Vec<ServerId> = (0..N_SERVERS).map(ServerId).collect();
    let mut next_id = 500_000u64;
    let mut now = 500.0f64;
    // Warm-up (fills caches, faults in scratch buffers).
    for _ in 0..3 {
        let probe = TaskInstance::new(TaskId(next_id), ProblemId(0), SimTime::from_secs(now));
        next_id += 1;
        match path {
            Path::CloneBaseline => {
                for &s in &candidates {
                    black_box(htm.predict_reference(probe.arrival, s, &probe));
                }
            }
            Path::CachedBatched => {
                black_box(htm.predict_all(probe.arrival, &probe, &candidates));
            }
        }
    }
    let start = Instant::now();
    for round in 0..rounds {
        now += 0.01;
        let probe = TaskInstance::new(
            TaskId(next_id),
            ProblemId((round % 3) as u32),
            SimTime::from_secs(now),
        );
        next_id += 1;
        let pick = match path {
            Path::CloneBaseline => {
                let mut best: Option<(ServerId, f64)> = None;
                for &s in &candidates {
                    if let Some(p) = htm.predict_reference(probe.arrival, s, &probe) {
                        let v = p.completion.as_secs();
                        if best.is_none_or(|(_, bv)| v < bv) {
                            best = Some((s, v));
                        }
                    }
                }
                best.map(|(s, _)| s)
            }
            Path::CachedBatched => {
                let preds = htm.predict_all(probe.arrival, &probe, &candidates);
                candidates
                    .iter()
                    .zip(&preds)
                    .filter_map(|(&s, p)| p.as_ref().map(|p| (s, p.completion.as_secs())))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite completion"))
                    .map(|(s, _)| s)
            }
        };
        if mode == Mode::Churn {
            let server = pick.expect("some server solves every problem");
            htm.commit(probe.arrival, server, &probe);
        } else {
            black_box(pick);
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / rounds as f64
}

/// Times the commit path (commit + first baseline read) under `policy`,
/// returning mean microseconds per commit. The surrounding predict matches
/// the engine's decision order and is excluded from the measurement — it
/// costs the same under both policies.
fn run_commit_path(policy: RepairPolicy, per_server: usize, rounds: usize) -> f64 {
    let mut htm = loaded_htm(per_server);
    htm.set_repair_policy(policy);
    let mut next_id = 900_000u64;
    let mut now = 500.0f64;
    // Warm-up: fault in every server's baseline cache and scratch.
    for s in 0..N_SERVERS {
        black_box(htm.resident_estimate(SimTime::from_secs(now), ServerId(s)));
    }
    let mut in_commit = std::time::Duration::ZERO;
    for round in 0..rounds {
        now += 0.01;
        let server = ServerId((round % N_SERVERS as usize) as u32);
        let task = TaskInstance::new(
            TaskId(next_id),
            ProblemId((round % 3) as u32),
            SimTime::from_secs(now),
        );
        next_id += 1;
        // The decision the engine makes before every commit (untimed).
        black_box(htm.predict(task.arrival, server, &task));
        let start = Instant::now();
        htm.commit(task.arrival, server, &task);
        black_box(htm.resident_estimate(task.arrival, server));
        in_commit += start.elapsed();
    }
    in_commit.as_secs_f64() * 1e6 / rounds as f64
}

/// Times same-instant same-problem probe batches: the first batch drains,
/// the second must be answered from the problem-keyed memo. Returns
/// (first µs/batch, repeat µs/batch, final memo stats).
fn run_memo_probe(per_server: usize, rounds: usize) -> (f64, f64, MemoStats) {
    let mut htm = loaded_htm(per_server);
    let candidates: Vec<ServerId> = (0..N_SERVERS).map(ServerId).collect();
    let mut next_id = 700_000u64;
    let mut now = 500.0f64;
    // Warm-up.
    let probe = TaskInstance::new(TaskId(next_id), ProblemId(0), SimTime::from_secs(now));
    next_id += 1;
    black_box(htm.predict_all(probe.arrival, &probe, &candidates));
    let (mut in_first, mut in_repeat) = (std::time::Duration::ZERO, std::time::Duration::ZERO);
    for round in 0..rounds {
        now += 0.01;
        let when = SimTime::from_secs(now);
        let problem = ProblemId((round % 3) as u32);
        let first = TaskInstance::new(TaskId(next_id), problem, when);
        let repeat = TaskInstance::new(TaskId(next_id + 1), problem, when);
        next_id += 2;
        let start = Instant::now();
        black_box(htm.predict_all(when, &first, &candidates));
        in_first += start.elapsed();
        let start = Instant::now();
        black_box(htm.predict_all(when, &repeat, &candidates));
        in_repeat += start.elapsed();
    }
    (
        in_first.as_secs_f64() * 1e6 / rounds as f64,
        in_repeat.as_secs_f64() * 1e6 / rounds as f64,
        htm.memo_stats(),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_decision_cost.json".to_string());
    // The acceptance target is 3x (what this repo's dev runs record); a
    // noisy shared CI runner can override the *exit* gate downward without
    // changing the recorded target.
    let gate: f64 = std::env::var("DECISION_COST_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let commit_gate: f64 = std::env::var("COMMIT_PATH_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let mut results = String::new();
    let mut min_speedup = f64::INFINITY;
    let mut first = true;
    for &per_server in &[8usize, 32, 128] {
        for (mode, mode_name) in [(Mode::Steady, "steady"), (Mode::Churn, "churn")] {
            // Keep the clone-path round count bounded: it is the slow side.
            let rounds = match per_server {
                128 => 40,
                32 => 120,
                _ => 400,
            };
            let baseline_us = run(Path::CloneBaseline, mode, per_server, rounds);
            let cached_us = run(Path::CachedBatched, mode, per_server, rounds);
            let speedup = baseline_us / cached_us;
            min_speedup = min_speedup.min(speedup);
            eprintln!(
                "64 servers × {per_server:>3} tasks, {mode_name:<6}: \
                 clone {baseline_us:>10.1} µs/decision, cached {cached_us:>8.1} µs/decision, \
                 speedup {speedup:>6.1}x"
            );
            if !first {
                results.push_str(",\n");
            }
            first = false;
            let _ = write!(
                results,
                "    {{\"servers\": {N_SERVERS}, \"per_server_tasks\": {per_server}, \
                 \"mode\": \"{mode_name}\", \"rounds\": {rounds}, \
                 \"clone_baseline_us_per_decision\": {baseline_us:.2}, \
                 \"cached_batched_us_per_decision\": {cached_us:.2}, \
                 \"speedup\": {speedup:.2}}}"
            );
        }
    }
    // Commit-path section: full re-drain (PR 1) vs incremental splice.
    let mut commit_results = String::new();
    let mut commit_min_speedup = f64::INFINITY;
    let mut commit_first = true;
    for &per_server in &[8usize, 32, 128] {
        let rounds = match per_server {
            128 => 192,
            32 => 640,
            _ => 1920,
        };
        let full_us = run_commit_path(RepairPolicy::FullRedrain, per_server, rounds);
        let inc_us = run_commit_path(RepairPolicy::Incremental, per_server, rounds);
        let speedup = full_us / inc_us;
        commit_min_speedup = commit_min_speedup.min(speedup);
        eprintln!(
            "64 servers × {per_server:>3} tasks, commit : \
             full redrain {full_us:>10.2} µs/commit, incremental {inc_us:>8.2} µs/commit, \
             speedup {speedup:>6.1}x"
        );
        if !commit_first {
            commit_results.push_str(",\n");
        }
        commit_first = false;
        let _ = write!(
            commit_results,
            "    {{\"servers\": {N_SERVERS}, \"per_server_tasks\": {per_server}, \
             \"rounds\": {rounds}, \
             \"full_redrain_us_per_commit\": {full_us:.2}, \
             \"incremental_us_per_commit\": {inc_us:.2}, \
             \"speedup\": {speedup:.2}}}"
        );
    }
    // Prediction-memo section: same-instant, same-problem probes must be
    // answered from the problem-keyed memo instead of re-draining.
    let (first_us, repeat_us, memo) = run_memo_probe(32, 200);
    let memo_speedup = first_us / repeat_us;
    eprintln!(
        "64 servers ×  32 tasks, memo  : first probe {first_us:>10.1} µs/batch, same-problem \
         repeat {repeat_us:>8.1} µs/batch, speedup {memo_speedup:>6.1}x \
         (hit rate {:.3}, {} cross-task hits)",
        memo.hit_rate(),
        memo.cross_task_hits
    );
    let json = format!(
        "{{\n  \"bench\": \"decision_cost\",\n  \"unit\": \"microseconds per scheduling decision \
         (one what-if query per candidate server)\",\n  \"baseline\": \"Htm::predict_reference \
         (clone-and-drain per query)\",\n  \"candidate\": \"Htm::predict_all (generation-cached \
         baseline + zero-clone scratch drain + batched fan-out)\",\n  \"results\": [\n{results}\n  ],\n\
  \"commit_path\": {{\n    \"unit\": \"microseconds per commit (commit + first baseline read, \
         predict excluded)\",\n    \"baseline\": \"RepairPolicy::FullRedrain (PR 1: invalidate, \
         re-drain on next read)\",\n    \"candidate\": \"RepairPolicy::Incremental (splice: adopt \
         the memoised after-schedule)\",\n    \"results\": [\n{commit_results}\n    ],\n\
    \"acceptance\": {{\"required_min_speedup\": 2.0, \"observed_min_speedup\": \
         {commit_min_speedup:.2}, \"pass\": {}}}\n  }},\n\
  \"prediction_memo\": {{\n    \"unit\": \"microseconds per 64-candidate batch (same instant, \
         same problem, different task id)\",\n    \"first_probe_us_per_batch\": {first_us:.2},\n    \
    \"same_problem_repeat_us_per_batch\": {repeat_us:.2},\n    \"speedup\": {memo_speedup:.2},\n    \
    \"drains\": {},\n    \"hits\": {},\n    \"cross_task_hits\": {},\n    \
    \"hit_rate\": {:.4},\n    \"acceptance\": {{\"cross_task_hits_nonzero\": {}}}\n  }},\n\
  \"acceptance\": {{\"required_min_speedup\": 3.0, \"observed_min_speedup\": {min_speedup:.2}, \
         \"pass\": {}}}\n}}\n",
        commit_min_speedup >= 2.0,
        memo.drains,
        memo.hits,
        memo.cross_task_hits,
        memo.hit_rate(),
        memo.cross_task_hits > 0,
        min_speedup >= 3.0
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!(
        "wrote {out_path}; min decision speedup {min_speedup:.2}x (exit gate: >= {gate}x), \
         min commit-path speedup {commit_min_speedup:.2}x (exit gate: >= {commit_gate}x)"
    );
    if min_speedup < gate || commit_min_speedup < commit_gate {
        std::process::exit(1);
    }
}

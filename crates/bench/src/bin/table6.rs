//! Reproduces Table 6: matmul metatask at the high arrival rate
//! (mean gap 15 s) — the memory-crunch experiment where MCT survives via
//! fault-tolerant retries and the HTM heuristics lose tasks.

use cas_bench::paper::TABLE6;
use cas_bench::tables::{format_against_reference, run_table, TableSpec, Workload};

fn main() {
    let spec = TableSpec::new(Workload::Matmul, cas_workload::metatask::HIGH_RATE_MEAN_GAP);
    let outcome = run_table(spec);
    let table = format_against_reference(
        &outcome,
        &TABLE6,
        "Table 6 reproduction: matmul, high rate (mean gap 15 s), 500 tasks",
    );
    println!("{}", table.render());
    println!("{}", cas_metrics::render_csv(&table));
}

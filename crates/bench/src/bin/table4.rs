//! Prints the Table 4 workload definition (waste-cpu costs) — the static
//! information compiled into the agent, for reference.

use cas_metrics::Table;
use cas_platform::{ProblemId, ServerId};
use cas_workload::wastecpu;

fn main() {
    let costs = wastecpu::cost_table();
    let servers = ["valette", "spinnaker", "cabestan", "artimon"];
    let mut table = Table::new(
        "Table 4: waste-cpu tasks' needs (input/compute/output seconds)",
        servers.iter().map(|s| s.to_string()).collect(),
    );
    for (i, param) in wastecpu::PARAMS.iter().enumerate() {
        let p = ProblemId(i as u32);
        let cells = (0..4)
            .map(|s| {
                let c = costs.costs(p, ServerId(s)).unwrap();
                format!("{}/{}/{}", c.input, c.compute, c.output)
            })
            .collect();
        table.push_row(format!("param {param}"), cells);
    }
    println!("{}", table.render());
}

//! Ablation A: heuristic ranking versus arrival process.
//!
//! Two scenarios:
//!
//! * **rate** (default) — §5.3's crossover: MP is sub-optimal at low rates
//!   (it wastes fast servers on idle slow ones) but strong at high rates,
//!   while MSF is never worse than MCT at any rate. The sweep varies the
//!   mean inter-arrival gap of homogeneous-Poisson arrivals over the
//!   waste-cpu workload.
//! * **burst** (`sweep burst`) — beyond the paper: arrivals follow the
//!   thinning-sampled inhomogeneous Poisson process of
//!   [`cas_workload::synthetic::BurstArrivals`]. The mean rate is held at
//!   the paper's high-rate setting while the peak/trough ratio grows, so
//!   the columns isolate how each heuristic degrades as the same load
//!   arrives in ever-sharper bursts.
//!
//! Both print sum-flow, max-stretch, mean-flow and completion counts per
//! heuristic.

use cas_core::heuristics::HeuristicKind;
use cas_metrics::{MetricSet, Table};
use cas_middleware::{run_heuristic_matrix, ExperimentConfig};
use cas_platform::TaskInstance;
use cas_workload::metatask::MetataskSpec;
use cas_workload::synthetic::BurstArrivals;
use cas_workload::{testbed, wastecpu};

const GAPS: [f64; 6] = [8.0, 10.0, 12.0, 15.0, 20.0, 30.0];
/// Peak-to-trough rate ratios of the burst scenario (1 = homogeneous).
const BURSTINESS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
/// The burst scenario's mean arrival rate: the paper's high-rate setting
/// (one task per 15 s).
const BURST_MEAN_RATE: f64 = 1.0 / 15.0;
/// Burst period, seconds — a few hundred tasks per cycle.
const BURST_PERIOD: f64 = 1800.0;
const KINDS: [HeuristicKind; 6] = [
    HeuristicKind::Mct,
    HeuristicKind::Hmct,
    HeuristicKind::Mp,
    HeuristicKind::Msf,
    HeuristicKind::Mni,
    HeuristicKind::RoundRobin,
];

fn metric_rows(
    title_of: impl Fn(&str) -> String,
    rows: &[(String, Vec<TaskInstance>)],
    workers: usize,
) {
    let costs = wastecpu::cost_table();
    let servers = testbed::set2_servers();
    // One matrix run per row; every metric below reads from these sets
    // (a MetricSet already carries all of them).
    let computed: Vec<(&String, Vec<Vec<MetricSet>>)> = rows
        .iter()
        .map(|(label, tasks)| {
            let workloads: Vec<_> = (0..2).map(|_| tasks.clone()).collect();
            let cfg = ExperimentConfig::paper(HeuristicKind::Mct, 0xF00D);
            let results = run_heuristic_matrix(cfg, &KINDS, &costs, &servers, &workloads, workers);
            (label, results.iter().map(|r| r.metrics()).collect())
        })
        .collect();
    for metric in ["sumflow", "maxstretch", "meanflow", "completed"] {
        let mut table = Table::new(
            title_of(metric),
            KINDS.iter().map(|k| k.name().to_string()).collect(),
        );
        for (label, per_kind) in &computed {
            let row: Vec<f64> = per_kind
                .iter()
                .map(|ms| {
                    ms.iter().filter_map(|m| m.by_name(metric)).sum::<f64>() / ms.len() as f64
                })
                .collect();
            table.push_row_f64((*label).clone(), &row, 1);
        }
        println!("{}", table.render());
        println!();
    }
}

fn sweep_rate(workers: usize) {
    let rows: Vec<(String, Vec<TaskInstance>)> = GAPS
        .iter()
        .map(|&gap| {
            (
                format!("gap {gap:>4.0} s"),
                MetataskSpec::paper(gap).generate(0x5EED),
            )
        })
        .collect();
    metric_rows(
        |m| format!("Arrival-rate sweep, waste-cpu x 500 tasks: {m}"),
        &rows,
        workers,
    );
    println!(
        "Expected shape (§5.3): MP's sum-flow is worst-or-near-worst at large gaps\n\
         (low rate) and competitive at small gaps; MSF tracks the best heuristic at\n\
         every rate; MCT degrades fastest as the gap shrinks."
    );
}

fn sweep_burst(workers: usize) {
    let rows: Vec<(String, Vec<TaskInstance>)> = BURSTINESS
        .iter()
        .map(|&ratio| {
            // Hold the mean rate fixed: base + peak = 2 · mean, peak = ratio · base.
            let base_rate = 2.0 * BURST_MEAN_RATE / (1.0 + ratio);
            let spec = BurstArrivals {
                n_tasks: 500,
                base_rate,
                peak_rate: ratio * base_rate,
                period: BURST_PERIOD,
                n_problems: 3,
            };
            (format!("peak/trough {ratio:>4.0}x"), spec.generate(0x5EED))
        })
        .collect();
    metric_rows(
        |m| format!("Burstiness sweep (IPPP thinning, mean gap 15 s), waste-cpu x 500: {m}"),
        &rows,
        workers,
    );
    println!(
        "Row 1 (1x) reproduces the homogeneous high-rate workload; subsequent rows\n\
         deliver the same mean load in sharper bursts. HTM-based heuristics keep\n\
         their lead as long as the crest does not saturate every server at once."
    );
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let scenario = std::env::args().nth(1).unwrap_or_else(|| "rate".into());
    match scenario.as_str() {
        "rate" => sweep_rate(workers),
        "burst" => sweep_burst(workers),
        other => {
            eprintln!("unknown scenario {other} (rate|burst)");
            std::process::exit(2);
        }
    }
}

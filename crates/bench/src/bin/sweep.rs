//! Ablation A: heuristic ranking versus arrival process.
//!
//! Three scenarios:
//!
//! * **rate** (default) — §5.3's crossover: MP is sub-optimal at low rates
//!   (it wastes fast servers on idle slow ones) but strong at high rates,
//!   while MSF is never worse than MCT at any rate. The sweep varies the
//!   mean inter-arrival gap of homogeneous-Poisson arrivals over the
//!   waste-cpu workload.
//! * **burst** (`sweep burst`) — beyond the paper: arrivals follow the
//!   thinning-sampled inhomogeneous Poisson process of
//!   [`cas_workload::synthetic::BurstArrivals`]. The mean rate is held at
//!   the paper's high-rate setting while the peak/trough ratio grows, so
//!   the columns isolate how each heuristic degrades as the same load
//!   arrives in ever-sharper bursts. `sweep burst` also appends the
//!   crest-overload tables below.
//! * **crest** (`sweep crest`) — the collapse chart: the crest rate is
//!   driven *past the platform's aggregate service capacity* on the
//!   memory-bound matmul workload. Below capacity every heuristic
//!   completes everything; past it, queues build through each burst,
//!   memory fills, and the per-heuristic completion counts chart where
//!   each policy's completion rate collapses (the HTM heuristics run
//!   without NetSolve's retry loop, as in the paper's Table 6).
//!
//! All print sum-flow, max-stretch, mean-flow and completion counts per
//! heuristic. `sweep trace` instead replays a fitted multi-app trace
//! whose crest class outruns the admission gate and prints per-user-class
//! SLO tables (drop rate, stretch percentiles, buffered time) per
//! heuristic × selector, asserting first that an *uncontended* gate is
//! bit-invisible.

use cas_core::heuristics::HeuristicKind;
use cas_core::SelectorKind;
use cas_metrics::{per_class_slo, MetricSet, Table};
use cas_middleware as middleware;
use cas_middleware::{
    run_experiment, run_experiment_with_users, run_heuristic_matrix, ExperimentConfig, Sharding,
};
use cas_platform::{CostTable, ProblemId, ServerId, ServerSpec, TaskInstance};
use cas_workload::metatask::MetataskSpec;
use cas_workload::synthetic::{BurstArrivals, SyntheticPlatform};
use cas_workload::trace::{AppProfile, FittedTraceSpec, TraceWorkload};
use cas_workload::{matmul, testbed, wastecpu};

const GAPS: [f64; 6] = [8.0, 10.0, 12.0, 15.0, 20.0, 30.0];
/// Peak-to-trough rate ratios of the burst scenario (1 = homogeneous).
const BURSTINESS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
/// Crest rate as a multiple of aggregate service capacity (`crest`
/// scenario): the completion cliff sits past 1.
const CREST_MULTIPLES: [f64; 5] = [0.5, 0.8, 1.0, 2.0, 4.0];
/// The burst scenario's mean arrival rate: the paper's high-rate setting
/// (one task per 15 s).
const BURST_MEAN_RATE: f64 = 1.0 / 15.0;
/// Burst period, seconds — a few hundred tasks per cycle.
const BURST_PERIOD: f64 = 1800.0;
const KINDS: [HeuristicKind; 6] = [
    HeuristicKind::Mct,
    HeuristicKind::Hmct,
    HeuristicKind::Mp,
    HeuristicKind::Msf,
    HeuristicKind::Mni,
    HeuristicKind::RoundRobin,
];

/// Aggregate service rate of a platform, tasks/second: one task at a time
/// per server at its mean unloaded duration across problems.
fn aggregate_capacity(costs: &CostTable) -> f64 {
    (0..costs.n_servers() as u32)
        .map(|s| {
            let durations: Vec<f64> = (0..costs.n_problems() as u32)
                .filter_map(|p| costs.unloaded_duration(ProblemId(p), ServerId(s)))
                .collect();
            let mean = durations.iter().sum::<f64>() / durations.len().max(1) as f64;
            if mean > 0.0 {
                1.0 / mean
            } else {
                0.0
            }
        })
        .sum()
}

fn metric_rows(
    title_of: impl Fn(&str) -> String,
    costs: &CostTable,
    servers: &[ServerSpec],
    rows: &[(String, Vec<TaskInstance>)],
) {
    // One matrix run per row; every metric below reads from these sets
    // (a MetricSet already carries all of them).
    let computed: Vec<(&String, Vec<Vec<MetricSet>>)> = rows
        .iter()
        .map(|(label, tasks)| {
            let workloads: Vec<_> = (0..2).map(|_| tasks.clone()).collect();
            let cfg = ExperimentConfig::paper(HeuristicKind::Mct, 0xF00D);
            let results = run_heuristic_matrix(cfg, &KINDS, costs, servers, &workloads);
            (label, results.iter().map(|r| r.metrics()).collect())
        })
        .collect();
    for metric in ["sumflow", "maxstretch", "meanflow", "completed"] {
        let mut table = Table::new(
            title_of(metric),
            KINDS.iter().map(|k| k.name().to_string()).collect(),
        );
        for (label, per_kind) in &computed {
            let row: Vec<f64> = per_kind
                .iter()
                .map(|ms| {
                    ms.iter().filter_map(|m| m.by_name(metric)).sum::<f64>() / ms.len() as f64
                })
                .collect();
            table.push_row_f64((*label).clone(), &row, 1);
        }
        println!("{}", table.render());
        println!();
    }
}

fn sweep_rate() {
    let rows: Vec<(String, Vec<TaskInstance>)> = GAPS
        .iter()
        .map(|&gap| {
            (
                format!("gap {gap:>4.0} s"),
                MetataskSpec::paper(gap).generate(0x5EED),
            )
        })
        .collect();
    metric_rows(
        |m| format!("Arrival-rate sweep, waste-cpu x 500 tasks: {m}"),
        &wastecpu::cost_table(),
        &testbed::set2_servers(),
        &rows,
    );
    println!(
        "Expected shape (§5.3): MP's sum-flow is worst-or-near-worst at large gaps\n\
         (low rate) and competitive at small gaps; MSF tracks the best heuristic at\n\
         every rate; MCT degrades fastest as the gap shrinks."
    );
}

fn sweep_burst() {
    let rows: Vec<(String, Vec<TaskInstance>)> = BURSTINESS
        .iter()
        .map(|&ratio| {
            // Hold the mean rate fixed: base + peak = 2 · mean, peak = ratio · base.
            let base_rate = 2.0 * BURST_MEAN_RATE / (1.0 + ratio);
            let spec = BurstArrivals {
                n_tasks: 500,
                base_rate,
                peak_rate: ratio * base_rate,
                period: BURST_PERIOD,
                n_problems: 3,
            };
            (format!("peak/trough {ratio:>4.0}x"), spec.generate(0x5EED))
        })
        .collect();
    metric_rows(
        |m| format!("Burstiness sweep (IPPP thinning, mean gap 15 s), waste-cpu x 500: {m}"),
        &wastecpu::cost_table(),
        &testbed::set2_servers(),
        &rows,
    );
    println!(
        "Row 1 (1x) reproduces the homogeneous high-rate workload; subsequent rows\n\
         deliver the same mean load in sharper bursts. HTM-based heuristics keep\n\
         their lead as long as the crest does not saturate every server at once."
    );
}

fn sweep_crest() {
    let costs = matmul::cost_table();
    let servers = testbed::set1_servers();
    let capacity = aggregate_capacity(&costs);
    let rows: Vec<(String, Vec<TaskInstance>)> = CREST_MULTIPLES
        .iter()
        .map(|&m| {
            // Quiet troughs, crests at m × capacity: below 1 every burst
            // drains before the next; past 1 the backlog compounds.
            let peak_rate = m * capacity;
            let spec = BurstArrivals {
                n_tasks: 500,
                base_rate: (0.1 * capacity).min(peak_rate),
                peak_rate,
                period: BURST_PERIOD,
                n_problems: costs.n_problems(),
            };
            (format!("crest {m:>3.1}x cap"), spec.generate(0x5EED))
        })
        .collect();
    metric_rows(
        |m| format!("Crest-overload sweep (capacity {capacity:.4}/s), matmul x 500: {m}"),
        &costs,
        &servers,
        &rows,
    );
    println!(
        "Crests below aggregate capacity ({capacity:.4} tasks/s) drain between bursts:\n\
         everyone completes ~500. Past 1x the backlog compounds through each crest,\n\
         server memory fills, and completion counts collapse — policies that pile\n\
         work on the fast (memory-limited) servers collapse first; MCT's retry loop\n\
         (NetSolve fault tolerance) is the main survival lever, as in Table 6."
    );
}

/// Shard-count sweep: the same bursty campaign on a synthetic farm,
/// through the single agent and through federations of growing width.
/// Charts completion, mean stretch, wall time (skyline merge and eager
/// merge) and the skyline's skipped-shard rate per shard count — the
/// quality side of the federation (`--shards N` must not move the
/// metrics, skyline-on must equal skyline-off exactly) next to its cost
/// side (`BENCH_scale.json`'s sharding section).
fn sweep_shards() {
    const SHARD_COUNTS: [Sharding; 5] = [
        Sharding::Single,
        Sharding::Federated { shards: 1 },
        Sharding::Federated { shards: 2 },
        Sharding::Federated { shards: 4 },
        Sharding::Federated { shards: 8 },
    ];
    let platform = SyntheticPlatform {
        n_servers: 256,
        heterogeneity: 4.0,
        n_problems: 3,
        base_cost: 15.0,
        cost_spread: 3.0,
        comm_fraction: 0.02,
        mem_fraction: 0.0,
    };
    let seed = 0x5EED_u64;
    let costs = platform.cost_table(seed);
    let servers = platform.servers(seed);
    let capacity = aggregate_capacity(&costs);
    let base_rate = 2.0 * (0.5 * capacity) / (1.0 + 4.0);
    let tasks = BurstArrivals {
        n_tasks: 20_000,
        base_rate,
        peak_rate: 4.0 * base_rate,
        period: 1800.0,
        n_problems: platform.n_problems,
    }
    .generate(seed);
    let mut table = Table::new(
        format!(
            "Shard sweep: 256 servers, 20k bursty tasks, HMCT + adaptive:8:64              (capacity {capacity:.3}/s)"
        ),
        vec![
            "completed".into(),
            "meanstretch".into(),
            "maxstretch".into(),
            "wall s".into(),
            "eager s".into(),
            "skip %".into(),
        ],
    );
    // One campaign through the world directly (not the runner) so the
    // router's skyline counters are readable afterwards.
    let run = |cfg: middleware::ExperimentConfig| {
        let world = middleware::GridWorld::new(cfg, costs.clone(), servers.clone(), tasks.clone());
        let mut sim = cas_sim::Simulation::new(world);
        let start = std::time::Instant::now();
        let _ = sim.run_to_completion();
        let wall = start.elapsed().as_secs_f64();
        let world = sim.into_world();
        let skip = world.agent().skyline_stats().skip_rate();
        (world.records().to_vec(), wall, skip)
    };
    for sharding in SHARD_COUNTS {
        let cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, seed)
            .with_selector(SelectorKind::Adaptive {
                k_min: 8,
                k_max: 64,
            })
            .with_shards(sharding);
        let (recs, wall, skip) = run(cfg);
        let (eager_recs, eager_wall, _) = run(cfg.with_skyline(false));
        assert_eq!(
            recs, eager_recs,
            "{sharding:?}: skyline on/off must be record-identical"
        );
        let m = MetricSet::compute(&recs);
        let label = match sharding {
            Sharding::Single => "single agent".to_string(),
            Sharding::Auto { .. } => "auto".to_string(),
            Sharding::Federated { shards } => format!("{shards} shard(s)"),
        };
        table.push_row_f64(
            label,
            &[
                m.completed as f64,
                m.meanstretch,
                m.maxstretch,
                wall,
                eager_wall,
                100.0 * skip,
            ],
            3,
        );
    }
    println!("{}", table.render());
    println!(
        "The single-agent row and the 1-shard row must agree exactly (the S = 1
         invariant), and every row is asserted record-identical between the
         skyline merge (`wall s`) and the eager scatter (`eager s`) — `skip %`
         is the fraction of shard walks the skyline avoided. Wider federations
         may move placements slightly (each shard adapts its own stage-1 width)
         but completion and stretch stay flat."
    );
}

/// Churn sweep: the living-farm chart — completion rate, re-dispatch
/// pressure and tail stretch as the fault rate grows, per heuristic ×
/// selector backend. The `inf` row is asserted bit-identical to a run
/// with the churn machinery absent entirely (switching it on must be
/// invisible), so the remaining rows chart the cost of the *faults*,
/// never of the subsystem.
fn sweep_churn() {
    const MTBFS: [f64; 4] = [f64::INFINITY, 2000.0, 500.0, 125.0];
    const MTTR: f64 = 60.0;
    const COMBOS: [(HeuristicKind, &str, SelectorKind); 4] = [
        (HeuristicKind::Hmct, "exhaustive", SelectorKind::Exhaustive),
        (
            HeuristicKind::Hmct,
            "adaptive:4:16",
            SelectorKind::Adaptive {
                k_min: 4,
                k_max: 16,
            },
        ),
        (HeuristicKind::Mct, "exhaustive", SelectorKind::Exhaustive),
        (
            HeuristicKind::Mct,
            "adaptive:4:16",
            SelectorKind::Adaptive {
                k_min: 4,
                k_max: 16,
            },
        ),
    ];
    let platform = SyntheticPlatform {
        n_servers: 64,
        heterogeneity: 4.0,
        n_problems: 3,
        base_cost: 15.0,
        cost_spread: 3.0,
        comm_fraction: 0.02,
        mem_fraction: 0.0,
    };
    let seed = 0x5EED_u64;
    let costs = platform.cost_table(seed);
    let servers = platform.servers(seed);
    let capacity = aggregate_capacity(&costs);
    let n_tasks = 4000;
    let tasks = MetataskSpec {
        n_tasks,
        // Half of aggregate capacity: enough headroom that drops measure
        // fault pressure, not baseline overload.
        mean_gap: 2.0 / capacity,
        ..MetataskSpec::paper(1.0)
    }
    .generate(seed);
    let run = |cfg: middleware::ExperimentConfig| {
        let world = middleware::GridWorld::new(cfg, costs.clone(), servers.clone(), tasks.clone());
        let mut sim = cas_sim::Simulation::new(world);
        let _ = sim.run_to_completion();
        let world = sim.into_world();
        (world.records().to_vec(), world.churn_stats())
    };
    for (kind, sel_name, selector) in COMBOS {
        let base = ExperimentConfig::ideal(kind, seed)
            .with_selector(selector)
            .with_shards(Sharding::Federated { shards: 4 });
        let (frozen, _) = run(base);
        let mut table = Table::new(
            format!(
                "Churn sweep: 64 servers, 4k tasks, {} + {sel_name}, mttr {MTTR} s",
                kind.name()
            ),
            vec![
                "completed %".into(),
                "redispatch".into(),
                "dropped".into(),
                "crashes".into(),
                "p99 stretch".into(),
            ],
        );
        for mtbf in MTBFS {
            let cfg = base.with_churn(mtbf, MTTR).with_churn_seed(7);
            let (recs, stats) = run(cfg);
            if mtbf.is_infinite() {
                assert_eq!(
                    recs,
                    frozen,
                    "{}/{sel_name}: mtbf = inf must be bit-identical to the frozen farm",
                    kind.name()
                );
            }
            let mut stretches: Vec<f64> = recs.iter().filter_map(|r| r.stretch()).collect();
            stretches.sort_by(|a, b| a.partial_cmp(b).expect("stretches are finite"));
            let p99 = if stretches.is_empty() {
                f64::NAN
            } else {
                stretches
                    [((stretches.len() as f64 * 0.99).ceil() as usize - 1).min(stretches.len() - 1)]
            };
            let completed = recs.iter().filter(|r| r.is_completed()).count();
            let label = if mtbf.is_infinite() {
                "mtbf   inf".to_string()
            } else {
                format!("mtbf {mtbf:>5.0}")
            };
            table.push_row_f64(
                label,
                &[
                    100.0 * completed as f64 / n_tasks as f64,
                    stats.redispatches as f64,
                    stats.drops as f64,
                    stats.crashes as f64,
                    p99,
                ],
                2,
            );
        }
        println!("{}", table.render());
        println!();
    }
    println!(
        "Each table holds one heuristic x selector pair; rows shorten the mean\n\
         uptime (exponential MTBF per server, repairs exponential at 60 s). The\n\
         inf row is asserted bit-identical to the frozen farm. As faults\n\
         accelerate, crashed placements are retracted and re-dispatched with\n\
         backoff; completion erodes only once the re-dispatch budget (8) is\n\
         consumed, and the stretch tail charts the queueing cost of retries."
    );
}

/// Trace sweep: a fitted three-app trace whose burst class submits
/// faster than the admission gate can drain, per heuristic × selector.
/// Before each contended run the *uncontended* gate (capacity ≥ n) is
/// asserted bit-identical to no gate at all, so the SLO tables chart the
/// cost of the overload, never of the subsystem.
fn sweep_trace() {
    const COMBOS: [(HeuristicKind, &str, SelectorKind); 4] = [
        (HeuristicKind::Hmct, "exhaustive", SelectorKind::Exhaustive),
        (
            HeuristicKind::Hmct,
            "adaptive:4:16",
            SelectorKind::Adaptive {
                k_min: 4,
                k_max: 16,
            },
        ),
        (HeuristicKind::Mct, "exhaustive", SelectorKind::Exhaustive),
        (
            HeuristicKind::Mct,
            "adaptive:4:16",
            SelectorKind::Adaptive {
                k_min: 4,
                k_max: 16,
            },
        ),
    ];
    // Three user classes: steady background, a crest that outruns the
    // gate, and a sparse long-job class that must not starve under the
    // round-robin dequeue.
    let spec = FittedTraceSpec {
        apps: vec![
            AppProfile {
                user: 0,
                n_tasks: 400,
                mean_gap_s: 8.0,
                mean_duration_s: 10.0,
            },
            AppProfile {
                user: 1,
                n_tasks: 800,
                mean_gap_s: 0.8,
                mean_duration_s: 10.0,
            },
            AppProfile {
                user: 2,
                n_tasks: 60,
                mean_gap_s: 50.0,
                mean_duration_s: 30.0,
            },
        ],
    };
    let seed = 0x5EED_u64;
    let mut trace = spec.generate(seed);
    let c = TraceWorkload {
        n_servers: 8,
        ..TraceWorkload::default()
    }
    .compile(&mut trace, seed)
    .expect("fitted trace is non-empty");
    let n = c.tasks.len();
    // The contended gate: 8 concurrent admissions at ~10 s mean demand
    // drains ~0.8 tasks/s against a crest of ~1.25/s — it must shed.
    let (cap, buf, deadline) = (8usize, 32usize, 60.0f64);
    for (kind, sel_name, selector) in COMBOS {
        let base = ExperimentConfig::ideal(kind, seed).with_selector(selector);
        let plain = run_experiment(base, c.costs.clone(), c.servers.clone(), c.tasks.clone());
        let (unc, unc_stats, _) = run_experiment_with_users(
            base.with_admission(n + 1, 1, 1.0),
            c.costs.clone(),
            c.servers.clone(),
            c.tasks.clone(),
            c.users.clone(),
        );
        assert_eq!(
            plain,
            unc,
            "{}/{sel_name}: an uncontended gate must be bit-invisible",
            kind.name()
        );
        assert_eq!(unc_stats.buffered, 0, "uncontended gate must never buffer");
        let (recs, stats, waits) = run_experiment_with_users(
            base.with_admission(cap, buf, deadline),
            c.costs.clone(),
            c.servers.clone(),
            c.tasks.clone(),
            c.users.clone(),
        );
        let mut table = Table::new(
            format!(
                "Trace sweep: {n} tasks / 3 classes, {} + {sel_name}, admission {cap}:{buf}:{deadline}",
                kind.name()
            ),
            vec![
                "tasks".into(),
                "completed".into(),
                "drop %".into(),
                "p50 stretch".into(),
                "p99 stretch".into(),
                "buffered s".into(),
            ],
        );
        for class in per_class_slo(&recs, &c.users, &waits) {
            table.push_row_f64(
                format!("user {}", class.user),
                &[
                    class.tasks as f64,
                    class.completed as f64,
                    class.drop_rate_pct,
                    class.p50_stretch.unwrap_or(f64::NAN),
                    class.p99_stretch.unwrap_or(f64::NAN),
                    class.mean_buffered_s,
                ],
                2,
            );
        }
        println!("{}", table.render());
        println!(
            "  peak admitted {} / buffered {}; sheds: {} deadline + {} overflow; reentries {}",
            stats.peak_admitted,
            stats.peak_buffered,
            stats.shed_deadline,
            stats.shed_overflow,
            stats.reentries
        );
        println!();
    }
    println!(
        "Class 1 is the crest: its arrival rate outruns the gate's drain rate, so\n\
         its drop rate and buffered time dominate while the round-robin dequeue\n\
         keeps classes 0 and 2 near their uncontended stretch. Every table rides\n\
         on the asserted invariant that an uncontended gate changes nothing."
    );
}

fn main() {
    let scenario = std::env::args().nth(1).unwrap_or_else(|| "rate".into());
    match scenario.as_str() {
        "rate" => sweep_rate(),
        // `burst` charts both halves of the story: degradation at fixed
        // mean load, then the completion collapse past aggregate capacity.
        "burst" => {
            sweep_burst();
            sweep_crest();
        }
        "crest" => sweep_crest(),
        // Shard federation: quality and wall time versus shard count.
        "shards" => sweep_shards(),
        // The living farm: fault injection, retraction and re-dispatch.
        "churn" => sweep_churn(),
        // Trace replay: per-user-class SLOs under admission backpressure.
        "trace" => sweep_trace(),
        other => {
            eprintln!("unknown scenario {other} (rate|burst|crest|shards|churn|trace)");
            std::process::exit(2);
        }
    }
}

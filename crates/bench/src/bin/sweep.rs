//! Ablation A: heuristic ranking versus arrival rate.
//!
//! §5.3 argues MP is sub-optimal at low rates (it wastes fast servers on
//! idle slow ones) but strong at high rates, while MSF is never worse than
//! MCT at any rate. This sweep varies the mean inter-arrival gap over the
//! waste-cpu workload and prints sum-flow, max-stretch and completion
//! counts per heuristic, exposing the crossover the paper describes.

use cas_core::heuristics::HeuristicKind;
use cas_metrics::{MetricSet, Table};
use cas_middleware::{run_heuristic_matrix, ExperimentConfig};
use cas_workload::metatask::MetataskSpec;
use cas_workload::{testbed, wastecpu};

const GAPS: [f64; 6] = [8.0, 10.0, 12.0, 15.0, 20.0, 30.0];
const KINDS: [HeuristicKind; 6] = [
    HeuristicKind::Mct,
    HeuristicKind::Hmct,
    HeuristicKind::Mp,
    HeuristicKind::Msf,
    HeuristicKind::Mni,
    HeuristicKind::RoundRobin,
];

fn main() {
    let costs = wastecpu::cost_table();
    let servers = testbed::set2_servers();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    for metric in ["sumflow", "maxstretch", "meanflow", "completed"] {
        let mut table = Table::new(
            format!("Arrival-rate sweep, waste-cpu x 500 tasks: {metric}"),
            KINDS.iter().map(|k| k.name().to_string()).collect(),
        );
        for gap in GAPS {
            let tasks = MetataskSpec::paper(gap).generate(0x5EED);
            let workloads: Vec<_> = (0..2).map(|_| tasks.clone()).collect();
            let cfg = ExperimentConfig::paper(HeuristicKind::Mct, 0xF00D);
            let results = run_heuristic_matrix(cfg, &KINDS, &costs, &servers, &workloads, workers);
            let row: Vec<f64> = results
                .iter()
                .map(|r| {
                    let ms: Vec<MetricSet> = r.metrics();
                    ms.iter().filter_map(|m| m.by_name(metric)).sum::<f64>() / ms.len() as f64
                })
                .collect();
            table.push_row_f64(format!("gap {gap:>4.0} s"), &row, 1);
        }
        println!("{}", table.render());
        println!();
    }
    println!(
        "Expected shape (§5.3): MP's sum-flow is worst-or-near-worst at large gaps\n\
         (low rate) and competitive at small gaps; MSF tracks the best heuristic at\n\
         every rate; MCT degrades fastest as the gap shrinks."
    );
}

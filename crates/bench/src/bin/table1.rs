//! Reproduces Table 1: validation of the shared-resource model.
//!
//! The paper submits two small matmul metatasks to a time-shared server and
//! compares real completion dates against the HTM's simulated ones,
//! reporting per-task differences and a mean percentage error below 3 %.
//!
//! Here the "real environment" is the noisy ground-truth simulator
//! (DESIGN.md §2): CPU and link speeds fluctuate (log-normal, σ = 3 %)
//! while the HTM simulates from the noise-free static costs — the same
//! information asymmetry as paper-vs-testbed.

use cas_bench::paper::{TABLE1_MEAN_ERROR_PCT, TABLE1_METATASK_A, TABLE1_METATASK_B};
use cas_core::heuristics::HeuristicKind;
use cas_metrics::Table;
use cas_middleware::validate::{mean_error_pct, validation_report};
use cas_middleware::ExperimentConfig;
use cas_platform::{CostTable, ProblemId, TaskId, TaskInstance};
use cas_sim::SimTime;
use cas_workload::{matmul, testbed};

/// Builds a single-server metatask patterned on one of the paper's
/// validation runs: same arrival dates, same matrix sizes.
fn metatask(rows: &[(u64, f64, u32, f64, f64)]) -> Vec<TaskInstance> {
    let mut tasks: Vec<TaskInstance> = rows
        .iter()
        .map(|&(id, arrival, size, _, _)| {
            let problem = match size {
                1200 => ProblemId(0),
                1500 => ProblemId(1),
                1800 => ProblemId(2),
                other => panic!("unknown matrix size {other}"),
            };
            TaskInstance::new(TaskId(id - 1), problem, SimTime::from_secs(arrival))
        })
        .collect();
    tasks.sort_by_key(|t| t.arrival);
    // Re-number densely in arrival order (record indexing needs dense ids).
    for (i, t) in tasks.iter_mut().enumerate() {
        t.id = TaskId(i as u64);
    }
    tasks
}

/// Restricts the matmul cost table to a single server (artimon — the only
/// one whose Table 3 costs are commensurate with Table 1's durations).
fn single_server() -> (CostTable, Vec<cas_platform::ServerSpec>) {
    let full = matmul::cost_table();
    let artimon = cas_platform::ServerId(2);
    let mut costs = CostTable::new(1);
    for (i, size) in matmul::SIZES.iter().enumerate() {
        let pc = full
            .costs(ProblemId(i as u32), artimon)
            .expect("artimon solves all");
        let (input_mb, output_mb) = matmul::DATA_MB[i];
        costs.add_problem(
            cas_platform::Problem::new(
                format!("matmul-{size}"),
                input_mb,
                output_mb,
                input_mb + output_mb,
            ),
            vec![Some(pc)],
        );
    }
    (costs, vec![testbed::ARTIMON.spec()])
}

fn run_one(label: &str, rows: &[(u64, f64, u32, f64, f64)], seed: u64) -> f64 {
    let (costs, servers) = single_server();
    let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, seed);
    let report = validation_report(cfg, costs, servers, metatask(rows));
    let mut table = Table::new(
        format!("Table 1 reproduction — {label}"),
        vec![
            "arrival".into(),
            "real".into(),
            "simulated".into(),
            "difference".into(),
            "% error".into(),
        ],
    );
    for r in &report {
        table.push_row(
            format!("task {}", r.task + 1),
            vec![
                format!("{:.2}", r.arrival),
                format!("{:.2}", r.real),
                format!("{:.2}", r.simulated),
                format!("{:.2}", r.difference),
                format!("{:.1}", r.error_pct),
            ],
        );
    }
    println!("{}", table.render());
    let mean = mean_error_pct(&report);
    println!("mean error: {mean:.2} % (paper reports a mean below {TABLE1_MEAN_ERROR_PCT:.0} %)\n");
    mean
}

fn main() {
    println!("HTM model validation: noisy ground truth vs HTM simulation\n");
    let a = run_one("metatask A (3 tasks)", TABLE1_METATASK_A, 0xAB);
    let b = run_one("metatask B (9 tasks)", TABLE1_METATASK_B, 0xCD);
    let overall = (a * TABLE1_METATASK_A.len() as f64 + b * TABLE1_METATASK_B.len() as f64)
        / (TABLE1_METATASK_A.len() + TABLE1_METATASK_B.len()) as f64;
    println!("overall mean error: {overall:.2} %");
    if overall < TABLE1_MEAN_ERROR_PCT {
        println!("=> within the paper's 3 % validation envelope");
    } else {
        println!("=> OUTSIDE the paper's 3 % validation envelope");
    }
}

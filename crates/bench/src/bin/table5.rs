//! Reproduces Table 5: matmul metatask at the low arrival rate
//! (mean gap 20 s), heuristics MCT / HMCT / MP / MSF.

use cas_bench::paper::TABLE5;
use cas_bench::tables::{format_against_reference, run_table, TableSpec, Workload};

fn main() {
    let spec = TableSpec::new(Workload::Matmul, cas_workload::metatask::LOW_RATE_MEAN_GAP);
    let outcome = run_table(spec);
    let table = format_against_reference(
        &outcome,
        &TABLE5,
        "Table 5 reproduction: matmul, low rate (mean gap 20 s), 500 tasks",
    );
    println!("{}", table.render());
    println!("{}", cas_metrics::render_csv(&table));
}

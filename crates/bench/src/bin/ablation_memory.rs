//! Ablation C: memory-aware scheduling (the paper's future work §7).
//!
//! Reruns the Table 6 scenario (matmul, high rate, memory model on) with
//! the memory-aware wrappers M-HMCT / M-MSF next to their plain versions,
//! and with the harsher thrashing memory model that reproduces the paper's
//! larger completion losses. Expected: the veto recovers all 500
//! completions without giving up the sum-flow advantage.

use cas_core::heuristics::HeuristicKind;
use cas_metrics::{MetricSet, Table};
use cas_middleware::{run_experiment, ExperimentConfig};
use cas_platform::MemoryModel;
use cas_workload::metatask::MetataskSpec;
use cas_workload::{matmul, testbed};

const KINDS: [HeuristicKind; 5] = [
    HeuristicKind::Mct,
    HeuristicKind::Hmct,
    HeuristicKind::MemHmct,
    HeuristicKind::Msf,
    HeuristicKind::MemMsf,
];

fn run_with(memory: MemoryModel, title: &str) {
    let costs = matmul::cost_table();
    let servers = testbed::set1_servers();
    let mut table = Table::new(
        title.to_string(),
        KINDS.iter().map(|k| k.name().to_string()).collect(),
    );
    let mut grid: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for &kind in &KINDS {
        let mut completed = 0.0;
        let mut sumflow = 0.0;
        let mut maxstretch = 0.0f64;
        let mut attempts = 0.0;
        let n_seeds = 3;
        for seed in 0..n_seeds {
            let tasks = MetataskSpec::paper(15.0).generate(100 + seed);
            let mut cfg = ExperimentConfig::paper(kind, seed);
            cfg.memory = memory;
            let recs = run_experiment(cfg, costs.clone(), servers.clone(), tasks);
            let m = MetricSet::compute(&recs);
            completed += m.completed as f64;
            sumflow += m.sumflow;
            maxstretch = maxstretch.max(m.maxstretch);
            attempts += recs.iter().map(|r| r.attempts as f64).sum::<f64>();
        }
        grid[0].push(completed / n_seeds as f64);
        grid[1].push(sumflow / n_seeds as f64);
        grid[2].push(maxstretch);
        grid[3].push(attempts / n_seeds as f64 / 500.0);
    }
    table.push_row_f64("completed (of 500)", &grid[0], 1);
    table.push_row_f64("sumflow", &grid[1], 0);
    table.push_row_f64("maxstretch (worst seed)", &grid[2], 1);
    table.push_row_f64("mean attempts per task", &grid[3], 3);
    println!("{}", table.render());
    println!();
}

fn main() {
    run_with(
        MemoryModel::default(),
        "Table 6 scenario, default memory model (admission cap only)",
    );
    run_with(
        MemoryModel::thrashing(1.0, 64),
        "Table 6 scenario, thrashing memory model (paging slowdown + collapse)",
    );
    println!(
        "Reading: under the admission-cap model the M- veto recovers (nearly) all\n\
         completions using agent-side information only, first try — but pays for\n\
         it in sum-flow and stretch: vetoed tasks land on slow, roomy servers.\n\
         The residual sub-500 counts come from HTM drift under noise (the model\n\
         believes memory is free a little before/after reality). Under the\n\
         thrashing model the cap-based veto barely helps: the damage happens\n\
         *below* the admission limit, where paging slows the CPU — anticipating\n\
         it needs a tighter budget (MemAware::with_headroom), trading throughput\n\
         for survival. Memory-awareness is a real trade-off, not a free fix —\n\
         presumably why the paper left it as future work."
    );
}

//! # cas-bench — experiment harness
//!
//! One binary per paper table/figure (see DESIGN.md §4):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — HTM validation (real vs simulated completions) |
//! | `figure1` | Fig. 1 — Gantt chart before/after inserting a task |
//! | `table3` / `table4` | cost-table listings (workload definitions) |
//! | `table5` / `table6` | matmul metatasks at low/high rate |
//! | `table7` / `table8` | waste-cpu metatasks at low/high rate |
//! | `sweep` | ablation A — heuristic ranking vs arrival rate |
//! | `ablation_htm` | ablation B — prediction error vs noise & staleness |
//!
//! plus Criterion micro-benchmarks (`cargo bench -p cas-bench`) for the
//! scheduling decision cost (§5: "negligible … less than 0.01 second"),
//! HTM simulation throughput and the event queue.
//!
//! This library holds the code shared by the binaries: configured table
//! experiments, paper reference values, and result formatting.

pub mod paper;
pub mod tables;

pub use tables::{run_table, TableSpec, Workload};

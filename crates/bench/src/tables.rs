//! Shared experiment driver for the paper-table binaries.

use crate::paper::Reference;
use cas_core::heuristics::HeuristicKind;
use cas_metrics::{finish_sooner_count, MetricSet, Summary, Table, TaskRecord};
use cas_middleware::{run_heuristic_matrix, ExperimentConfig};
use cas_platform::{CostTable, ServerSpec};
use cas_workload::metatask::MetataskSpec;
use cas_workload::{matmul, testbed, wastecpu};

/// Which paper workload a table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Matrix multiplications on set-1 servers (Tables 5–6).
    Matmul,
    /// Waste-cpu tasks on set-2 servers (Tables 7–8).
    WasteCpu,
}

impl Workload {
    /// The workload's cost table.
    pub fn costs(self) -> CostTable {
        match self {
            Workload::Matmul => matmul::cost_table(),
            Workload::WasteCpu => wastecpu::cost_table(),
        }
    }

    /// The workload's server set.
    pub fn servers(self) -> Vec<ServerSpec> {
        match self {
            Workload::Matmul => testbed::set1_servers(),
            Workload::WasteCpu => testbed::set2_servers(),
        }
    }
}

/// Specification of one paper-table experiment.
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    /// Workload family.
    pub workload: Workload,
    /// Mean inter-arrival gap, seconds (20 = low rate, 15 = high rate).
    pub mean_gap: f64,
    /// Number of distinct metatasks (the paper generated three per set).
    pub n_metatasks: usize,
    /// Replications of each metatask (noise seeds).
    pub n_replications: usize,
    /// Base experiment seed.
    pub seed: u64,
}

impl TableSpec {
    /// Defaults mirroring the paper's setup: 3 metatasks × 3 replications.
    pub fn new(workload: Workload, mean_gap: f64) -> Self {
        TableSpec {
            workload,
            mean_gap,
            n_metatasks: 3,
            n_replications: 3,
            seed: 0xCA5,
        }
    }
}

/// The outcome of a table experiment: per heuristic, per metatask, per
/// replication records; plus the MCT baseline runs for the "sooner" row.
pub struct TableOutcome {
    /// The spec that produced this.
    pub spec: TableSpec,
    /// `runs[h][m][r]` = records of heuristic `h`, metatask `m`,
    /// replication `r`.
    pub runs: Vec<(HeuristicKind, Vec<Vec<Vec<TaskRecord>>>)>,
}

impl TableOutcome {
    /// Mean of a metric over all (metatask, replication) runs of one
    /// heuristic.
    pub fn mean_metric(&self, kind: HeuristicKind, name: &str) -> f64 {
        let (_, runs) = self
            .runs
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("heuristic present");
        let values: Vec<f64> = runs
            .iter()
            .flatten()
            .filter_map(|r| MetricSet::compute(r).by_name(name))
            .collect();
        Summary::of(&values).map(|s| s.mean).unwrap_or(0.0)
    }

    /// Mean "number of tasks that finish sooner than with MCT" for one
    /// heuristic: pairwise over matching (metatask, replication) runs, as
    /// the paper does ("the mean of the values obtained from the comparison
    /// between each run for this heuristic and each run for NetSolve").
    pub fn mean_sooner(&self, kind: HeuristicKind) -> f64 {
        let (_, base) = self
            .runs
            .iter()
            .find(|(k, _)| *k == HeuristicKind::Mct)
            .expect("MCT baseline present");
        let (_, cand) = self
            .runs
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("heuristic present");
        let mut counts = Vec::new();
        for (bm, cm) in base.iter().zip(cand) {
            for b in bm {
                for c in cm {
                    counts.push(finish_sooner_count(c, b) as f64);
                }
            }
        }
        Summary::of(&counts).map(|s| s.mean).unwrap_or(0.0)
    }
}

/// Runs a full paper-table experiment.
pub fn run_table(spec: TableSpec) -> TableOutcome {
    let costs = spec.workload.costs();
    let servers = spec.workload.servers();
    // One workload list per (metatask, replication): the same metatask is
    // repeated `n_replications` times so noise seeds differ per run.
    let metatasks: Vec<Vec<_>> = (0..spec.n_metatasks)
        .map(|m| MetataskSpec::paper(spec.mean_gap).generate(spec.seed ^ (m as u64 + 1)))
        .collect();
    let runs = HeuristicKind::PAPER
        .iter()
        .map(|&kind| {
            let per_metatask: Vec<Vec<Vec<TaskRecord>>> = metatasks
                .iter()
                .map(|tasks| {
                    let workloads: Vec<_> =
                        (0..spec.n_replications).map(|_| tasks.clone()).collect();
                    let cfg = ExperimentConfig::paper(kind, spec.seed);
                    run_heuristic_matrix(cfg, &[kind], &costs, &servers, &workloads)
                        .remove(0)
                        .runs
                })
                .collect();
            (kind, per_metatask)
        })
        .collect();
    TableOutcome { spec, runs }
}

/// Formats a [`TableOutcome`] in the paper's layout, with the paper's
/// reference values interleaved (`ours / paper`).
pub fn format_against_reference(
    outcome: &TableOutcome,
    reference: &Reference,
    title: &str,
) -> Table {
    let columns = HeuristicKind::PAPER
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    let mut table = Table::new(title, columns);
    for (metric, paper_vals) in reference.rows {
        let cells = HeuristicKind::PAPER
            .iter()
            .zip(paper_vals.iter())
            .map(|(&k, p)| {
                if *metric == "sooner" && k == HeuristicKind::Mct {
                    // The baseline compared against itself is meaningless;
                    // the paper prints a dash.
                    return "- / -".to_string();
                }
                let o = match *metric {
                    "sooner" => outcome.mean_sooner(k),
                    m => outcome.mean_metric(k, m),
                };
                if p.is_nan() {
                    format!("{o:.1} / -")
                } else {
                    format!("{o:.1} / {p:.1}")
                }
            })
            .collect();
        table.push_row(format!("{metric} (ours/paper)"), cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature table run (few tasks) to keep the test fast while
    /// exercising the whole pipeline.
    fn mini_spec() -> TableSpec {
        TableSpec {
            workload: Workload::WasteCpu,
            mean_gap: 20.0,
            n_metatasks: 1,
            n_replications: 1,
            seed: 7,
        }
    }

    #[test]
    fn run_table_produces_all_heuristics() {
        // Shrink the metatask by monkey-patching via a tiny gap count:
        // run_table always uses 500-task paper metatasks, so this test is
        // the one slow-ish test of the crate (~1 s in debug).
        let outcome = run_table(mini_spec());
        assert_eq!(outcome.runs.len(), 4);
        for (kind, runs) in &outcome.runs {
            assert_eq!(runs.len(), 1, "{kind:?}");
            assert_eq!(runs[0].len(), 1);
            assert_eq!(runs[0][0].len(), 500);
        }
        let mct_makespan = outcome.mean_metric(HeuristicKind::Mct, "makespan");
        assert!(mct_makespan > 5_000.0);
        let sooner = outcome.mean_sooner(HeuristicKind::Msf);
        assert!(sooner > 100.0, "MSF sooner = {sooner}");
    }

    #[test]
    fn format_produces_full_grid() {
        let outcome = run_table(mini_spec());
        let t = format_against_reference(&outcome, &crate::paper::TABLE7, "test");
        assert_eq!(t.rows.len(), 6);
        assert!(t.render().contains('/'));
    }
}

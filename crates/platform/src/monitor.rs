//! Load monitoring: the dynamic information of §2.2.
//!
//! NetSolve servers run their own monitors and periodically report to the
//! agent. The quantity reported is the UNIX load average — an exponentially
//! damped moving average of the run-queue length. Two consequences matter
//! for the experiments:
//!
//! * the load average *lags* the true run-queue (a one-minute time constant
//!   means a just-assigned task barely moves the number), and
//! * reports arrive *periodically*, so the agent's picture is stale between
//!   reports.
//!
//! Both effects blur MCT's decisions ("as there are dynamic information and
//! as the evolution of the load average is not necessarily exactly the same
//! on the two machines, the decision is blurred", §2.3) and are exactly what
//! the HTM eliminates. NetSolve compensates with two *load-correction
//! mechanisms* (§5.3), implemented in [`LoadReport`]:
//! an assignment bump (the agent notes a task it just mapped before the next
//! report shows it) and a completion message (the server tells the agent a
//! task finished).

use crate::ids::ServerId;
use cas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Exponentially damped load average, UNIX style.
///
/// `load(t + dt) = load(t) * exp(-dt/tau) + n * (1 - exp(-dt/tau))`
/// where `n` is the current run-queue length.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadAverage {
    tau: f64,
    value: f64,
    updated_at: SimTime,
}

impl LoadAverage {
    /// Creates a monitor with time constant `tau` seconds (UNIX's 1-minute
    /// average uses `tau = 60`).
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0 && tau.is_finite());
        LoadAverage {
            tau,
            value: 0.0,
            updated_at: SimTime::ZERO,
        }
    }

    /// Advances to `now` with the run-queue length that has held since the
    /// last update, then returns the damped value.
    pub fn observe(&mut self, now: SimTime, run_queue_len: usize) -> f64 {
        assert!(now >= self.updated_at, "monitor cannot rewind");
        let dt = (now - self.updated_at).as_secs();
        let decay = (-dt / self.tau).exp();
        self.value = self.value * decay + run_queue_len as f64 * (1.0 - decay);
        self.updated_at = now;
        self.value
    }

    /// Current damped value without advancing.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// The agent's record of one server's dynamic information.
///
/// Combines the last periodic report with NetSolve's two load-correction
/// mechanisms: a per-assignment bump and completion notifications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Which server this describes.
    pub server: ServerId,
    /// Load average carried by the last periodic report.
    pub reported_load: f64,
    /// When that report was generated.
    pub reported_at: SimTime,
    /// Tasks the agent has mapped there since the report (correction 1:
    /// "tries to take note of the allocation of a task to a server").
    pub assigned_since_report: u32,
    /// Tasks the server has announced finished since the report
    /// (correction 2: "a message sent by the server when a task finishes").
    pub finished_since_report: u32,
}

impl LoadReport {
    /// An initial, empty record (idle server, never reported).
    pub fn initial(server: ServerId) -> Self {
        LoadReport {
            server,
            reported_load: 0.0,
            reported_at: SimTime::ZERO,
            assigned_since_report: 0,
            finished_since_report: 0,
        }
    }

    /// Installs a fresh periodic report, resetting both corrections.
    pub fn refresh(&mut self, now: SimTime, load: f64) {
        self.reported_load = load;
        self.reported_at = now;
        self.assigned_since_report = 0;
        self.finished_since_report = 0;
    }

    /// Correction 1: the agent just mapped a task here.
    pub fn note_assignment(&mut self) {
        self.assigned_since_report += 1;
    }

    /// Correction 2: the server says a task finished.
    pub fn note_completion(&mut self) {
        self.finished_since_report += 1;
    }

    /// The agent's best estimate of the current load: last reported value
    /// plus assignments, minus completions, floored at zero.
    pub fn corrected_load(&self) -> f64 {
        (self.reported_load + self.assigned_since_report as f64 - self.finished_since_report as f64)
            .max(0.0)
    }

    /// Age of the underlying periodic report.
    pub fn staleness(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.reported_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn load_average_converges_to_run_queue() {
        let mut la = LoadAverage::new(60.0);
        // Hold run-queue at 3 for a long time: value → 3.
        let v = la.observe(t(600.0), 3);
        assert!((v - 3.0).abs() < 1e-3, "v = {v}"); // e^-10 residue
    }

    #[test]
    fn load_average_lags() {
        let mut la = LoadAverage::new(60.0);
        la.observe(t(600.0), 0); // settle at 0
                                 // Run-queue jumps to 4; after one tau it's only ~63% there.
        let v = la.observe(t(660.0), 4);
        assert!(v > 2.4 && v < 2.7, "v = {v}");
    }

    #[test]
    fn load_average_decays_when_idle() {
        let mut la = LoadAverage::new(60.0);
        la.observe(t(600.0), 5);
        let v = la.observe(t(660.0), 0);
        assert!(v > 1.7 && v < 2.0, "v = {v}"); // 5 * e^-1 ≈ 1.84
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn monitor_rewind_panics() {
        let mut la = LoadAverage::new(60.0);
        la.observe(t(10.0), 1);
        la.observe(t(5.0), 1);
    }

    #[test]
    fn corrections_adjust_reported_load() {
        let mut r = LoadReport::initial(ServerId(0));
        r.refresh(t(100.0), 2.0);
        assert_eq!(r.corrected_load(), 2.0);
        r.note_assignment();
        r.note_assignment();
        assert_eq!(r.corrected_load(), 4.0);
        r.note_completion();
        assert_eq!(r.corrected_load(), 3.0);
    }

    #[test]
    fn corrected_load_floors_at_zero() {
        let mut r = LoadReport::initial(ServerId(0));
        r.refresh(t(0.0), 0.5);
        r.note_completion();
        r.note_completion();
        assert_eq!(r.corrected_load(), 0.0);
    }

    #[test]
    fn refresh_resets_corrections() {
        let mut r = LoadReport::initial(ServerId(1));
        r.note_assignment();
        r.refresh(t(50.0), 1.0);
        assert_eq!(r.assigned_since_report, 0);
        assert_eq!(r.corrected_load(), 1.0);
        assert_eq!(r.staleness(t(80.0)), t(30.0));
    }
}

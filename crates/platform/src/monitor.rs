//! Load monitoring: the dynamic information of §2.2.
//!
//! NetSolve servers run their own monitors and periodically report to the
//! agent. The quantity reported is the UNIX load average — an exponentially
//! damped moving average of the run-queue length. Two consequences matter
//! for the experiments:
//!
//! * the load average *lags* the true run-queue (a one-minute time constant
//!   means a just-assigned task barely moves the number), and
//! * reports arrive *periodically*, so the agent's picture is stale between
//!   reports.
//!
//! Both effects blur MCT's decisions ("as there are dynamic information and
//! as the evolution of the load average is not necessarily exactly the same
//! on the two machines, the decision is blurred", §2.3) and are exactly what
//! the HTM eliminates. NetSolve compensates with two *load-correction
//! mechanisms* (§5.3), implemented in [`LoadReport`]:
//! an assignment bump (the agent notes a task it just mapped before the next
//! report shows it) and a completion message (the server tells the agent a
//! task finished).

use crate::ids::ServerId;
use cas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Exponentially damped load average, UNIX style.
///
/// `load(t + dt) = load(t) * exp(-dt/tau) + n * (1 - exp(-dt/tau))`
/// where `n` is the current run-queue length.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadAverage {
    tau: f64,
    value: f64,
    updated_at: SimTime,
}

impl LoadAverage {
    /// Creates a monitor with time constant `tau` seconds (UNIX's 1-minute
    /// average uses `tau = 60`).
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0 && tau.is_finite());
        LoadAverage {
            tau,
            value: 0.0,
            updated_at: SimTime::ZERO,
        }
    }

    /// Advances to `now` with the run-queue length that has held since the
    /// last update, then returns the damped value.
    pub fn observe(&mut self, now: SimTime, run_queue_len: usize) -> f64 {
        assert!(now >= self.updated_at, "monitor cannot rewind");
        let dt = (now - self.updated_at).as_secs();
        let decay = (-dt / self.tau).exp();
        self.value = self.value * decay + run_queue_len as f64 * (1.0 - decay);
        self.updated_at = now;
        self.value
    }

    /// Current damped value without advancing.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// The agent's record of one server's dynamic information.
///
/// Combines the last periodic report with NetSolve's two load-correction
/// mechanisms: a per-assignment bump and completion notifications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Which server this describes.
    pub server: ServerId,
    /// Load average carried by the last periodic report.
    pub reported_load: f64,
    /// When that report was generated.
    pub reported_at: SimTime,
    /// Tasks the agent has mapped there since the report (correction 1:
    /// "tries to take note of the allocation of a task to a server").
    pub assigned_since_report: u32,
    /// Tasks the server has announced finished since the report
    /// (correction 2: "a message sent by the server when a task finishes").
    pub finished_since_report: u32,
}

impl LoadReport {
    /// An initial, empty record (idle server, never reported).
    pub fn initial(server: ServerId) -> Self {
        LoadReport {
            server,
            reported_load: 0.0,
            reported_at: SimTime::ZERO,
            assigned_since_report: 0,
            finished_since_report: 0,
        }
    }

    /// Installs a fresh periodic report, resetting both corrections.
    pub fn refresh(&mut self, now: SimTime, load: f64) {
        self.reported_load = load;
        self.reported_at = now;
        self.assigned_since_report = 0;
        self.finished_since_report = 0;
    }

    /// Correction 1: the agent just mapped a task here.
    pub fn note_assignment(&mut self) {
        self.assigned_since_report += 1;
    }

    /// Correction 2: the server says a task finished.
    pub fn note_completion(&mut self) {
        self.finished_since_report += 1;
    }

    /// The agent's best estimate of the current load: last reported value
    /// plus assignments, minus completions, floored at zero.
    pub fn corrected_load(&self) -> f64 {
        (self.reported_load + self.assigned_since_report as f64 - self.finished_since_report as f64)
            .max(0.0)
    }

    /// Age of the underlying periodic report.
    pub fn staleness(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.reported_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn load_average_converges_to_run_queue() {
        let mut la = LoadAverage::new(60.0);
        // Hold run-queue at 3 for a long time: value → 3.
        let v = la.observe(t(600.0), 3);
        assert!((v - 3.0).abs() < 1e-3, "v = {v}"); // e^-10 residue
    }

    #[test]
    fn load_average_lags() {
        let mut la = LoadAverage::new(60.0);
        la.observe(t(600.0), 0); // settle at 0
                                 // Run-queue jumps to 4; after one tau it's only ~63% there.
        let v = la.observe(t(660.0), 4);
        assert!(v > 2.4 && v < 2.7, "v = {v}");
    }

    #[test]
    fn load_average_decays_when_idle() {
        let mut la = LoadAverage::new(60.0);
        la.observe(t(600.0), 5);
        let v = la.observe(t(660.0), 0);
        assert!(v > 1.7 && v < 2.0, "v = {v}"); // 5 * e^-1 ≈ 1.84
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn monitor_rewind_panics() {
        let mut la = LoadAverage::new(60.0);
        la.observe(t(10.0), 1);
        la.observe(t(5.0), 1);
    }

    #[test]
    fn corrections_adjust_reported_load() {
        let mut r = LoadReport::initial(ServerId(0));
        r.refresh(t(100.0), 2.0);
        assert_eq!(r.corrected_load(), 2.0);
        r.note_assignment();
        r.note_assignment();
        assert_eq!(r.corrected_load(), 4.0);
        r.note_completion();
        assert_eq!(r.corrected_load(), 3.0);
    }

    #[test]
    fn corrected_load_floors_at_zero() {
        let mut r = LoadReport::initial(ServerId(0));
        r.refresh(t(0.0), 0.5);
        r.note_completion();
        r.note_completion();
        assert_eq!(r.corrected_load(), 0.0);
    }

    #[test]
    fn refresh_resets_corrections() {
        let mut r = LoadReport::initial(ServerId(1));
        r.note_assignment();
        r.refresh(t(50.0), 1.0);
        assert_eq!(r.assigned_since_report, 0);
        assert_eq!(r.corrected_load(), 1.0);
        assert_eq!(r.staleness(t(80.0)), t(30.0));
    }

    /// Completion messages can overtake the agent's own assignment notes
    /// (a fast task finishes before the agent processes the next
    /// arrival): the corrections must stay consistent whichever order
    /// the events land in, and never push the estimate negative.
    #[test]
    fn corrections_are_order_independent_and_floored() {
        let mut in_order = LoadReport::initial(ServerId(0));
        let mut out_of_order = LoadReport::initial(ServerId(0));
        for r in [&mut in_order, &mut out_of_order] {
            r.refresh(t(10.0), 1.0);
        }
        // In order: assign, assign, complete, complete, complete.
        for _ in 0..2 {
            in_order.note_assignment();
        }
        for _ in 0..3 {
            in_order.note_completion();
        }
        // Out of order: completions arrive first.
        for _ in 0..3 {
            out_of_order.note_completion();
        }
        for _ in 0..2 {
            out_of_order.note_assignment();
        }
        assert_eq!(in_order.corrected_load(), out_of_order.corrected_load());
        assert_eq!(in_order.corrected_load(), 0.0, "floored, 1 + 2 - 3 = 0");
    }

    /// Sampling the damped average many times at one instant must be
    /// idempotent — zero elapsed time decays nothing and integrates
    /// nothing, whatever the run-queue argument claims in between.
    #[test]
    fn same_instant_observations_are_idempotent() {
        let mut la = LoadAverage::new(60.0);
        la.observe(t(100.0), 2);
        let v1 = la.observe(t(200.0), 2);
        // Same instant, different queue lengths: dt = 0 ⇒ no change.
        let v2 = la.observe(t(200.0), 7);
        let v3 = la.observe(t(200.0), 0);
        assert_eq!(v1, v2);
        assert_eq!(v2, v3);
        assert_eq!(la.value(), v1);
    }

    /// A monitor sampled twice over a split interval must agree with one
    /// sampled once over the whole interval when the run-queue held
    /// constant — the exponential damping composes.
    #[test]
    fn split_interval_composes() {
        let mut split = LoadAverage::new(60.0);
        let mut whole = LoadAverage::new(60.0);
        split.observe(t(30.0), 4);
        split.observe(t(90.0), 4);
        let a = split.observe(t(120.0), 4);
        whole.observe(t(30.0), 4);
        let b = whole.observe(t(120.0), 4);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    /// Staleness of a never-refreshed report is the full elapsed time,
    /// and `saturating_sub` keeps it sane for clocks at zero.
    #[test]
    fn staleness_of_initial_report() {
        let r = LoadReport::initial(ServerId(3));
        assert_eq!(r.staleness(t(75.0)), t(75.0));
        assert_eq!(r.staleness(SimTime::ZERO), SimTime::ZERO);
    }
}

//! The incrementally maintained stage-1 placement index.
//!
//! At 1k servers the HTM heuristics' one-speculative-drain-per-candidate
//! fan-out dominates every scheduling decision. The cure is the standard
//! two-stage pipeline: a cheap *static* filter proposes a shortlist, the
//! expensive model scores only the shortlist. [`StaticIndex`] is that
//! filter's data structure: for every problem it keeps the solvable
//! servers ordered by a static completion proxy, selectable via
//! [`IndexScoring`]:
//!
//! ```text
//! RemainingWork:  score(p, s) = d(p, s) + remaining(s)
//! ActiveCount:    score(p, s) = d(p, s) · (active(s) + 1)
//! ```
//!
//! `remaining(s)` is the work still in flight on the server — each
//! commit charges the task's service demand (its unloaded duration,
//! recorded at commit time), each completion pays it back — so on
//! heterogeneous task mixes a server carrying one long task no longer
//! outranks one carrying two short ones. Service demands, unlike
//! predicted residence times, sum to exactly the serial drain time of
//! the backlog (residence includes queueing delay and would count the
//! queue once per queued task); `d + remaining` is then the classic "my
//! cost after the queue drains" proxy. `ActiveCount` is the original count-based scorer (unloaded
//! duration stretched by the believed in-flight count, the CPU-sharing
//! intuition of the NetSolve estimate) and stays available behind the
//! experiment-config flag as the comparison baseline.
//!
//! The index is **incremental**: the per-server believed load changes only
//! on [`StaticIndex::on_commit`] / [`StaticIndex::on_retract`] /
//! [`StaticIndex::on_complete`] hooks, and each hook re-ranks exactly one
//! server in each problem's ordered set (`O(problems · log servers)`).
//! A k-best query walks the head of one ordered set — no O(n) rescan of
//! server state happens per arrival.
//!
//! Scores are ordered by their IEEE-754 bit patterns (valid because scores
//! are non-negative finite), with the server id as tie-break, so every
//! ordering question has one deterministic answer.

use crate::cost::CostTable;
use crate::ids::{ProblemId, ServerId};
use std::collections::BTreeSet;

/// Ordered key of one server inside one problem's ranking: score bits,
/// then server id (deterministic total order).
type RankKey = (u64, u32);

/// The one definition of the stage-1 completion proxy. `score`, the
/// ranked-set keys inserted by `rerank`, and every hook must agree bit
/// for bit — a removal keyed with a diverged formula would silently
/// leave stale entries in the rankings (the `debug_assert` in `rerank`
/// is compiled out in release) — so both call through here.
#[inline]
fn proxy_score(scoring: IndexScoring, d: f64, active: u32, remaining: f64) -> f64 {
    match scoring {
        IndexScoring::RemainingWork => d + remaining,
        IndexScoring::ActiveCount => d * (active as f64 + 1.0),
    }
}

/// Non-negative finite `f64` → order-preserving `u64` key.
#[inline]
fn score_bits(score: f64) -> u64 {
    debug_assert!(
        score >= 0.0 && score.is_finite(),
        "stage-1 scores must be non-negative finite, got {score}"
    );
    score.to_bits()
}

/// Which static completion proxy orders the stage-1 rankings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexScoring {
    /// `d(p, s) + remaining(s)`: the unloaded duration behind the
    /// server's remaining backlog of service demands (charged at commit,
    /// paid back on completion). The default — sharper on heterogeneous
    /// task mixes.
    #[default]
    RemainingWork,
    /// `d(p, s) · (active(s) + 1)`: the original count-based scorer, kept
    /// as the comparison baseline.
    ActiveCount,
}

impl IndexScoring {
    /// Parses `work` / `remaining` or `count` / `active`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<IndexScoring> {
        match s.to_ascii_lowercase().as_str() {
            "work" | "remaining" => Some(IndexScoring::RemainingWork),
            "count" | "active" => Some(IndexScoring::ActiveCount),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IndexScoring::RemainingWork => "work",
            IndexScoring::ActiveCount => "count",
        }
    }
}

/// The agent's incrementally maintained static placement index.
#[derive(Debug, Clone)]
pub struct StaticIndex {
    n_servers: usize,
    scoring: IndexScoring,
    /// Tasks the scheduler believes are in flight per server (its own
    /// commit ledger, not the stale monitor reports).
    active: Vec<u32>,
    /// Predicted work still in flight per server, seconds (summed from
    /// the `work` argument of the commit hook, decremented on
    /// completion/retract, floored at zero).
    remaining: Vec<f64>,
    /// Unloaded durations, row-major `problem * n_servers + server`;
    /// `None` = unsolvable there.
    durations: Vec<Option<f64>>,
    /// Liveness per server: an unavailable server keeps its load ledgers
    /// (tasks may still drain off a leaving server) but is absent from
    /// every ranking, so stage 1 never proposes it and the skylines
    /// reflect the live farm only.
    available: Vec<bool>,
    /// Per problem: solvable **available** servers ordered by
    /// `(score_bits, id)`.
    ranked: Vec<BTreeSet<RankKey>>,
}

impl StaticIndex {
    /// Builds the index from the static cost table with the default
    /// [`IndexScoring::RemainingWork`] proxy; every server starts with
    /// zero believed load.
    pub fn new(costs: &CostTable) -> Self {
        Self::with_scoring(costs, IndexScoring::default())
    }

    /// Builds the index with an explicit scoring proxy.
    pub fn with_scoring(costs: &CostTable, scoring: IndexScoring) -> Self {
        let n_servers = costs.n_servers();
        let n_problems = costs.n_problems();
        let mut durations = Vec::with_capacity(n_problems * n_servers);
        let mut ranked: Vec<BTreeSet<RankKey>> = vec![BTreeSet::new(); n_problems];
        for (p, set) in ranked.iter_mut().enumerate() {
            for s in 0..n_servers {
                let d = costs.unloaded_duration(ProblemId(p as u32), ServerId(s as u32));
                if let Some(d) = d {
                    set.insert((score_bits(d), s as u32));
                }
                durations.push(d);
            }
        }
        StaticIndex {
            n_servers,
            scoring,
            active: vec![0; n_servers],
            remaining: vec![0.0; n_servers],
            durations,
            available: vec![true; n_servers],
            ranked,
        }
    }

    /// Number of servers covered.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The scoring proxy in use.
    pub fn scoring(&self) -> IndexScoring {
        self.scoring
    }

    /// Tasks the index believes are in flight on `server`.
    pub fn active(&self, server: ServerId) -> u32 {
        self.active[server.index()]
    }

    /// Predicted work the index believes is still in flight on `server`,
    /// seconds.
    pub fn remaining(&self, server: ServerId) -> f64 {
        self.remaining[server.index()]
    }

    /// The head of `problem`'s ranking — the best current `(score bits,
    /// server)` key, or `None` when no server can solve the problem. This
    /// is the index's **skyline**: because the ranked sets are maintained
    /// by the same commit/retract/complete hooks that keep every other
    /// query current, the skyline needs no extra bookkeeping and is always
    /// exact. A shard federation reads it per decision to decide whether a
    /// shard can possibly contribute to the merged shortlist.
    pub fn best_key(&self, problem: ProblemId) -> Option<(u64, ServerId)> {
        self.ranked[problem.index()]
            .iter()
            .next()
            .map(|&(bits, s)| (bits, ServerId(s)))
    }

    /// Number of servers able to solve `problem` (the size of its
    /// ranking). An upper bound on any selector's shortlist width for the
    /// problem, used alongside [`StaticIndex::best_key`] by the lazy
    /// merge.
    pub fn solvable_count(&self, problem: ProblemId) -> usize {
        self.ranked[problem.index()].len()
    }

    /// The stage-1 score of `server` for `problem` at the current believed
    /// load, or `None` if the server cannot solve it.
    pub fn score(&self, problem: ProblemId, server: ServerId) -> Option<f64> {
        let s = server.index();
        self.durations[problem.index() * self.n_servers + s]
            .map(|d| proxy_score(self.scoring, d, self.active[s], self.remaining[s]))
    }

    /// Re-ranks `server` in every problem set after its believed load
    /// moved from `(old_active, old_remaining)` to the current values.
    /// Unavailable servers own no ranking entries, so only their ledgers
    /// move (they re-enter the rankings at the updated score on
    /// [`StaticIndex::set_available`]).
    fn rerank(&mut self, server: ServerId, old_active: u32, old_remaining: f64) {
        let s = server.index();
        if !self.available[s] {
            return;
        }
        let (new_active, new_remaining) = (self.active[s], self.remaining[s]);
        let scoring = self.scoring;
        for (p, set) in self.ranked.iter_mut().enumerate() {
            if let Some(d) = self.durations[p * self.n_servers + s] {
                let old = proxy_score(scoring, d, old_active, old_remaining);
                let removed = set.remove(&(score_bits(old), s as u32));
                debug_assert!(removed, "server {server} missing from ranking of P{p}");
                let new = proxy_score(scoring, d, new_active, new_remaining);
                set.insert((score_bits(new), s as u32));
            }
        }
    }

    /// Marks `server` live or down. A downed server leaves every ranking
    /// (stage 1 stops proposing it, the per-problem skylines move on); a
    /// rejoining server re-enters at its current believed-load score.
    /// Ledgers are untouched either way, so completions draining off a
    /// leaving server keep their accounting. Returns `true` when the
    /// state actually changed (the call is idempotent).
    pub fn set_available(&mut self, server: ServerId, up: bool) -> bool {
        let s = server.index();
        if self.available[s] == up {
            return false;
        }
        self.available[s] = up;
        let (active, remaining) = (self.active[s], self.remaining[s]);
        let scoring = self.scoring;
        for (p, set) in self.ranked.iter_mut().enumerate() {
            if let Some(d) = self.durations[p * self.n_servers + s] {
                let key = (
                    score_bits(proxy_score(scoring, d, active, remaining)),
                    s as u32,
                );
                if up {
                    set.insert(key);
                } else {
                    let removed = set.remove(&key);
                    debug_assert!(removed, "server {server} missing from ranking of P{p}");
                }
            }
        }
        true
    }

    /// Whether `server` is currently live (present in the rankings).
    pub fn is_available(&self, server: ServerId) -> bool {
        self.available[server.index()]
    }

    /// Extends the index with one new server, online: `durations[p]` is
    /// the new server's unloaded duration for problem `p` (`None` =
    /// unsolvable there). The server joins live, with an empty ledger, at
    /// the next id — bit-identical to rebuilding the index from the
    /// extended cost table (proven by test).
    ///
    /// # Panics
    /// Panics unless exactly one duration per problem is given.
    pub fn push_server(&mut self, durations: &[Option<f64>]) {
        assert_eq!(
            durations.len(),
            self.ranked.len(),
            "one duration per problem"
        );
        let old_n = self.n_servers;
        let n_problems = self.ranked.len();
        let mut rows = Vec::with_capacity((old_n + 1) * n_problems);
        for (p, d) in durations.iter().enumerate() {
            rows.extend_from_slice(&self.durations[p * old_n..(p + 1) * old_n]);
            rows.push(*d);
        }
        self.durations = rows;
        self.n_servers = old_n + 1;
        self.active.push(0);
        self.remaining.push(0.0);
        self.available.push(true);
        let scoring = self.scoring;
        for (p, set) in self.ranked.iter_mut().enumerate() {
            if let Some(d) = durations[p] {
                set.insert((score_bits(proxy_score(scoring, d, 0, 0.0)), old_n as u32));
            }
        }
    }

    /// A task was committed to `server`: its believed load grows by one
    /// task and by `work` seconds (the task's service demand — its
    /// unloaded duration on this server — recorded at commit time).
    pub fn on_commit(&mut self, server: ServerId, work: f64) {
        let s = server.index();
        let (old_active, old_remaining) = (self.active[s], self.remaining[s]);
        self.active[s] = old_active + 1;
        self.remaining[s] = old_remaining + work.max(0.0);
        self.rerank(server, old_active, old_remaining);
    }

    /// A committed task was retracted from `server` (the placement was
    /// undone before running): believed load shrinks by the same amounts
    /// the commit added.
    pub fn on_retract(&mut self, server: ServerId, work: f64) {
        self.on_complete(server, work);
    }

    /// A task completed on `server`: believed load shrinks by one task
    /// and by the `work` its commit added (the remaining-work ledger is
    /// floored at zero against float drift).
    ///
    /// # Panics
    /// Panics if the believed load is already zero (a completion without a
    /// matching commit is an accounting bug).
    pub fn on_complete(&mut self, server: ServerId, work: f64) {
        let s = server.index();
        let (old_active, old_remaining) = (self.active[s], self.remaining[s]);
        assert!(
            old_active > 0,
            "completion on {server} without a matching commit"
        );
        self.active[s] = old_active - 1;
        self.remaining[s] = if self.active[s] == 0 {
            // An empty server carries no backlog: resetting (rather than
            // subtracting) cancels any accumulated float drift.
            0.0
        } else {
            (old_remaining - work.max(0.0)).max(0.0)
        };
        self.rerank(server, old_active, old_remaining);
    }

    /// Walks `problem`'s ranking in ascending score order, best first,
    /// skipping servers rejected by `admit`. The iterator is lazy: taking
    /// `k` items touches `k + rejected` tree nodes, not all `n`.
    pub fn ranked_iter<'a>(
        &'a self,
        problem: ProblemId,
        admit: &'a dyn Fn(ServerId) -> bool,
    ) -> impl Iterator<Item = (ServerId, f64)> + 'a {
        self.ranked[problem.index()]
            .iter()
            .map(|&(bits, s)| (ServerId(s), f64::from_bits(bits)))
            .filter(move |&(s, _)| admit(s))
    }

    /// Fills `out` with the `k` admissible servers of lowest stage-1 score
    /// for `problem` (ties to the lowest id), in ascending **score** order.
    /// Fewer than `k` survive when the admissible set is smaller.
    pub fn k_best(
        &self,
        problem: ProblemId,
        k: usize,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<(ServerId, f64)>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        out.extend(self.ranked_iter(problem, admit).take(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PhaseCosts;
    use crate::task::Problem;

    /// 3 servers; P0 durations 100/150/300, P1 solvable only on S1 (50).
    fn table() -> CostTable {
        let mut c = CostTable::new(3);
        c.add_problem(
            Problem::new("p0", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 150.0, 0.0)),
                Some(PhaseCosts::new(0.0, 300.0, 0.0)),
            ],
        );
        c.add_problem(
            Problem::new("p1", 0.0, 0.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.0, 50.0, 0.0)), None],
        );
        c
    }

    fn best(idx: &StaticIndex, p: u32, k: usize) -> Vec<u32> {
        let mut out = Vec::new();
        idx.k_best(ProblemId(p), k, &|_| true, &mut out);
        out.into_iter().map(|(s, _)| s.0).collect()
    }

    #[test]
    fn initial_ranking_is_static_cost_order() {
        let idx = StaticIndex::new(&table());
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
        assert_eq!(best(&idx, 0, 2), vec![0, 1]);
        assert_eq!(best(&idx, 1, 3), vec![1], "only S1 solves P1");
        assert_eq!(idx.score(ProblemId(0), ServerId(2)), Some(300.0));
        assert_eq!(idx.score(ProblemId(1), ServerId(0)), None);
    }

    #[test]
    fn commit_reorders_and_complete_restores() {
        let mut idx = StaticIndex::with_scoring(&table(), IndexScoring::ActiveCount);
        // Two commits on S0: score(P0,S0) = 100·3 = 300, ties S2's 300 →
        // id order keeps S0 ahead of S2.
        idx.on_commit(ServerId(0), 100.0);
        idx.on_commit(ServerId(0), 100.0);
        assert_eq!(idx.active(ServerId(0)), 2);
        assert_eq!(best(&idx, 0, 3), vec![1, 0, 2]);
        // A third commit pushes S0 last.
        idx.on_commit(ServerId(0), 100.0);
        assert_eq!(best(&idx, 0, 3), vec![1, 2, 0]);
        idx.on_complete(ServerId(0), 100.0);
        idx.on_retract(ServerId(0), 100.0);
        idx.on_complete(ServerId(0), 100.0);
        assert_eq!(idx.active(ServerId(0)), 0);
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
    }

    /// Edge case for the crash path: retracting the *last* in-flight
    /// task of a server drains its ledger to exactly zero and restores
    /// the pristine static order.
    #[test]
    fn retracting_last_in_flight_task_restores_static_rank() {
        let mut idx = StaticIndex::new(&table());
        idx.on_commit(ServerId(0), 500.0);
        assert_eq!(best(&idx, 0, 3), vec![1, 2, 0]);
        idx.on_retract(ServerId(0), 500.0);
        assert_eq!(idx.remaining(ServerId(0)), 0.0);
        assert_eq!(idx.active(ServerId(0)), 0);
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
    }

    /// Edge case for the crash path: a retract racing the server's
    /// crash at the same instant. Ledger update before the
    /// availability flip, or flip first with the ledger draining while
    /// down — both orders converge, and repair re-inserts the server
    /// at its believed (drained) load.
    #[test]
    fn retract_and_crash_same_instant_orders_converge() {
        for crash_first in [false, true] {
            let mut idx = StaticIndex::new(&table());
            idx.on_commit(ServerId(0), 500.0);
            idx.on_commit(ServerId(1), 10.0);
            if crash_first {
                assert!(idx.set_available(ServerId(0), false));
                idx.on_retract(ServerId(0), 500.0);
            } else {
                idx.on_retract(ServerId(0), 500.0);
                assert!(idx.set_available(ServerId(0), false));
            }
            assert!(!idx.is_available(ServerId(0)), "crash_first={crash_first}");
            assert_eq!(idx.solvable_count(ProblemId(0)), 2);
            assert_eq!(best(&idx, 0, 3), vec![1, 2]);
            assert_eq!(idx.remaining(ServerId(0)), 0.0);
            assert!(idx.set_available(ServerId(0), true));
            assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
            assert_eq!(
                idx.best_key(ProblemId(0)).map(|(_, s)| s),
                Some(ServerId(0)),
                "repaired server leads the skyline again"
            );
        }
    }

    #[test]
    fn remaining_work_ranks_by_backlog_not_count() {
        // S0 (d=100) carries one long task (500 s of predicted work);
        // S1 (d=150) carries two short ones (10 s each). The count scorer
        // prefers S0 (100·2 = 200 < 150·3 = 450); the remaining-work
        // scorer sees through the mix (100+500 = 600 > 150+20 = 170).
        let mut by_count = StaticIndex::with_scoring(&table(), IndexScoring::ActiveCount);
        let mut by_work = StaticIndex::new(&table());
        assert_eq!(by_work.scoring(), IndexScoring::RemainingWork);
        for idx in [&mut by_count, &mut by_work] {
            idx.on_commit(ServerId(0), 500.0);
            idx.on_commit(ServerId(1), 10.0);
            idx.on_commit(ServerId(1), 10.0);
        }
        assert_eq!(best(&by_count, 0, 3), vec![0, 2, 1]);
        assert_eq!(best(&by_work, 0, 3), vec![1, 2, 0]);
        assert_eq!(by_work.score(ProblemId(0), ServerId(0)), Some(600.0));
        assert_eq!(by_work.remaining(ServerId(1)), 20.0);
        // Completions restore the static order and drain the ledger.
        by_work.on_complete(ServerId(0), 500.0);
        by_work.on_complete(ServerId(1), 10.0);
        by_work.on_complete(ServerId(1), 10.0);
        assert_eq!(best(&by_work, 0, 3), vec![0, 1, 2]);
        assert_eq!(by_work.remaining(ServerId(0)), 0.0);
    }

    #[test]
    fn remaining_ledger_resets_when_idle_and_floors_at_zero() {
        let mut idx = StaticIndex::new(&table());
        idx.on_commit(ServerId(0), 0.1);
        idx.on_commit(ServerId(0), 0.2);
        // Completion reporting more work than remains must floor, not go
        // negative (scores must stay valid sort keys).
        idx.on_complete(ServerId(0), 5.0);
        assert_eq!(idx.remaining(ServerId(0)), 0.0);
        assert!(idx.score(ProblemId(0), ServerId(0)).unwrap() >= 100.0);
        // Draining to idle resets the ledger exactly (no float residue).
        idx.on_complete(ServerId(0), 0.0);
        assert_eq!(idx.active(ServerId(0)), 0);
        assert_eq!(idx.remaining(ServerId(0)), 0.0);
        assert_eq!(idx.score(ProblemId(0), ServerId(0)), Some(100.0));
    }

    #[test]
    fn scoring_parse_roundtrip() {
        assert_eq!(
            IndexScoring::parse("work"),
            Some(IndexScoring::RemainingWork)
        );
        assert_eq!(
            IndexScoring::parse("COUNT"),
            Some(IndexScoring::ActiveCount)
        );
        assert_eq!(IndexScoring::parse("nope"), None);
        for s in [IndexScoring::RemainingWork, IndexScoring::ActiveCount] {
            assert_eq!(IndexScoring::parse(s.name()), Some(s));
        }
    }

    #[test]
    fn k_larger_than_n_and_zero() {
        let idx = StaticIndex::new(&table());
        assert_eq!(best(&idx, 0, 100), vec![0, 1, 2]);
        assert_eq!(best(&idx, 0, 0), Vec::<u32>::new());
    }

    #[test]
    fn filter_skips_servers_without_losing_rank() {
        let idx = StaticIndex::new(&table());
        let mut out = Vec::new();
        idx.k_best(ProblemId(0), 2, &|s| s != ServerId(0), &mut out);
        assert_eq!(out.iter().map(|(s, _)| s.0).collect::<Vec<_>>(), [1, 2]);
    }

    /// The skyline (best key per problem) tracks the hooks exactly: it is
    /// the head of the ranking after every commit/retract/complete, and
    /// `None` where nothing can solve the problem.
    #[test]
    fn skyline_follows_hooks() {
        let mut idx = StaticIndex::new(&table());
        assert_eq!(
            idx.best_key(ProblemId(0)),
            Some((100.0f64.to_bits(), ServerId(0)))
        );
        assert_eq!(
            idx.best_key(ProblemId(1)),
            Some((50.0f64.to_bits(), ServerId(1)))
        );
        assert_eq!(idx.solvable_count(ProblemId(0)), 3);
        assert_eq!(idx.solvable_count(ProblemId(1)), 1);
        // Loading S0 past S1's 150 moves the P0 skyline to S1…
        idx.on_commit(ServerId(0), 200.0);
        assert_eq!(
            idx.best_key(ProblemId(0)),
            Some((150.0f64.to_bits(), ServerId(1)))
        );
        // …and a retract repairs it back (stale-then-repaired).
        idx.on_retract(ServerId(0), 200.0);
        assert_eq!(
            idx.best_key(ProblemId(0)),
            Some((100.0f64.to_bits(), ServerId(0)))
        );
        // A problem nobody solves has no skyline and zero width.
        let mut costs = table();
        costs.add_problem(Problem::new("p2", 0.0, 0.0, 0.0), vec![None, None, None]);
        let idx = StaticIndex::new(&costs);
        assert_eq!(idx.best_key(ProblemId(2)), None);
        assert_eq!(idx.solvable_count(ProblemId(2)), 0);
    }

    #[test]
    #[should_panic(expected = "without a matching commit")]
    fn unbalanced_complete_panics() {
        let mut idx = StaticIndex::new(&table());
        idx.on_complete(ServerId(1), 0.0);
    }

    /// A downed server vanishes from every ranking and skyline; a
    /// rejoining one re-enters at its current believed-load score; and
    /// ledger hooks fired while it is down are honoured on re-entry.
    #[test]
    fn availability_moves_rankings_and_skylines() {
        let mut idx = StaticIndex::new(&table());
        assert!(idx.is_available(ServerId(0)));
        assert!(idx.set_available(ServerId(0), false));
        assert!(!idx.set_available(ServerId(0), false), "idempotent");
        assert!(!idx.is_available(ServerId(0)));
        assert_eq!(best(&idx, 0, 3), vec![1, 2]);
        assert_eq!(idx.solvable_count(ProblemId(0)), 2);
        assert_eq!(
            idx.best_key(ProblemId(0)),
            Some((150.0f64.to_bits(), ServerId(1)))
        );
        // The score query itself still answers (the ledger survives).
        assert_eq!(idx.score(ProblemId(0), ServerId(0)), Some(100.0));
        // Ledger mutations while down re-rank nothing but are kept:
        // the server re-enters at the loaded score.
        idx.on_commit(ServerId(0), 200.0);
        assert_eq!(best(&idx, 0, 3), vec![1, 2]);
        assert!(idx.set_available(ServerId(0), true));
        assert_eq!(idx.score(ProblemId(0), ServerId(0)), Some(300.0));
        assert_eq!(best(&idx, 0, 3), vec![1, 0, 2], "300 ties S2, id wins");
        // Draining the task restores the static order.
        idx.on_complete(ServerId(0), 200.0);
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
        // Downing every solver of P1 empties its skyline.
        idx.set_available(ServerId(1), false);
        assert_eq!(idx.best_key(ProblemId(1)), None);
        assert_eq!(idx.solvable_count(ProblemId(1)), 0);
    }

    /// A completion may arrive while the server is down (leave-drain):
    /// the ledger updates without touching the absent ranking entries.
    #[test]
    fn completion_while_down_keeps_ledger_consistent() {
        let mut idx = StaticIndex::new(&table());
        idx.on_commit(ServerId(1), 50.0);
        idx.set_available(ServerId(1), false);
        idx.on_complete(ServerId(1), 50.0);
        assert_eq!(idx.active(ServerId(1)), 0);
        assert_eq!(idx.remaining(ServerId(1)), 0.0);
        idx.set_available(ServerId(1), true);
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
        assert_eq!(idx.score(ProblemId(0), ServerId(1)), Some(150.0));
    }

    /// Online extension is bit-identical to a fresh build over the
    /// extended table, for both scoring proxies.
    #[test]
    fn push_server_matches_fresh_build() {
        let mut extended = table();
        extended.push_server(vec![
            Some(PhaseCosts::new(0.0, 120.0, 0.0)),
            Some(PhaseCosts::new(0.0, 40.0, 0.0)),
        ]);
        for scoring in [IndexScoring::RemainingWork, IndexScoring::ActiveCount] {
            let mut grown = StaticIndex::with_scoring(&table(), scoring);
            grown.push_server(&[Some(120.0), Some(40.0)]);
            let fresh = StaticIndex::with_scoring(&extended, scoring);
            assert_eq!(grown.n_servers(), 4);
            for p in 0..2u32 {
                let mut a = Vec::new();
                let mut b = Vec::new();
                grown.k_best(ProblemId(p), 4, &|_| true, &mut a);
                fresh.k_best(ProblemId(p), 4, &|_| true, &mut b);
                assert_eq!(a, b, "{scoring:?} P{p}");
                assert_eq!(grown.best_key(ProblemId(p)), fresh.best_key(ProblemId(p)));
            }
            // The new server takes P1's skyline (40 < 50) and ranks by
            // load like any other afterwards.
            assert_eq!(
                grown.best_key(ProblemId(1)),
                Some((40.0f64.to_bits(), ServerId(3)))
            );
            grown.on_commit(ServerId(3), 100.0);
            assert_eq!(
                grown.best_key(ProblemId(1)),
                Some((50.0f64.to_bits(), ServerId(1)))
            );
        }
    }

    /// The incremental ranking always equals a from-scratch recompute,
    /// under both scoring proxies.
    #[test]
    fn incremental_matches_rescan_after_churn() {
        let costs = table();
        let ops: [(u32, bool, f64); 9] = [
            (0, true, 12.5),
            (1, true, 3.0),
            (0, true, 40.0),
            (2, true, 7.25),
            (0, false, 12.5),
            (1, true, 0.0),
            (1, false, 3.0),
            (2, false, 7.25),
            (1, false, 0.0),
        ];
        for scoring in [IndexScoring::RemainingWork, IndexScoring::ActiveCount] {
            let mut idx = StaticIndex::with_scoring(&costs, scoring);
            for (s, up, work) in ops {
                if up {
                    idx.on_commit(ServerId(s), work);
                } else {
                    idx.on_complete(ServerId(s), work);
                }
                for p in 0..costs.n_problems() as u32 {
                    let got = best(&idx, p, 3);
                    let mut expect: Vec<(u64, u32)> = (0..3u32)
                        .filter_map(|sv| {
                            idx.score(ProblemId(p), ServerId(sv))
                                .map(|sc| (sc.to_bits(), sv))
                        })
                        .collect();
                    expect.sort_unstable();
                    let expect: Vec<u32> = expect.into_iter().map(|(_, sv)| sv).collect();
                    assert_eq!(got, expect, "{scoring:?} problem {p} after ({s}, {up})");
                }
            }
        }
    }
}

//! The incrementally maintained stage-1 placement index.
//!
//! At 1k servers the HTM heuristics' one-speculative-drain-per-candidate
//! fan-out dominates every scheduling decision. The cure is the standard
//! two-stage pipeline: a cheap *static* filter proposes a shortlist, the
//! expensive model scores only the shortlist. [`StaticIndex`] is that
//! filter's data structure: for every problem it keeps the solvable
//! servers ordered by a static completion proxy
//!
//! ```text
//! score(p, s) = d(p, s) · (active(s) + 1)
//! ```
//!
//! — the unloaded duration stretched by the number of tasks the scheduler
//! believes are in flight on the server (the CPU-sharing intuition of the
//! NetSolve estimate, with the agent's own commit ledger standing in for
//! the stale load report).
//!
//! The index is **incremental**: the per-server active counts change only
//! on [`StaticIndex::on_commit`] / [`StaticIndex::on_retract`] /
//! [`StaticIndex::on_complete`] hooks, and each hook re-ranks exactly one
//! server in each problem's ordered set (`O(problems · log servers)`).
//! A k-best query walks the head of one ordered set — no O(n) rescan of
//! server state happens per arrival.
//!
//! Scores are ordered by their IEEE-754 bit patterns (valid because scores
//! are non-negative finite), with the server id as tie-break, so every
//! ordering question has one deterministic answer.

use crate::cost::CostTable;
use crate::ids::{ProblemId, ServerId};
use std::collections::BTreeSet;

/// Ordered key of one server inside one problem's ranking: score bits,
/// then server id (deterministic total order).
type RankKey = (u64, u32);

/// Non-negative finite `f64` → order-preserving `u64` key.
#[inline]
fn score_bits(score: f64) -> u64 {
    debug_assert!(
        score >= 0.0 && score.is_finite(),
        "stage-1 scores must be non-negative finite, got {score}"
    );
    score.to_bits()
}

/// The agent's incrementally maintained static placement index.
#[derive(Debug, Clone)]
pub struct StaticIndex {
    n_servers: usize,
    /// Tasks the scheduler believes are in flight per server (its own
    /// commit ledger, not the stale monitor reports).
    active: Vec<u32>,
    /// Unloaded durations, row-major `problem * n_servers + server`;
    /// `None` = unsolvable there.
    durations: Vec<Option<f64>>,
    /// Per problem: solvable servers ordered by `(score_bits, id)`.
    ranked: Vec<BTreeSet<RankKey>>,
}

impl StaticIndex {
    /// Builds the index from the static cost table; every server starts
    /// with zero believed load.
    pub fn new(costs: &CostTable) -> Self {
        let n_servers = costs.n_servers();
        let n_problems = costs.n_problems();
        let mut durations = Vec::with_capacity(n_problems * n_servers);
        let mut ranked: Vec<BTreeSet<RankKey>> = vec![BTreeSet::new(); n_problems];
        for (p, set) in ranked.iter_mut().enumerate() {
            for s in 0..n_servers {
                let d = costs.unloaded_duration(ProblemId(p as u32), ServerId(s as u32));
                if let Some(d) = d {
                    set.insert((score_bits(d), s as u32));
                }
                durations.push(d);
            }
        }
        StaticIndex {
            n_servers,
            active: vec![0; n_servers],
            durations,
            ranked,
        }
    }

    /// Number of servers covered.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Tasks the index believes are in flight on `server`.
    pub fn active(&self, server: ServerId) -> u32 {
        self.active[server.index()]
    }

    /// The stage-1 score of `server` for `problem` at the current believed
    /// load, or `None` if the server cannot solve it.
    pub fn score(&self, problem: ProblemId, server: ServerId) -> Option<f64> {
        self.durations[problem.index() * self.n_servers + server.index()]
            .map(|d| d * (self.active[server.index()] as f64 + 1.0))
    }

    /// Re-ranks `server` in every problem set after its active count moved
    /// from `old_active` to the current value.
    fn rerank(&mut self, server: ServerId, old_active: u32) {
        let s = server.index();
        let new_active = self.active[s];
        for (p, set) in self.ranked.iter_mut().enumerate() {
            if let Some(d) = self.durations[p * self.n_servers + s] {
                let removed = set.remove(&(score_bits(d * (old_active as f64 + 1.0)), s as u32));
                debug_assert!(removed, "server {server} missing from ranking of P{p}");
                set.insert((score_bits(d * (new_active as f64 + 1.0)), s as u32));
            }
        }
    }

    /// A task was committed to `server`: its believed load grows by one.
    pub fn on_commit(&mut self, server: ServerId) {
        let old = self.active[server.index()];
        self.active[server.index()] = old + 1;
        self.rerank(server, old);
    }

    /// A committed task was retracted from `server` (the placement was
    /// undone before running): believed load shrinks by one.
    pub fn on_retract(&mut self, server: ServerId) {
        self.on_complete(server);
    }

    /// A task completed on `server`: believed load shrinks by one.
    ///
    /// # Panics
    /// Panics if the believed load is already zero (a completion without a
    /// matching commit is an accounting bug).
    pub fn on_complete(&mut self, server: ServerId) {
        let old = self.active[server.index()];
        assert!(old > 0, "completion on {server} without a matching commit");
        self.active[server.index()] = old - 1;
        self.rerank(server, old);
    }

    /// Walks `problem`'s ranking in ascending score order, best first,
    /// skipping servers rejected by `admit`. The iterator is lazy: taking
    /// `k` items touches `k + rejected` tree nodes, not all `n`.
    pub fn ranked_iter<'a>(
        &'a self,
        problem: ProblemId,
        admit: &'a dyn Fn(ServerId) -> bool,
    ) -> impl Iterator<Item = (ServerId, f64)> + 'a {
        self.ranked[problem.index()]
            .iter()
            .map(|&(bits, s)| (ServerId(s), f64::from_bits(bits)))
            .filter(move |&(s, _)| admit(s))
    }

    /// Fills `out` with the `k` admissible servers of lowest stage-1 score
    /// for `problem` (ties to the lowest id), in ascending **score** order.
    /// Fewer than `k` survive when the admissible set is smaller.
    pub fn k_best(
        &self,
        problem: ProblemId,
        k: usize,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<(ServerId, f64)>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        out.extend(self.ranked_iter(problem, admit).take(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PhaseCosts;
    use crate::task::Problem;

    /// 3 servers; P0 durations 100/150/300, P1 solvable only on S1 (50).
    fn table() -> CostTable {
        let mut c = CostTable::new(3);
        c.add_problem(
            Problem::new("p0", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 150.0, 0.0)),
                Some(PhaseCosts::new(0.0, 300.0, 0.0)),
            ],
        );
        c.add_problem(
            Problem::new("p1", 0.0, 0.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.0, 50.0, 0.0)), None],
        );
        c
    }

    fn best(idx: &StaticIndex, p: u32, k: usize) -> Vec<u32> {
        let mut out = Vec::new();
        idx.k_best(ProblemId(p), k, &|_| true, &mut out);
        out.into_iter().map(|(s, _)| s.0).collect()
    }

    #[test]
    fn initial_ranking_is_static_cost_order() {
        let idx = StaticIndex::new(&table());
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
        assert_eq!(best(&idx, 0, 2), vec![0, 1]);
        assert_eq!(best(&idx, 1, 3), vec![1], "only S1 solves P1");
        assert_eq!(idx.score(ProblemId(0), ServerId(2)), Some(300.0));
        assert_eq!(idx.score(ProblemId(1), ServerId(0)), None);
    }

    #[test]
    fn commit_reorders_and_complete_restores() {
        let mut idx = StaticIndex::new(&table());
        // Two commits on S0: score(P0,S0) = 100·3 = 300, ties S2's 300 →
        // id order keeps S0 ahead of S2.
        idx.on_commit(ServerId(0));
        idx.on_commit(ServerId(0));
        assert_eq!(idx.active(ServerId(0)), 2);
        assert_eq!(best(&idx, 0, 3), vec![1, 0, 2]);
        // A third commit pushes S0 last.
        idx.on_commit(ServerId(0));
        assert_eq!(best(&idx, 0, 3), vec![1, 2, 0]);
        idx.on_complete(ServerId(0));
        idx.on_retract(ServerId(0));
        idx.on_complete(ServerId(0));
        assert_eq!(idx.active(ServerId(0)), 0);
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
    }

    #[test]
    fn k_larger_than_n_and_zero() {
        let idx = StaticIndex::new(&table());
        assert_eq!(best(&idx, 0, 100), vec![0, 1, 2]);
        assert_eq!(best(&idx, 0, 0), Vec::<u32>::new());
    }

    #[test]
    fn filter_skips_servers_without_losing_rank() {
        let idx = StaticIndex::new(&table());
        let mut out = Vec::new();
        idx.k_best(ProblemId(0), 2, &|s| s != ServerId(0), &mut out);
        assert_eq!(out.iter().map(|(s, _)| s.0).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    #[should_panic(expected = "without a matching commit")]
    fn unbalanced_complete_panics() {
        let mut idx = StaticIndex::new(&table());
        idx.on_complete(ServerId(1));
    }

    /// The incremental ranking always equals a from-scratch recompute.
    #[test]
    fn incremental_matches_rescan_after_churn() {
        let costs = table();
        let mut idx = StaticIndex::new(&costs);
        let ops: [(u32, bool); 9] = [
            (0, true),
            (1, true),
            (0, true),
            (2, true),
            (0, false),
            (1, true),
            (1, false),
            (2, false),
            (1, false),
        ];
        for (s, up) in ops {
            if up {
                idx.on_commit(ServerId(s));
            } else {
                idx.on_complete(ServerId(s));
            }
            for p in 0..costs.n_problems() as u32 {
                let got = best(&idx, p, 3);
                let mut expect: Vec<(u64, u32)> = (0..3u32)
                    .filter_map(|sv| {
                        idx.score(ProblemId(p), ServerId(sv))
                            .map(|sc| (sc.to_bits(), sv))
                    })
                    .collect();
                expect.sort_unstable();
                let expect: Vec<u32> = expect.into_iter().map(|(_, sv)| sv).collect();
                assert_eq!(got, expect, "problem {p} after op ({s}, {up})");
            }
        }
    }
}

//! The incrementally maintained stage-1 placement index.
//!
//! At 1k servers the HTM heuristics' one-speculative-drain-per-candidate
//! fan-out dominates every scheduling decision. The cure is the standard
//! two-stage pipeline: a cheap *static* filter proposes a shortlist, the
//! expensive model scores only the shortlist. [`StaticIndex`] is that
//! filter's data structure: for every problem it keeps the solvable
//! servers ordered by a static completion proxy, selectable via
//! [`IndexScoring`]:
//!
//! ```text
//! RemainingWork:  score(p, s) = d(p, s) + remaining(s)
//! ActiveCount:    score(p, s) = d(p, s) · (active(s) + 1)
//! ```
//!
//! `remaining(s)` is the work still in flight on the server — each
//! commit charges the task's service demand (its unloaded duration,
//! recorded at commit time), each completion pays it back — so on
//! heterogeneous task mixes a server carrying one long task no longer
//! outranks one carrying two short ones. Service demands, unlike
//! predicted residence times, sum to exactly the serial drain time of
//! the backlog (residence includes queueing delay and would count the
//! queue once per queued task); `d + remaining` is then the classic "my
//! cost after the queue drains" proxy. `ActiveCount` is the original count-based scorer (unloaded
//! duration stretched by the believed in-flight count, the CPU-sharing
//! intuition of the NetSolve estimate) and stays available behind the
//! experiment-config flag as the comparison baseline.
//!
//! The index is **incremental**: the per-server believed load changes only
//! on [`StaticIndex::on_commit`] / [`StaticIndex::on_retract`] /
//! [`StaticIndex::on_complete`] hooks, and each hook re-ranks exactly one
//! server in each problem's ordered set. A k-best query walks the head of
//! one ordered set — no O(n) rescan of server state happens per arrival.
//!
//! Scores are ordered by their IEEE-754 bit patterns (valid because scores
//! are non-negative finite), with the server id as tie-break, so every
//! ordering question has one deterministic answer.
//!
//! # Ranking storage: flat ladder vs BTree
//!
//! Two interchangeable backends store the per-problem orderings,
//! selectable via [`RankingsBackend`]:
//!
//! * **[`RankingsBackend::Flat`]** (default) — a *bucketed ladder* of
//!   flat sorted runs of `(score bits, server)` keys with lazy repair: a
//!   re-rank marks the old key stale in O(1) (a per-server `current`
//!   stamp is the single source of liveness truth) and inserts the new
//!   key into a 32-key top run; when the top run overflows it merges
//!   down into geometrically larger runs, so a re-rank costs amortised
//!   O(log n) contiguous key copies — never the O(n) fold a single
//!   sorted vector would pay, and never a rebalance's pointer surgery.
//!   Reads merge the ladder's ≲4 runs, skipping stale keys; every step
//!   is a linear scan over contiguous 12-byte keys — no pointer chasing
//!   — which is what the decision path's skyline reads and k-best walks
//!   want at shard scale.
//! * **[`RankingsBackend::Btree`]** — the original `BTreeSet<RankKey>`,
//!   kept as the executable spec: the flat backend is proven
//!   bit-identical against it by the differential tests below and by
//!   whole-campaign record-equality suites in `cas-middleware`.

use crate::cost::CostTable;
use crate::ids::{ProblemId, ServerId};
use std::collections::BTreeSet;

/// Ordered key of one server inside one problem's ranking: score bits,
/// then server id (deterministic total order).
type RankKey = (u64, u32);

/// The one definition of the stage-1 completion proxy. `score`, the
/// ranked-set keys inserted by `rerank`, and every hook must agree bit
/// for bit — a removal keyed with a diverged formula would silently
/// leave stale entries in the rankings (the `debug_assert` in `rerank`
/// is compiled out in release) — so both call through here.
#[inline]
fn proxy_score(scoring: IndexScoring, d: f64, active: u32, remaining: f64) -> f64 {
    match scoring {
        IndexScoring::RemainingWork => d + remaining,
        IndexScoring::ActiveCount => d * (active as f64 + 1.0),
    }
}

/// Non-negative finite `f64` → order-preserving `u64` key.
#[inline]
fn score_bits(score: f64) -> u64 {
    debug_assert!(
        score >= 0.0 && score.is_finite(),
        "stage-1 scores must be non-negative finite, got {score}"
    );
    score.to_bits()
}

/// Which static completion proxy orders the stage-1 rankings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexScoring {
    /// `d(p, s) + remaining(s)`: the unloaded duration behind the
    /// server's remaining backlog of service demands (charged at commit,
    /// paid back on completion). The default — sharper on heterogeneous
    /// task mixes.
    #[default]
    RemainingWork,
    /// `d(p, s) · (active(s) + 1)`: the original count-based scorer, kept
    /// as the comparison baseline.
    ActiveCount,
}

impl IndexScoring {
    /// Parses `work` / `remaining` or `count` / `active`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<IndexScoring> {
        match s.to_ascii_lowercase().as_str() {
            "work" | "remaining" => Some(IndexScoring::RemainingWork),
            "count" | "active" => Some(IndexScoring::ActiveCount),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IndexScoring::RemainingWork => "work",
            IndexScoring::ActiveCount => "count",
        }
    }
}

/// Which data structure stores the per-problem rankings. Both answer
/// every query bit-identically; they differ only in constant factors
/// (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingsBackend {
    /// Flat sorted-vec ladder with lazy repair — cache-friendly walks,
    /// the default.
    #[default]
    Flat,
    /// Per-problem `BTreeSet`, the executable spec the flat backend is
    /// differentially proven against.
    Btree,
}

impl RankingsBackend {
    /// Parses `flat` / `vec` or `btree` / `tree` (case-insensitive).
    pub fn parse(s: &str) -> Option<RankingsBackend> {
        match s.to_ascii_lowercase().as_str() {
            "flat" | "vec" => Some(RankingsBackend::Flat),
            "btree" | "tree" => Some(RankingsBackend::Btree),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RankingsBackend::Flat => "flat",
            RankingsBackend::Btree => "btree",
        }
    }
}

/// `current` stamp of a server absent from a ranking (down, or never
/// solvable there). `u64::MAX` is the bit pattern of a negative NaN —
/// never a valid non-negative finite score, so it cannot collide with a
/// live key's bits.
const LIVE_NONE: u64 = u64::MAX;

/// Capacity of the ladder's top run.
const RUN0_CAP: usize = 32;

/// Each run is 8× the one above (see [`run_cap`]), trading a few extra
/// amortised merge copies — contiguous memcpy, nearly free — for a
/// shallow ladder: every read is a merge across all runs, so walk cost
/// scales with depth, and 8× keeps a 100k-server ranking at 4 runs
/// where doubling would need 12.
const RUN_GROWTH_LOG2: usize = 3;

/// Ladder depth the stack-allocated iterator cursor supports. Run 11
/// alone holds 2^38 keys — far past any farm simulated here.
const MAX_RUNS: usize = 12;

/// Capacity of run `r`: an overflowing run merges down into the run
/// below.
#[inline]
fn run_cap(r: usize) -> usize {
    RUN0_CAP << (RUN_GROWTH_LOG2 * r)
}

/// One problem's flat ranking: a *bucketed ladder* of sorted runs of
/// `(score bits, server)` keys that may contain stale entries, plus a
/// per-server `current` stamp that is the single source of truth for
/// liveness — the key `(bits, s)` is live iff `current[s] == bits`. The
/// live keys across all runs are exactly the BTree backend's set at all
/// times.
///
/// Inserts go into run 0 (capacity [`RUN0_CAP`]); an overflowing run
/// merges down into the geometrically larger run below it, dropping
/// stale keys as it goes, so an insert costs amortised O(log n)
/// contiguous key copies. Removal just flips the stamp (O(1)); a full
/// rebuild fires only when stale keys outnumber live ones, keeping
/// storage within 2× the live set. A key re-inserted while a stale copy
/// still sits in a deeper run is stored again in run 0 — each run is
/// duplicate-free, but runs may shadow each other — and the read-side
/// merges collapse equal keys to one. (Reviving the deep copy instead
/// would rewind that run's head and force a rescan of its stale prefix;
/// deep heads must only ever advance.)
#[derive(Debug, Clone)]
struct FlatRanking {
    /// Sorted runs, top (newest, smallest) first; mutually disjoint.
    runs: Vec<Vec<RankKey>>,
    /// Per-run cursor: entries before it are all stale, the entry at it
    /// (if any) is live — maintained by the mutation hooks so the
    /// skyline read is a min over run heads, never a rescan.
    heads: Vec<usize>,
    /// Live key bits per server; [`LIVE_NONE`] when the server is not in
    /// this ranking.
    current: Vec<u64>,
    /// Number of live keys — the ranking's cardinality.
    live: usize,
    /// Total stored keys across runs, live + stale (the rebuild
    /// trigger's bookkeeping).
    total: usize,
    /// Reused merge buffer — merges allocate nothing once the ladder
    /// reaches its high-water capacity.
    scratch: Vec<RankKey>,
}

impl FlatRanking {
    fn new(n_servers: usize) -> Self {
        FlatRanking {
            runs: vec![Vec::new()],
            heads: vec![0],
            current: vec![LIVE_NONE; n_servers],
            live: 0,
            total: 0,
            scratch: Vec::new(),
        }
    }

    /// Builds a ranking holding exactly `keys` (ascending, all live) as
    /// one run, leaving run 0 free for fresh inserts.
    fn from_sorted_live(keys: Vec<RankKey>, n_servers: usize) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let mut r = FlatRanking::new(n_servers);
        for &(bits, s) in &keys {
            r.current[s as usize] = bits;
        }
        r.live = keys.len();
        r.total = keys.len();
        let mut j = 0;
        while run_cap(j) < keys.len() {
            j += 1;
        }
        while r.runs.len() <= j {
            r.runs.push(Vec::new());
            r.heads.push(0);
        }
        r.runs[j] = keys;
        r
    }

    /// Whether the key `(bits, s)` is live (stale keys stay in storage
    /// until a merge sweeps them out).
    #[inline]
    fn is_live(&self, key: RankKey) -> bool {
        self.current[key.1 as usize] == key.0
    }

    /// Makes `s` live at `bits`. The server must currently be dormant.
    fn activate(&mut self, s: u32, bits: u64) {
        debug_assert_eq!(self.current[s as usize], LIVE_NONE, "server already ranked");
        debug_assert_ne!(bits, LIVE_NONE);
        let key = (bits, s);
        self.current[s as usize] = bits;
        self.live += 1;
        // Only run 0 is touched: a revive of a stale leftover sitting in
        // a deeper run would have to rewind that run's head, and the
        // next deactivate would then rescan the stale prefix — deep
        // heads must only ever advance for the amortisation to hold. So
        // the key is (re)inserted at the top and any stale copy below is
        // left for the merges to sweep; the copies are exact duplicates,
        // which the read-side merges collapse.
        let pos = match self.runs[0].binary_search(&key) {
            Ok(pos) => {
                // Already stored in run 0 (a commit/complete pair
                // returned the server to a score it held moments ago):
                // live again in place.
                self.heads[0] = self.heads[0].min(pos);
                return;
            }
            Err(pos) => pos,
        };
        self.runs[0].insert(pos, key);
        if pos < self.heads[0] {
            self.heads[0] = pos;
        }
        self.total += 1;
        if self.runs[0].len() > RUN0_CAP {
            let mut r = 0;
            while {
                self.merge_down(r);
                r += 1;
                self.runs[r].len() > run_cap(r)
            } {}
        }
        if self.total > self.live + self.live / 4 + RUN0_CAP {
            self.rebuild();
        }
    }

    /// Makes `s` dormant, returning the bits it was live at. The key
    /// stays in storage as a stale entry until a merge sweeps it out.
    fn deactivate(&mut self, s: u32) -> u64 {
        let bits = std::mem::replace(&mut self.current[s as usize], LIVE_NONE);
        debug_assert_ne!(bits, LIVE_NONE, "server not ranked");
        self.live -= 1;
        self.advance_heads();
        bits
    }

    /// Moves each run's head past its stale prefix, so every head points
    /// at a live key (or run end). Amortised O(1) per mutation: a key is
    /// skipped at most once per stay in its run.
    fn advance_heads(&mut self) {
        let FlatRanking {
            runs,
            heads,
            current,
            ..
        } = self;
        for (run, head) in runs.iter().zip(heads.iter_mut()) {
            while let Some(&(bits, s)) = run.get(*head) {
                if current[s as usize] == bits {
                    break;
                }
                *head += 1;
            }
        }
    }

    /// Merges run `r` into run `r + 1` (one linear pass over contiguous
    /// keys, dropping stale entries), leaving run `r` empty.
    fn merge_down(&mut self, r: usize) {
        if r + 1 == self.runs.len() {
            self.runs.push(Vec::new());
            self.heads.push(0);
            debug_assert!(self.runs.len() <= MAX_RUNS, "ladder deeper than any farm");
        }
        let FlatRanking {
            runs,
            heads,
            current,
            total,
            scratch,
            ..
        } = self;
        let (top, rest) = runs.split_at_mut(r + 1);
        let (a, b) = (&mut top[r], &mut rest[0]);
        scratch.clear();
        scratch.reserve(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let key = match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    i += 1;
                    a[i - 1]
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    b[j - 1]
                }
                std::cmp::Ordering::Equal => {
                    // The same key re-inserted above its stale copy:
                    // collapse to one.
                    i += 1;
                    j += 1;
                    a[i - 1]
                }
            };
            if current[key.1 as usize] == key.0 {
                scratch.push(key);
            }
        }
        let live = |&&(bits, s): &&RankKey| current[s as usize] == bits;
        scratch.extend(a[i..].iter().filter(live));
        scratch.extend(b[j..].iter().filter(live));
        *total -= a.len() + b.len() - scratch.len();
        a.clear();
        std::mem::swap(b, scratch);
        heads[r] = 0;
        heads[r + 1] = 0;
    }

    /// The stale-majority repair: cascades every run into the deepest
    /// one (each merge a linear pass over already-sorted keys), leaving
    /// the ladder all-live so walks stop paying for dead front entries.
    fn rebuild(&mut self) {
        for r in 0..self.runs.len() - 1 {
            self.merge_down(r);
        }
        debug_assert_eq!(self.total, self.live, "rebuild keeps exactly the live keys");
    }

    /// The best live key, or `None` when the ranking is empty — the min
    /// over the run heads (each already resting on a live key).
    fn first(&self) -> Option<RankKey> {
        let mut best: Option<RankKey> = None;
        for (run, &head) in self.runs.iter().zip(self.heads.iter()) {
            if let Some(&key) = run.get(head) {
                debug_assert!(self.is_live(key));
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best
    }

    /// All live keys, ascending — a k-way merge over the runs skipping
    /// stale keys.
    fn iter(&self) -> FlatIter<'_> {
        debug_assert!(self.runs.len() <= MAX_RUNS);
        let mut cursors = [0usize; MAX_RUNS];
        let mut cand = [EXHAUSTED; MAX_RUNS];
        for (r, (run, &head)) in self.runs.iter().zip(self.heads.iter()).enumerate() {
            cursors[r] = head;
            cand[r] = run.get(head).copied().unwrap_or(EXHAUSTED);
        }
        FlatIter {
            runs: &self.runs,
            current: &self.current,
            cursors,
            cand,
            last: None,
        }
    }

    /// One more server slot (joins dormant).
    fn push_slot(&mut self) {
        self.current.push(LIVE_NONE);
    }
}

/// Ascending live-key iterator over a [`FlatRanking`] (k-way merge of
/// the ladder's runs, stale keys skipped; the cursor array lives on the
/// stack so decisions allocate nothing).
/// Sentinel candidate of an exhausted run: past every real key (score
/// bits of a finite non-negative `f64` never reach `u64::MAX`).
const EXHAUSTED: RankKey = (u64::MAX, u32::MAX);

struct FlatIter<'a> {
    runs: &'a [Vec<RankKey>],
    current: &'a [u64],
    cursors: [usize; MAX_RUNS],
    /// Key each cursor rests on ([`EXHAUSTED`] past the run's end),
    /// cached so the per-item min scan reads a stack array instead of
    /// re-chasing every run.
    cand: [RankKey; MAX_RUNS],
    /// Last key yielded — a re-inserted key may sit in several runs, and
    /// equal keys are adjacent in merge order, so comparing against the
    /// last yield collapses them to one.
    last: Option<RankKey>,
}

impl Iterator for FlatIter<'_> {
    type Item = RankKey;

    fn next(&mut self) -> Option<RankKey> {
        loop {
            let (mut key, mut at) = (EXHAUSTED, usize::MAX);
            for r in 0..self.runs.len() {
                if self.cand[r] < key {
                    key = self.cand[r];
                    at = r;
                }
            }
            if key == EXHAUSTED {
                return None;
            }
            self.cursors[at] += 1;
            self.cand[at] = self.runs[at]
                .get(self.cursors[at])
                .copied()
                .unwrap_or(EXHAUSTED);
            if self.last != Some(key) && self.current[key.1 as usize] == key.0 {
                self.last = Some(key);
                return Some(key);
            }
        }
    }
}

/// Per-problem ranking storage, one variant per [`RankingsBackend`].
#[derive(Debug, Clone)]
enum RankStore {
    Flat(Vec<FlatRanking>),
    Btree(Vec<BTreeSet<RankKey>>),
}

/// Ascending live-key iterator over one problem's ranking, whichever
/// backend stores it (an enum so the read path never boxes — the
/// variant size gap is deliberate: this lives on the stack of the
/// zero-allocation decision loop).
#[allow(clippy::large_enum_variant)]
enum RankedKeys<'a> {
    Flat(FlatIter<'a>),
    Btree(std::collections::btree_set::Iter<'a, RankKey>),
}

impl Iterator for RankedKeys<'_> {
    type Item = RankKey;

    fn next(&mut self) -> Option<RankKey> {
        match self {
            RankedKeys::Flat(it) => it.next(),
            RankedKeys::Btree(it) => it.next().copied(),
        }
    }
}

/// The agent's incrementally maintained static placement index.
#[derive(Debug, Clone)]
pub struct StaticIndex {
    n_servers: usize,
    scoring: IndexScoring,
    /// Tasks the scheduler believes are in flight per server (its own
    /// commit ledger, not the stale monitor reports).
    active: Vec<u32>,
    /// Predicted work still in flight per server, seconds (summed from
    /// the `work` argument of the commit hook, decremented on
    /// completion/retract, floored at zero).
    remaining: Vec<f64>,
    /// Unloaded durations, row-major `problem * n_servers + server`;
    /// `None` = unsolvable there.
    durations: Vec<Option<f64>>,
    /// Liveness per server: an unavailable server keeps its load ledgers
    /// (tasks may still drain off a leaving server) but is absent from
    /// every ranking, so stage 1 never proposes it and the skylines
    /// reflect the live farm only.
    available: Vec<bool>,
    /// Per problem: solvable **available** servers ordered by
    /// `(score_bits, id)`, in the configured backend.
    ranked: RankStore,
}

impl StaticIndex {
    /// Builds the index from the static cost table with the default
    /// [`IndexScoring::RemainingWork`] proxy and the default
    /// [`RankingsBackend::Flat`] storage; every server starts with zero
    /// believed load.
    pub fn new(costs: &CostTable) -> Self {
        Self::with_scoring(costs, IndexScoring::default())
    }

    /// Builds the index with an explicit scoring proxy (default flat
    /// ranking storage).
    pub fn with_scoring(costs: &CostTable, scoring: IndexScoring) -> Self {
        Self::with_backend(costs, scoring, RankingsBackend::default())
    }

    /// Builds the index with an explicit scoring proxy and ranking
    /// storage backend.
    pub fn with_backend(
        costs: &CostTable,
        scoring: IndexScoring,
        backend: RankingsBackend,
    ) -> Self {
        let n_servers = costs.n_servers();
        let n_problems = costs.n_problems();
        let mut durations = Vec::with_capacity(n_problems * n_servers);
        for p in 0..n_problems {
            for s in 0..n_servers {
                durations.push(costs.unloaded_duration(ProblemId(p as u32), ServerId(s as u32)));
            }
        }
        let mut idx = StaticIndex {
            n_servers,
            scoring,
            active: vec![0; n_servers],
            remaining: vec![0.0; n_servers],
            durations,
            available: vec![true; n_servers],
            ranked: match backend {
                RankingsBackend::Flat => RankStore::Flat(
                    (0..n_problems)
                        .map(|_| FlatRanking::new(n_servers))
                        .collect(),
                ),
                RankingsBackend::Btree => RankStore::Btree(vec![BTreeSet::new(); n_problems]),
            },
        };
        for p in 0..n_problems {
            for s in 0..n_servers {
                if let Some(d) = idx.durations[p * n_servers + s] {
                    idx.insert_key(p, s as u32, score_bits(d));
                }
            }
        }
        idx
    }

    /// The ranking storage backend in use.
    pub fn backend(&self) -> RankingsBackend {
        match &self.ranked {
            RankStore::Flat(_) => RankingsBackend::Flat,
            RankStore::Btree(_) => RankingsBackend::Btree,
        }
    }

    /// Converts the ranking storage to `backend` in place (a no-op when
    /// already there). Both backends represent the same ordered sets, so
    /// the conversion is exact in either direction — the differential
    /// tests rebuild one backend from the other and diff every query.
    pub fn set_backend(&mut self, backend: RankingsBackend) {
        if self.backend() == backend {
            return;
        }
        let n_problems = self.durations.len() / self.n_servers.max(1);
        let live: Vec<Vec<RankKey>> = (0..n_problems)
            .map(|p| self.ranked_keys(ProblemId(p as u32)).collect())
            .collect();
        self.ranked = match backend {
            RankingsBackend::Flat => RankStore::Flat(
                live.into_iter()
                    .map(|keys| FlatRanking::from_sorted_live(keys, self.n_servers))
                    .collect(),
            ),
            RankingsBackend::Btree => RankStore::Btree(
                live.into_iter()
                    .map(|keys| keys.into_iter().collect())
                    .collect(),
            ),
        };
    }

    /// Inserts the live key `(bits, s)` into problem `p`'s ranking.
    fn insert_key(&mut self, p: usize, s: u32, bits: u64) {
        match &mut self.ranked {
            RankStore::Flat(ranks) => ranks[p].activate(s, bits),
            RankStore::Btree(sets) => {
                sets[p].insert((bits, s));
            }
        }
    }

    /// Removes the live key of `s` from problem `p`'s ranking; `bits` is
    /// the key it must currently be live at.
    fn remove_key(&mut self, p: usize, s: u32, bits: u64) {
        match &mut self.ranked {
            RankStore::Flat(ranks) => {
                let was = ranks[p].deactivate(s);
                debug_assert_eq!(was, bits, "server {s} stale in ranking of P{p}");
            }
            RankStore::Btree(sets) => {
                let removed = sets[p].remove(&(bits, s));
                debug_assert!(removed, "server {s} missing from ranking of P{p}");
            }
        }
    }

    /// Ascending live keys of `problem`'s ranking.
    fn ranked_keys(&self, problem: ProblemId) -> RankedKeys<'_> {
        match &self.ranked {
            RankStore::Flat(ranks) => RankedKeys::Flat(ranks[problem.index()].iter()),
            RankStore::Btree(sets) => RankedKeys::Btree(sets[problem.index()].iter()),
        }
    }

    /// Number of servers covered.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The scoring proxy in use.
    pub fn scoring(&self) -> IndexScoring {
        self.scoring
    }

    /// Tasks the index believes are in flight on `server`.
    pub fn active(&self, server: ServerId) -> u32 {
        self.active[server.index()]
    }

    /// Predicted work the index believes is still in flight on `server`,
    /// seconds.
    pub fn remaining(&self, server: ServerId) -> f64 {
        self.remaining[server.index()]
    }

    /// The head of `problem`'s ranking — the best current `(score bits,
    /// server)` key, or `None` when no server can solve the problem. This
    /// is the index's **skyline**: because the ranked sets are maintained
    /// by the same commit/retract/complete hooks that keep every other
    /// query current, the skyline needs no extra bookkeeping and is always
    /// exact. A shard federation reads it per decision to decide whether a
    /// shard can possibly contribute to the merged shortlist.
    pub fn best_key(&self, problem: ProblemId) -> Option<(u64, ServerId)> {
        match &self.ranked {
            RankStore::Flat(ranks) => ranks[problem.index()].first(),
            RankStore::Btree(sets) => sets[problem.index()].iter().next().copied(),
        }
        .map(|(bits, s)| (bits, ServerId(s)))
    }

    /// Number of servers able to solve `problem` (the size of its
    /// ranking). An upper bound on any selector's shortlist width for the
    /// problem, used alongside [`StaticIndex::best_key`] by the lazy
    /// merge.
    pub fn solvable_count(&self, problem: ProblemId) -> usize {
        match &self.ranked {
            RankStore::Flat(ranks) => ranks[problem.index()].live,
            RankStore::Btree(sets) => sets[problem.index()].len(),
        }
    }

    /// The stage-1 score of `server` for `problem` at the current believed
    /// load, or `None` if the server cannot solve it.
    pub fn score(&self, problem: ProblemId, server: ServerId) -> Option<f64> {
        let s = server.index();
        self.durations[problem.index() * self.n_servers + s]
            .map(|d| proxy_score(self.scoring, d, self.active[s], self.remaining[s]))
    }

    /// Re-ranks `server` in every problem set after its believed load
    /// moved from `(old_active, old_remaining)` to the current values.
    /// Unavailable servers own no ranking entries, so only their ledgers
    /// move (they re-enter the rankings at the updated score on
    /// [`StaticIndex::set_available`]).
    fn rerank(&mut self, server: ServerId, old_active: u32, old_remaining: f64) {
        let s = server.index();
        if !self.available[s] {
            return;
        }
        let (new_active, new_remaining) = (self.active[s], self.remaining[s]);
        let scoring = self.scoring;
        for p in 0..self.durations.len() / self.n_servers {
            if let Some(d) = self.durations[p * self.n_servers + s] {
                let old = proxy_score(scoring, d, old_active, old_remaining);
                self.remove_key(p, s as u32, score_bits(old));
                let new = proxy_score(scoring, d, new_active, new_remaining);
                self.insert_key(p, s as u32, score_bits(new));
            }
        }
    }

    /// Marks `server` live or down. A downed server leaves every ranking
    /// (stage 1 stops proposing it, the per-problem skylines move on); a
    /// rejoining server re-enters at its current believed-load score.
    /// Ledgers are untouched either way, so completions draining off a
    /// leaving server keep their accounting. Returns `true` when the
    /// state actually changed (the call is idempotent).
    pub fn set_available(&mut self, server: ServerId, up: bool) -> bool {
        let s = server.index();
        if self.available[s] == up {
            return false;
        }
        self.available[s] = up;
        let (active, remaining) = (self.active[s], self.remaining[s]);
        let scoring = self.scoring;
        for p in 0..self.durations.len() / self.n_servers {
            if let Some(d) = self.durations[p * self.n_servers + s] {
                let bits = score_bits(proxy_score(scoring, d, active, remaining));
                if up {
                    self.insert_key(p, s as u32, bits);
                } else {
                    self.remove_key(p, s as u32, bits);
                }
            }
        }
        true
    }

    /// Whether `server` is currently live (present in the rankings).
    pub fn is_available(&self, server: ServerId) -> bool {
        self.available[server.index()]
    }

    /// Extends the index with one new server, online: `durations[p]` is
    /// the new server's unloaded duration for problem `p` (`None` =
    /// unsolvable there). The server joins live, with an empty ledger, at
    /// the next id — bit-identical to rebuilding the index from the
    /// extended cost table (proven by test).
    ///
    /// # Panics
    /// Panics unless exactly one duration per problem is given.
    pub fn push_server(&mut self, durations: &[Option<f64>]) {
        let n_problems = self.durations.len() / self.n_servers;
        assert_eq!(durations.len(), n_problems, "one duration per problem");
        let old_n = self.n_servers;
        let mut rows = Vec::with_capacity((old_n + 1) * n_problems);
        for (p, d) in durations.iter().enumerate() {
            rows.extend_from_slice(&self.durations[p * old_n..(p + 1) * old_n]);
            rows.push(*d);
        }
        self.durations = rows;
        self.n_servers = old_n + 1;
        self.active.push(0);
        self.remaining.push(0.0);
        self.available.push(true);
        if let RankStore::Flat(ranks) = &mut self.ranked {
            for r in ranks.iter_mut() {
                r.push_slot();
            }
        }
        let scoring = self.scoring;
        for (p, d) in durations.iter().enumerate() {
            if let Some(d) = *d {
                self.insert_key(p, old_n as u32, score_bits(proxy_score(scoring, d, 0, 0.0)));
            }
        }
    }

    /// A task was committed to `server`: its believed load grows by one
    /// task and by `work` seconds (the task's service demand — its
    /// unloaded duration on this server — recorded at commit time).
    pub fn on_commit(&mut self, server: ServerId, work: f64) {
        let s = server.index();
        let (old_active, old_remaining) = (self.active[s], self.remaining[s]);
        self.active[s] = old_active + 1;
        self.remaining[s] = old_remaining + work.max(0.0);
        self.rerank(server, old_active, old_remaining);
    }

    /// A committed task was retracted from `server` (the placement was
    /// undone before running): believed load shrinks by the same amounts
    /// the commit added.
    pub fn on_retract(&mut self, server: ServerId, work: f64) {
        self.on_complete(server, work);
    }

    /// A task completed on `server`: believed load shrinks by one task
    /// and by the `work` its commit added (the remaining-work ledger is
    /// floored at zero against float drift).
    ///
    /// # Panics
    /// Panics if the believed load is already zero (a completion without a
    /// matching commit is an accounting bug).
    pub fn on_complete(&mut self, server: ServerId, work: f64) {
        let s = server.index();
        let (old_active, old_remaining) = (self.active[s], self.remaining[s]);
        assert!(
            old_active > 0,
            "completion on {server} without a matching commit"
        );
        self.active[s] = old_active - 1;
        self.remaining[s] = if self.active[s] == 0 {
            // An empty server carries no backlog: resetting (rather than
            // subtracting) cancels any accumulated float drift.
            0.0
        } else {
            (old_remaining - work.max(0.0)).max(0.0)
        };
        self.rerank(server, old_active, old_remaining);
    }

    /// Walks `problem`'s ranking in ascending score order, best first,
    /// skipping servers rejected by `admit`. The iterator is lazy: taking
    /// `k` items touches `k + rejected` keys (plus any stale keys the
    /// flat backend skips on the way), not all `n`.
    pub fn ranked_iter<'a>(
        &'a self,
        problem: ProblemId,
        admit: &'a dyn Fn(ServerId) -> bool,
    ) -> impl Iterator<Item = (ServerId, f64)> + 'a {
        self.ranked_keys(problem)
            .map(|(bits, s)| (ServerId(s), f64::from_bits(bits)))
            .filter(move |&(s, _)| admit(s))
    }

    /// Fills `out` with the `k` admissible servers of lowest stage-1 score
    /// for `problem` (ties to the lowest id), in ascending **score** order.
    /// Fewer than `k` survive when the admissible set is smaller.
    pub fn k_best(
        &self,
        problem: ProblemId,
        k: usize,
        admit: &dyn Fn(ServerId) -> bool,
        out: &mut Vec<(ServerId, f64)>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        out.extend(self.ranked_iter(problem, admit).take(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PhaseCosts;
    use crate::task::Problem;
    use proptest::prelude::*;

    const BACKENDS: [RankingsBackend; 2] = [RankingsBackend::Flat, RankingsBackend::Btree];

    /// 3 servers; P0 durations 100/150/300, P1 solvable only on S1 (50).
    fn table() -> CostTable {
        let mut c = CostTable::new(3);
        c.add_problem(
            Problem::new("p0", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 100.0, 0.0)),
                Some(PhaseCosts::new(0.0, 150.0, 0.0)),
                Some(PhaseCosts::new(0.0, 300.0, 0.0)),
            ],
        );
        c.add_problem(
            Problem::new("p1", 0.0, 0.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.0, 50.0, 0.0)), None],
        );
        c
    }

    fn best(idx: &StaticIndex, p: u32, k: usize) -> Vec<u32> {
        let mut out = Vec::new();
        idx.k_best(ProblemId(p), k, &|_| true, &mut out);
        out.into_iter().map(|(s, _)| s.0).collect()
    }

    #[test]
    fn initial_ranking_is_static_cost_order() {
        for backend in BACKENDS {
            let idx = StaticIndex::with_backend(&table(), IndexScoring::default(), backend);
            assert_eq!(idx.backend(), backend);
            assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
            assert_eq!(best(&idx, 0, 2), vec![0, 1]);
            assert_eq!(best(&idx, 1, 3), vec![1], "only S1 solves P1");
            assert_eq!(idx.score(ProblemId(0), ServerId(2)), Some(300.0));
            assert_eq!(idx.score(ProblemId(1), ServerId(0)), None);
        }
    }

    #[test]
    fn commit_reorders_and_complete_restores() {
        for backend in BACKENDS {
            let mut idx = StaticIndex::with_backend(&table(), IndexScoring::ActiveCount, backend);
            // Two commits on S0: score(P0,S0) = 100·3 = 300, ties S2's 300 →
            // id order keeps S0 ahead of S2.
            idx.on_commit(ServerId(0), 100.0);
            idx.on_commit(ServerId(0), 100.0);
            assert_eq!(idx.active(ServerId(0)), 2);
            assert_eq!(best(&idx, 0, 3), vec![1, 0, 2]);
            // A third commit pushes S0 last.
            idx.on_commit(ServerId(0), 100.0);
            assert_eq!(best(&idx, 0, 3), vec![1, 2, 0]);
            idx.on_complete(ServerId(0), 100.0);
            idx.on_retract(ServerId(0), 100.0);
            idx.on_complete(ServerId(0), 100.0);
            assert_eq!(idx.active(ServerId(0)), 0);
            assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
        }
    }

    /// Edge case for the crash path: retracting the *last* in-flight
    /// task of a server drains its ledger to exactly zero and restores
    /// the pristine static order.
    #[test]
    fn retracting_last_in_flight_task_restores_static_rank() {
        for backend in BACKENDS {
            let mut idx = StaticIndex::with_backend(&table(), IndexScoring::default(), backend);
            idx.on_commit(ServerId(0), 500.0);
            assert_eq!(best(&idx, 0, 3), vec![1, 2, 0]);
            idx.on_retract(ServerId(0), 500.0);
            assert_eq!(idx.remaining(ServerId(0)), 0.0);
            assert_eq!(idx.active(ServerId(0)), 0);
            assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
        }
    }

    /// Edge case for the crash path: a retract racing the server's
    /// crash at the same instant. Ledger update before the
    /// availability flip, or flip first with the ledger draining while
    /// down — both orders converge, and repair re-inserts the server
    /// at its believed (drained) load.
    #[test]
    fn retract_and_crash_same_instant_orders_converge() {
        for crash_first in [false, true] {
            let mut idx = StaticIndex::new(&table());
            idx.on_commit(ServerId(0), 500.0);
            idx.on_commit(ServerId(1), 10.0);
            if crash_first {
                assert!(idx.set_available(ServerId(0), false));
                idx.on_retract(ServerId(0), 500.0);
            } else {
                idx.on_retract(ServerId(0), 500.0);
                assert!(idx.set_available(ServerId(0), false));
            }
            assert!(!idx.is_available(ServerId(0)), "crash_first={crash_first}");
            assert_eq!(idx.solvable_count(ProblemId(0)), 2);
            assert_eq!(best(&idx, 0, 3), vec![1, 2]);
            assert_eq!(idx.remaining(ServerId(0)), 0.0);
            assert!(idx.set_available(ServerId(0), true));
            assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
            assert_eq!(
                idx.best_key(ProblemId(0)).map(|(_, s)| s),
                Some(ServerId(0)),
                "repaired server leads the skyline again"
            );
        }
    }

    #[test]
    fn remaining_work_ranks_by_backlog_not_count() {
        // S0 (d=100) carries one long task (500 s of predicted work);
        // S1 (d=150) carries two short ones (10 s each). The count scorer
        // prefers S0 (100·2 = 200 < 150·3 = 450); the remaining-work
        // scorer sees through the mix (100+500 = 600 > 150+20 = 170).
        let mut by_count = StaticIndex::with_scoring(&table(), IndexScoring::ActiveCount);
        let mut by_work = StaticIndex::new(&table());
        assert_eq!(by_work.scoring(), IndexScoring::RemainingWork);
        for idx in [&mut by_count, &mut by_work] {
            idx.on_commit(ServerId(0), 500.0);
            idx.on_commit(ServerId(1), 10.0);
            idx.on_commit(ServerId(1), 10.0);
        }
        assert_eq!(best(&by_count, 0, 3), vec![0, 2, 1]);
        assert_eq!(best(&by_work, 0, 3), vec![1, 2, 0]);
        assert_eq!(by_work.score(ProblemId(0), ServerId(0)), Some(600.0));
        assert_eq!(by_work.remaining(ServerId(1)), 20.0);
        // Completions restore the static order and drain the ledger.
        by_work.on_complete(ServerId(0), 500.0);
        by_work.on_complete(ServerId(1), 10.0);
        by_work.on_complete(ServerId(1), 10.0);
        assert_eq!(best(&by_work, 0, 3), vec![0, 1, 2]);
        assert_eq!(by_work.remaining(ServerId(0)), 0.0);
    }

    #[test]
    fn remaining_ledger_resets_when_idle_and_floors_at_zero() {
        let mut idx = StaticIndex::new(&table());
        idx.on_commit(ServerId(0), 0.1);
        idx.on_commit(ServerId(0), 0.2);
        // Completion reporting more work than remains must floor, not go
        // negative (scores must stay valid sort keys).
        idx.on_complete(ServerId(0), 5.0);
        assert_eq!(idx.remaining(ServerId(0)), 0.0);
        assert!(idx.score(ProblemId(0), ServerId(0)).unwrap() >= 100.0);
        // Draining to idle resets the ledger exactly (no float residue).
        idx.on_complete(ServerId(0), 0.0);
        assert_eq!(idx.active(ServerId(0)), 0);
        assert_eq!(idx.remaining(ServerId(0)), 0.0);
        assert_eq!(idx.score(ProblemId(0), ServerId(0)), Some(100.0));
    }

    #[test]
    fn scoring_parse_roundtrip() {
        assert_eq!(
            IndexScoring::parse("work"),
            Some(IndexScoring::RemainingWork)
        );
        assert_eq!(
            IndexScoring::parse("COUNT"),
            Some(IndexScoring::ActiveCount)
        );
        assert_eq!(IndexScoring::parse("nope"), None);
        for s in [IndexScoring::RemainingWork, IndexScoring::ActiveCount] {
            assert_eq!(IndexScoring::parse(s.name()), Some(s));
        }
    }

    #[test]
    fn backend_parse_roundtrip() {
        assert_eq!(RankingsBackend::parse("flat"), Some(RankingsBackend::Flat));
        assert_eq!(
            RankingsBackend::parse("BTREE"),
            Some(RankingsBackend::Btree)
        );
        assert_eq!(RankingsBackend::parse("nope"), None);
        assert_eq!(RankingsBackend::default(), RankingsBackend::Flat);
        for b in BACKENDS {
            assert_eq!(RankingsBackend::parse(b.name()), Some(b));
        }
    }

    #[test]
    fn k_larger_than_n_and_zero() {
        let idx = StaticIndex::new(&table());
        assert_eq!(best(&idx, 0, 100), vec![0, 1, 2]);
        assert_eq!(best(&idx, 0, 0), Vec::<u32>::new());
    }

    #[test]
    fn filter_skips_servers_without_losing_rank() {
        let idx = StaticIndex::new(&table());
        let mut out = Vec::new();
        idx.k_best(ProblemId(0), 2, &|s| s != ServerId(0), &mut out);
        assert_eq!(out.iter().map(|(s, _)| s.0).collect::<Vec<_>>(), [1, 2]);
    }

    /// The skyline (best key per problem) tracks the hooks exactly: it is
    /// the head of the ranking after every commit/retract/complete, and
    /// `None` where nothing can solve the problem.
    #[test]
    fn skyline_follows_hooks() {
        for backend in BACKENDS {
            let mut idx = StaticIndex::with_backend(&table(), IndexScoring::default(), backend);
            assert_eq!(
                idx.best_key(ProblemId(0)),
                Some((100.0f64.to_bits(), ServerId(0)))
            );
            assert_eq!(
                idx.best_key(ProblemId(1)),
                Some((50.0f64.to_bits(), ServerId(1)))
            );
            assert_eq!(idx.solvable_count(ProblemId(0)), 3);
            assert_eq!(idx.solvable_count(ProblemId(1)), 1);
            // Loading S0 past S1's 150 moves the P0 skyline to S1…
            idx.on_commit(ServerId(0), 200.0);
            assert_eq!(
                idx.best_key(ProblemId(0)),
                Some((150.0f64.to_bits(), ServerId(1)))
            );
            // …and a retract repairs it back (stale-then-repaired).
            idx.on_retract(ServerId(0), 200.0);
            assert_eq!(
                idx.best_key(ProblemId(0)),
                Some((100.0f64.to_bits(), ServerId(0)))
            );
            // A problem nobody solves has no skyline and zero width.
            let mut costs = table();
            costs.add_problem(Problem::new("p2", 0.0, 0.0, 0.0), vec![None, None, None]);
            let idx = StaticIndex::with_backend(&costs, IndexScoring::default(), backend);
            assert_eq!(idx.best_key(ProblemId(2)), None);
            assert_eq!(idx.solvable_count(ProblemId(2)), 0);
        }
    }

    #[test]
    #[should_panic(expected = "without a matching commit")]
    fn unbalanced_complete_panics() {
        let mut idx = StaticIndex::new(&table());
        idx.on_complete(ServerId(1), 0.0);
    }

    /// A downed server vanishes from every ranking and skyline; a
    /// rejoining one re-enters at its current believed-load score; and
    /// ledger hooks fired while it is down are honoured on re-entry.
    #[test]
    fn availability_moves_rankings_and_skylines() {
        for backend in BACKENDS {
            let mut idx = StaticIndex::with_backend(&table(), IndexScoring::default(), backend);
            assert!(idx.is_available(ServerId(0)));
            assert!(idx.set_available(ServerId(0), false));
            assert!(!idx.set_available(ServerId(0), false), "idempotent");
            assert!(!idx.is_available(ServerId(0)));
            assert_eq!(best(&idx, 0, 3), vec![1, 2]);
            assert_eq!(idx.solvable_count(ProblemId(0)), 2);
            assert_eq!(
                idx.best_key(ProblemId(0)),
                Some((150.0f64.to_bits(), ServerId(1)))
            );
            // The score query itself still answers (the ledger survives).
            assert_eq!(idx.score(ProblemId(0), ServerId(0)), Some(100.0));
            // Ledger mutations while down re-rank nothing but are kept:
            // the server re-enters at the loaded score.
            idx.on_commit(ServerId(0), 200.0);
            assert_eq!(best(&idx, 0, 3), vec![1, 2]);
            assert!(idx.set_available(ServerId(0), true));
            assert_eq!(idx.score(ProblemId(0), ServerId(0)), Some(300.0));
            assert_eq!(best(&idx, 0, 3), vec![1, 0, 2], "300 ties S2, id wins");
            // Draining the task restores the static order.
            idx.on_complete(ServerId(0), 200.0);
            assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
            // Downing every solver of P1 empties its skyline.
            idx.set_available(ServerId(1), false);
            assert_eq!(idx.best_key(ProblemId(1)), None);
            assert_eq!(idx.solvable_count(ProblemId(1)), 0);
        }
    }

    /// A completion may arrive while the server is down (leave-drain):
    /// the ledger updates without touching the absent ranking entries.
    #[test]
    fn completion_while_down_keeps_ledger_consistent() {
        let mut idx = StaticIndex::new(&table());
        idx.on_commit(ServerId(1), 50.0);
        idx.set_available(ServerId(1), false);
        idx.on_complete(ServerId(1), 50.0);
        assert_eq!(idx.active(ServerId(1)), 0);
        assert_eq!(idx.remaining(ServerId(1)), 0.0);
        idx.set_available(ServerId(1), true);
        assert_eq!(best(&idx, 0, 3), vec![0, 1, 2]);
        assert_eq!(idx.score(ProblemId(0), ServerId(1)), Some(150.0));
    }

    /// Online extension is bit-identical to a fresh build over the
    /// extended table, for both scoring proxies and both backends.
    #[test]
    fn push_server_matches_fresh_build() {
        let mut extended = table();
        extended.push_server(vec![
            Some(PhaseCosts::new(0.0, 120.0, 0.0)),
            Some(PhaseCosts::new(0.0, 40.0, 0.0)),
        ]);
        for backend in BACKENDS {
            for scoring in [IndexScoring::RemainingWork, IndexScoring::ActiveCount] {
                let mut grown = StaticIndex::with_backend(&table(), scoring, backend);
                grown.push_server(&[Some(120.0), Some(40.0)]);
                let fresh = StaticIndex::with_backend(&extended, scoring, backend);
                assert_eq!(grown.n_servers(), 4);
                for p in 0..2u32 {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    grown.k_best(ProblemId(p), 4, &|_| true, &mut a);
                    fresh.k_best(ProblemId(p), 4, &|_| true, &mut b);
                    assert_eq!(a, b, "{scoring:?} {backend:?} P{p}");
                    assert_eq!(grown.best_key(ProblemId(p)), fresh.best_key(ProblemId(p)));
                }
                // The new server takes P1's skyline (40 < 50) and ranks by
                // load like any other afterwards.
                assert_eq!(
                    grown.best_key(ProblemId(1)),
                    Some((40.0f64.to_bits(), ServerId(3)))
                );
                grown.on_commit(ServerId(3), 100.0);
                assert_eq!(
                    grown.best_key(ProblemId(1)),
                    Some((50.0f64.to_bits(), ServerId(1)))
                );
            }
        }
    }

    /// The incremental ranking always equals a from-scratch recompute,
    /// under both scoring proxies and both backends.
    #[test]
    fn incremental_matches_rescan_after_churn() {
        let costs = table();
        let ops: [(u32, bool, f64); 9] = [
            (0, true, 12.5),
            (1, true, 3.0),
            (0, true, 40.0),
            (2, true, 7.25),
            (0, false, 12.5),
            (1, true, 0.0),
            (1, false, 3.0),
            (2, false, 7.25),
            (1, false, 0.0),
        ];
        for backend in BACKENDS {
            for scoring in [IndexScoring::RemainingWork, IndexScoring::ActiveCount] {
                let mut idx = StaticIndex::with_backend(&costs, scoring, backend);
                for (s, up, work) in ops {
                    if up {
                        idx.on_commit(ServerId(s), work);
                    } else {
                        idx.on_complete(ServerId(s), work);
                    }
                    for p in 0..costs.n_problems() as u32 {
                        let got = best(&idx, p, 3);
                        let mut expect: Vec<(u64, u32)> = (0..3u32)
                            .filter_map(|sv| {
                                idx.score(ProblemId(p), ServerId(sv))
                                    .map(|sc| (sc.to_bits(), sv))
                            })
                            .collect();
                        expect.sort_unstable();
                        let expect: Vec<u32> = expect.into_iter().map(|(_, sv)| sv).collect();
                        assert_eq!(got, expect, "{scoring:?} problem {p} after ({s}, {up})");
                    }
                }
            }
        }
    }

    /// Work values whose sums stay exactly representable, so a commit
    /// with `work = 0` under `RemainingWork` re-ranks to the *same* key
    /// — the revive-in-place corner of the flat ladder.
    fn arb_work() -> impl Strategy<Value = f64> {
        (0u32..8).prop_map(|w| w as f64 * 0.25)
    }

    /// Mixed op stream over `n` servers: commit / complete / crash /
    /// repair, with completes only consumed when balanced by the driver.
    fn arb_index_ops(n: u32) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
        proptest::collection::vec((0u32..4, 0..n, arb_work()), 0..120)
    }

    /// Drives the same op stream into a flat-backed and a BTree-backed
    /// index and diffs **every** query after every op: skyline, ranking
    /// cardinality, full ordered walk, filtered k-best. The op volume
    /// runs far past `RUN0_CAP`, so ladder merges, revive-in-place and
    /// the stale-head advance all fire many times per case.
    fn diff_backends(n_servers: usize, ops: &[(u32, u32, f64)]) {
        let mut costs = CostTable::new(n_servers);
        for p in 0..3usize {
            costs.add_problem(
                Problem::new(format!("p{p}"), 0.0, 0.0, 0.0),
                (0..n_servers)
                    .map(|s| {
                        // A third of the pairs unsolvable; clustered
                        // durations so score ties are common.
                        ((s + p) % 3 != 0)
                            .then(|| PhaseCosts::new(0.0, 10.0 + ((s * 7 + p * 3) % 5) as f64, 0.0))
                    })
                    .collect(),
            );
        }
        for scoring in [IndexScoring::RemainingWork, IndexScoring::ActiveCount] {
            let mut flat = StaticIndex::with_backend(&costs, scoring, RankingsBackend::Flat);
            let mut spec = StaticIndex::with_backend(&costs, scoring, RankingsBackend::Btree);
            let mut in_flight: Vec<Vec<f64>> = vec![Vec::new(); n_servers];
            for &(kind, s, work) in ops {
                let server = ServerId(s);
                match kind {
                    0 => {
                        flat.on_commit(server, work);
                        spec.on_commit(server, work);
                        in_flight[s as usize].push(work);
                    }
                    1 => {
                        if let Some(w) = in_flight[s as usize].pop() {
                            flat.on_complete(server, w);
                            spec.on_complete(server, w);
                        }
                    }
                    2 => {
                        flat.set_available(server, false);
                        spec.set_available(server, false);
                    }
                    _ => {
                        flat.set_available(server, true);
                        spec.set_available(server, true);
                    }
                }
                for p in 0..costs.n_problems() as u32 {
                    let problem = ProblemId(p);
                    assert_eq!(
                        flat.best_key(problem),
                        spec.best_key(problem),
                        "skyline P{p}"
                    );
                    assert_eq!(
                        flat.solvable_count(problem),
                        spec.solvable_count(problem),
                        "cardinality P{p}"
                    );
                    let walk_f: Vec<_> = flat.ranked_iter(problem, &|_| true).collect();
                    let walk_b: Vec<_> = spec.ranked_iter(problem, &|_| true).collect();
                    assert_eq!(walk_f, walk_b, "ordered walk P{p}");
                    let admit = |sv: ServerId| sv.0.is_multiple_of(2);
                    let (mut kf, mut kb) = (Vec::new(), Vec::new());
                    flat.k_best(problem, 3, &admit, &mut kf);
                    spec.k_best(problem, 3, &admit, &mut kb);
                    assert_eq!(kf, kb, "filtered k-best P{p}");
                }
            }
            // Conversion in both directions preserves every ranking.
            let mut converted = flat.clone();
            converted.set_backend(RankingsBackend::Btree);
            let mut back = converted.clone();
            back.set_backend(RankingsBackend::Flat);
            for p in 0..costs.n_problems() as u32 {
                let problem = ProblemId(p);
                let walk: Vec<_> = flat.ranked_iter(problem, &|_| true).collect();
                let conv: Vec<_> = converted.ranked_iter(problem, &|_| true).collect();
                let round: Vec<_> = back.ranked_iter(problem, &|_| true).collect();
                assert_eq!(walk, conv, "flat→btree conversion P{p}");
                assert_eq!(walk, round, "btree→flat round trip P{p}");
            }
        }
    }

    proptest! {
        /// The flat ladder is bit-identical to the BTree spec under
        /// arbitrary commit/complete/crash/repair interleavings, for
        /// every query surface and both scoring proxies.
        #[test]
        fn flat_rankings_match_btree_spec(ops in arb_index_ops(7)) {
            diff_backends(7, &ops);
        }

        /// Same property on a farm of two servers — the degenerate
        /// rankings where head maintenance and compaction corner cases
        /// concentrate.
        #[test]
        fn flat_rankings_match_btree_spec_tiny_farm(ops in arb_index_ops(2)) {
            diff_backends(2, &ops);
        }
    }

    /// Deterministic hammer past the proptest budget: thousands of
    /// hooks on one index, forcing many compaction cycles, with a full
    /// walk diffed against the BTree spec at every step.
    #[test]
    fn flat_ladder_survives_long_churn() {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move |m: u64| {
            // xorshift64* — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D) % m
        };
        let mut ops = Vec::with_capacity(3000);
        for _ in 0..3000 {
            ops.push((next(4) as u32, next(7) as u32, next(8) as f64 * 0.25));
        }
        diff_backends(7, &ops);
    }
}

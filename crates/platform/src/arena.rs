//! A generational slab arena for per-task records.
//!
//! Grid experiments create and retire hundreds of thousands of short-lived
//! per-task records (in-flight state in the middleware, committed-task
//! metadata in the HTM). Hash maps keyed by `TaskId` put every lookup on a
//! hashing path and every insert on an allocation path; boxing records
//! scatters them across the heap. The arena replaces both patterns:
//!
//! * records live contiguously in one `Vec`, slots are recycled through a
//!   free list, so steady-state operation allocates nothing;
//! * a typed key ([`ArenaKey<T>`]) is a 32-bit index plus a generation
//!   stamp. Indices are recycled, generations are not: a key held past its
//!   record's removal misses (`get` returns `None`) instead of silently
//!   reading whatever task reused the slot — the ABA protection that a raw
//!   index into a slab lacks;
//! * keys are typed by the record they point at, so a flight key cannot be
//!   passed where a committed-task key is expected — the same zero-cost
//!   discipline [`crate::ids`] applies to servers, problems and tasks.
//!
//! The arena deliberately has no "lookup by external id" operation: callers
//! that need `TaskId → key` translation keep their own dense index (task
//! ids in a metatask are dense submission indices) or small map, which
//! keeps this type a pure store.

use std::marker::PhantomData;

/// A typed handle to a record in an [`Arena<T>`].
///
/// `Copy`, 8 bytes, and valid only while the record it was issued for is
/// still live: removing the record invalidates the key (generation
/// mismatch), even after the slot is reused.
pub struct ArenaKey<T> {
    index: u32,
    generation: u32,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: derives would bound on `T`, but keys are plain indices.
impl<T> Clone for ArenaKey<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArenaKey<T> {}
impl<T> PartialEq for ArenaKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.generation == other.generation
    }
}
impl<T> Eq for ArenaKey<T> {}
impl<T> std::hash::Hash for ArenaKey<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
        self.generation.hash(state);
    }
}
impl<T> std::fmt::Debug for ArenaKey<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ArenaKey({}v{})", self.index, self.generation)
    }
}

/// One slot: the generation of the key that can read it, plus the record.
#[derive(Debug, Clone)]
struct Slot<T> {
    /// Incremented on every removal; a slot's live key must match exactly.
    generation: u32,
    value: Option<T>,
}

/// A generational slab arena. See the module docs.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Indices of vacant slots, reused LIFO (cache-warm).
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena with room for `cap` records before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no records are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its key. Reuses a vacant slot when one
    /// exists; the returned key's generation distinguishes it from every
    /// key the slot issued before.
    pub fn insert(&mut self, value: T) -> ArenaKey<T> {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free-listed slot must be vacant");
            slot.value = Some(value);
            ArenaKey {
                index,
                generation: slot.generation,
                _marker: PhantomData,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena indices fit in u32");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            ArenaKey {
                index,
                generation: 0,
                _marker: PhantomData,
            }
        }
    }

    /// The record behind `key`, if still live.
    pub fn get(&self, key: ArenaKey<T>) -> Option<&T> {
        self.slots
            .get(key.index as usize)
            .filter(|s| s.generation == key.generation)
            .and_then(|s| s.value.as_ref())
    }

    /// Mutable access to the record behind `key`, if still live.
    pub fn get_mut(&mut self, key: ArenaKey<T>) -> Option<&mut T> {
        self.slots
            .get_mut(key.index as usize)
            .filter(|s| s.generation == key.generation)
            .and_then(|s| s.value.as_mut())
    }

    /// `true` while `key`'s record is live.
    pub fn contains(&self, key: ArenaKey<T>) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the record behind `key`. Stale keys (already
    /// removed, or from a previous occupant of the slot) return `None` and
    /// change nothing.
    pub fn remove(&mut self, key: ArenaKey<T>) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        let value = slot.value.take()?;
        // Bump on removal: every key issued for the old occupant is now
        // permanently stale, including `key` itself.
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        Some(value)
    }

    /// Iterates over live records (slot order, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.value.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena: Arena<String> = Arena::new();
        let a = arena.insert("a".into());
        let b = arena.insert("b".into());
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).unwrap(), "a");
        assert_eq!(arena.get(b).unwrap(), "b");
        assert_eq!(arena.remove(a).unwrap(), "a");
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn stale_key_misses_after_slot_reuse() {
        let mut arena: Arena<u32> = Arena::new();
        let first = arena.insert(1);
        arena.remove(first);
        let second = arena.insert(2);
        // Slot recycled, but the old key must not read the new occupant.
        assert_eq!(arena.get(first), None);
        assert!(!arena.contains(first));
        assert_eq!(arena.remove(first), None);
        assert_eq!(arena.get(second), Some(&2));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn slots_are_recycled() {
        let mut arena: Arena<u64> = Arena::new();
        let keys: Vec<_> = (0..100u64).map(|i| arena.insert(i)).collect();
        for k in &keys {
            arena.remove(*k);
        }
        assert!(arena.is_empty());
        for i in 0..100u64 {
            arena.insert(i);
        }
        // No new slots beyond the original hundred.
        assert_eq!(arena.slots.len(), 100);
        assert_eq!(arena.len(), 100);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut arena: Arena<Vec<u8>> = Arena::new();
        let k = arena.insert(vec![1]);
        arena.get_mut(k).unwrap().push(2);
        assert_eq!(arena.get(k).unwrap(), &[1, 2]);
    }

    #[test]
    fn iter_sees_only_live_records() {
        let mut arena: Arena<u32> = Arena::new();
        let a = arena.insert(1);
        let _b = arena.insert(2);
        let c = arena.insert(3);
        arena.remove(a);
        arena.remove(c);
        let live: Vec<u32> = arena.iter().copied().collect();
        assert_eq!(live, vec![2]);
    }

    #[test]
    fn double_remove_is_none() {
        let mut arena: Arena<u8> = Arena::new();
        let k = arena.insert(9);
        assert_eq!(arena.remove(k), Some(9));
        assert_eq!(arena.remove(k), None);
        assert_eq!(arena.len(), 0);
    }
}

//! Servers: specifications (Table 2) and runtime state.
//!
//! A [`ServerRuntime`] bundles the three shared resources a task's phases
//! run through — the input link, the time-shared CPU, the output link — and
//! the memory accounting whose exhaustion drives the paper's first set of
//! experiments ("HMCT and MCT overload the fastest servers that cannot
//! accept any more jobs because it runs out of memory", §5.1).
//!
//! The memory model has three regimes:
//!
//! * resident ≤ RAM — full speed;
//! * RAM < resident ≤ RAM + swap — *thrashing*: CPU capacity is divided by
//!   a configurable slowdown factor per MB of overcommit ratio (the machine
//!   still makes progress, slowly — matching the "very high values … huge
//!   time and space contention" the paper reports for overloaded servers);
//! * resident + new task > RAM + swap — *admission fails*: the task is
//!   rejected ([`AdmitOutcome::Rejected`]), and the server counts a strike;
//!   after `collapse_after_rejections` strikes it *collapses* and refuses
//!   all further work, modelling the servers that "collapsed during the
//!   experiment".

use crate::fairshare::FairShareResource;
use crate::ids::TaskId;
use cas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Static description of a server machine (the rows of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Host name, e.g. `"artimon"`.
    pub name: String,
    /// CPU clock in MHz — informational; actual task speeds come from the
    /// cost tables, as in the paper.
    pub cpu_mhz: f64,
    /// Physical memory in MB.
    pub ram_mb: f64,
    /// Swap space in MB.
    pub swap_mb: f64,
}

impl ServerSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cpu_mhz: f64, ram_mb: f64, swap_mb: f64) -> Self {
        ServerSpec {
            name: name.into(),
            cpu_mhz,
            ram_mb,
            swap_mb,
        }
    }

    /// Total memory (RAM + swap) before admission fails.
    pub fn total_mem_mb(&self) -> f64 {
        self.ram_mb + self.swap_mb
    }
}

/// Memory-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Whether memory is modelled at all. The paper's second experiment set
    /// ("waste-cpu") was designed so memory never matters; switching the
    /// model off entirely reproduces an idealised environment.
    pub enabled: bool,
    /// Thrashing slowdown: effective CPU capacity is divided by
    /// `1 + strength * overcommit` where `overcommit =
    /// (resident - ram) / ram` (only when resident > ram).
    pub thrash_strength: f64,
    /// Number of rejected admissions after which the server collapses and
    /// accepts nothing more. `u32::MAX` disables collapse.
    pub collapse_after_rejections: u32,
}

impl Default for MemoryModel {
    /// The calibration used by the paper-table experiments: admission
    /// control (RAM + swap cap) active, no thrashing slowdown, collapse
    /// only after massive rejection counts. Calibrated so that the
    /// low-rate matmul metatask completes 500/500 under every heuristic
    /// (Table 5) while the high rate loses tasks for the HTM heuristics
    /// without fault tolerance (Table 6) — see EXPERIMENTS.md. Thrashing
    /// is explored separately as an ablation
    /// ([`MemoryModel::thrashing`]).
    fn default() -> Self {
        MemoryModel {
            enabled: true,
            thrash_strength: 0.0,
            collapse_after_rejections: 1000,
        }
    }
}

impl MemoryModel {
    /// A model in which memory never constrains anything.
    pub fn disabled() -> Self {
        MemoryModel {
            enabled: false,
            thrash_strength: 0.0,
            collapse_after_rejections: u32::MAX,
        }
    }

    /// A harsher model with a thrashing slowdown (`strength` per unit of
    /// RAM overcommit) and fast collapse — the ablation arm showing the
    /// feedback spiral that takes servers down when paging is punished.
    pub fn thrashing(strength: f64, collapse_after_rejections: u32) -> Self {
        MemoryModel {
            enabled: true,
            thrash_strength: strength,
            collapse_after_rejections,
        }
    }
}

/// Result of trying to start a task's compute phase on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The task was admitted and is now running.
    Admitted,
    /// Not enough memory (RAM + swap) — the task is refused.
    Rejected,
    /// The server has collapsed and refuses all work.
    Collapsed,
}

/// Runtime state of one server: three fair-share resources plus memory.
///
/// Work units: the CPU's work unit is "seconds of computation on this
/// unloaded server" (capacity 1.0 means one such second per wall second, the
/// nominal speed); the links' work unit is likewise "seconds of transfer on
/// the unloaded link". Using cost-seconds directly — rather than ops and MB —
/// mirrors the paper, whose static information *is* the measured seconds.
#[derive(Debug, Clone)]
pub struct ServerRuntime {
    spec: ServerSpec,
    mem_model: MemoryModel,
    /// Time-shared CPU. Nominal capacity 1.0; scaled by noise and thrashing.
    pub cpu: FairShareResource<TaskId>,
    /// Client → server transfers in flight.
    pub link_in: FairShareResource<TaskId>,
    /// Server → client transfers in flight.
    pub link_out: FairShareResource<TaskId>,
    /// Resident memory of admitted compute tasks, MB.
    resident_mb: f64,
    /// Per-task memory, so completion can release the right amount.
    task_mem: Vec<(TaskId, f64)>,
    /// Multiplicative CPU speed noise (ground-truth realism), median 1.
    noise_factor: f64,
    rejections: u32,
    collapsed: bool,
}

impl ServerRuntime {
    /// Creates an idle server.
    pub fn new(spec: ServerSpec, mem_model: MemoryModel) -> Self {
        ServerRuntime {
            spec,
            mem_model,
            cpu: FairShareResource::new(1.0),
            link_in: FairShareResource::new(1.0),
            link_out: FairShareResource::new(1.0),
            resident_mb: 0.0,
            task_mem: Vec::new(),
            noise_factor: 1.0,
            rejections: 0,
            collapsed: false,
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Resident memory of running compute tasks, MB.
    pub fn resident_mb(&self) -> f64 {
        self.resident_mb
    }

    /// Whether the server has collapsed.
    pub fn is_collapsed(&self) -> bool {
        self.collapsed
    }

    /// Number of admissions rejected so far.
    pub fn rejections(&self) -> u32 {
        self.rejections
    }

    /// Run-queue length (number of tasks in the compute phase) — what the
    /// load monitor samples.
    pub fn run_queue_len(&self) -> usize {
        self.cpu.len()
    }

    /// Applies a new multiplicative speed-noise factor (ground truth only;
    /// the HTM never sees this). Recomputes effective CPU capacity.
    pub fn set_noise(&mut self, now: SimTime, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite());
        self.noise_factor = factor;
        self.apply_capacity(now);
    }

    fn thrash_factor(&self) -> f64 {
        if !self.mem_model.enabled || self.resident_mb <= self.spec.ram_mb {
            return 1.0;
        }
        let overcommit = (self.resident_mb - self.spec.ram_mb) / self.spec.ram_mb.max(1.0);
        1.0 + self.mem_model.thrash_strength * overcommit
    }

    fn apply_capacity(&mut self, now: SimTime) {
        let cap = self.noise_factor / self.thrash_factor();
        self.cpu.set_capacity(now, cap);
    }

    /// Tries to reserve `mem_mb` MB for a task (NetSolve servers accept or
    /// refuse a request up front, before the input transfer starts). On
    /// success the memory is held until [`Self::finish_compute`] (or
    /// [`Self::release`]) frees it.
    pub fn reserve(&mut self, now: SimTime, task: TaskId, mem_mb: f64) -> AdmitOutcome {
        if self.collapsed {
            return AdmitOutcome::Collapsed;
        }
        if self.mem_model.enabled && self.resident_mb + mem_mb > self.spec.total_mem_mb() {
            self.rejections += 1;
            if self.rejections >= self.mem_model.collapse_after_rejections {
                self.collapsed = true;
            }
            return AdmitOutcome::Rejected;
        }
        self.resident_mb += mem_mb;
        self.task_mem.push((task, mem_mb));
        self.apply_capacity(now);
        AdmitOutcome::Admitted
    }

    /// Starts a reserved task's compute phase (`compute_cost` unloaded
    /// seconds of CPU). Called when its input transfer completes.
    pub fn begin_compute(&mut self, now: SimTime, task: TaskId, compute_cost: f64) {
        self.cpu.add(now, task, compute_cost);
    }

    /// Releases a task's memory reservation without touching the CPU (used
    /// when a task is aborted before computing).
    pub fn release(&mut self, now: SimTime, task: TaskId) {
        if let Some(idx) = self.task_mem.iter().position(|(t, _)| *t == task) {
            let (_, mem) = self.task_mem.swap_remove(idx);
            self.resident_mb = (self.resident_mb - mem).max(0.0);
            self.apply_capacity(now);
        }
    }

    /// Reserves memory and starts computing in one step — the convenience
    /// path for tasks with no input transfer.
    pub fn admit_compute(
        &mut self,
        now: SimTime,
        task: TaskId,
        compute_cost: f64,
        mem_mb: f64,
    ) -> AdmitOutcome {
        let outcome = self.reserve(now, task, mem_mb);
        if outcome == AdmitOutcome::Admitted {
            self.begin_compute(now, task, compute_cost);
        }
        outcome
    }

    /// Completes (or aborts) a task's compute phase, releasing its memory.
    /// Returns the remaining CPU work (0 when it actually finished).
    pub fn finish_compute(&mut self, now: SimTime, task: TaskId) -> Option<f64> {
        let left = self.cpu.remove(now, task)?;
        if let Some(idx) = self.task_mem.iter().position(|(t, _)| *t == task) {
            let (_, mem) = self.task_mem.swap_remove(idx);
            self.resident_mb = (self.resident_mb - mem).max(0.0);
        }
        self.apply_capacity(now);
        Some(left)
    }

    /// Starts an input transfer of `transfer_cost` unloaded-seconds.
    pub fn start_input(&mut self, now: SimTime, task: TaskId, transfer_cost: f64) {
        self.link_in.add(now, task, transfer_cost);
    }

    /// Starts an output transfer of `transfer_cost` unloaded-seconds.
    pub fn start_output(&mut self, now: SimTime, task: TaskId, transfer_cost: f64) {
        self.link_out.add(now, task, transfer_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn spec() -> ServerSpec {
        ServerSpec::new("testbox", 500.0, 100.0, 50.0)
    }

    #[test]
    fn spec_totals() {
        assert_eq!(spec().total_mem_mb(), 150.0);
    }

    #[test]
    fn admit_and_finish_tracks_memory() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::default());
        assert_eq!(
            s.admit_compute(t(0.0), TaskId(1), 10.0, 60.0),
            AdmitOutcome::Admitted
        );
        assert_eq!(s.resident_mb(), 60.0);
        assert_eq!(s.run_queue_len(), 1);
        s.finish_compute(t(10.0), TaskId(1));
        assert_eq!(s.resident_mb(), 0.0);
        assert_eq!(s.run_queue_len(), 0);
    }

    #[test]
    fn rejection_when_memory_exhausted() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::default());
        assert_eq!(
            s.admit_compute(t(0.0), TaskId(1), 10.0, 100.0),
            AdmitOutcome::Admitted
        );
        // 100 + 60 > 150 → rejected.
        assert_eq!(
            s.admit_compute(t(0.0), TaskId(2), 10.0, 60.0),
            AdmitOutcome::Rejected
        );
        assert_eq!(s.rejections(), 1);
        // But a small task still fits.
        assert_eq!(
            s.admit_compute(t(0.0), TaskId(3), 10.0, 40.0),
            AdmitOutcome::Admitted
        );
    }

    #[test]
    fn collapse_after_repeated_rejections() {
        let mm = MemoryModel {
            collapse_after_rejections: 2,
            ..MemoryModel::default()
        };
        let mut s = ServerRuntime::new(spec(), mm);
        s.admit_compute(t(0.0), TaskId(1), 10.0, 150.0);
        assert_eq!(
            s.admit_compute(t(0.0), TaskId(2), 10.0, 1.0),
            AdmitOutcome::Rejected
        );
        assert_eq!(
            s.admit_compute(t(0.0), TaskId(3), 10.0, 1.0),
            AdmitOutcome::Rejected
        );
        assert!(s.is_collapsed());
        // Even a zero-memory task is now refused.
        assert_eq!(
            s.admit_compute(t(0.0), TaskId(4), 10.0, 0.0),
            AdmitOutcome::Collapsed
        );
    }

    #[test]
    fn thrashing_slows_the_cpu() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::thrashing(4.0, 8));
        // 120 MB resident on 100 MB RAM: overcommit 0.2, slowdown 1 + 4*0.2
        // = 1.8.
        s.admit_compute(t(0.0), TaskId(1), 18.0, 120.0);
        let (_, when) = s.cpu.next_completion(t(0.0)).unwrap();
        assert!(when.approx_eq(t(18.0 * 1.8), 1e-9), "got {when:?}");
    }

    #[test]
    fn thrashing_recovers_on_release() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::thrashing(4.0, 8));
        s.admit_compute(t(0.0), TaskId(1), 100.0, 120.0);
        s.finish_compute(t(1.0), TaskId(1));
        s.admit_compute(t(1.0), TaskId(2), 10.0, 10.0);
        let (_, when) = s.cpu.next_completion(t(1.0)).unwrap();
        assert!(when.approx_eq(t(11.0), 1e-9));
    }

    #[test]
    fn disabled_memory_model_never_rejects() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::disabled());
        for i in 0..50 {
            assert_eq!(
                s.admit_compute(t(0.0), TaskId(i), 10.0, 1000.0),
                AdmitOutcome::Admitted
            );
        }
        assert_eq!(s.run_queue_len(), 50);
    }

    #[test]
    fn noise_scales_speed() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::disabled());
        s.set_noise(t(0.0), 0.5);
        s.admit_compute(t(0.0), TaskId(1), 10.0, 0.0);
        let (_, when) = s.cpu.next_completion(t(0.0)).unwrap();
        assert!(when.approx_eq(t(20.0), 1e-9));
    }

    #[test]
    fn links_are_independent_resources() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::default());
        s.start_input(t(0.0), TaskId(1), 4.0);
        s.start_output(t(0.0), TaskId(2), 2.0);
        assert_eq!(s.link_in.len(), 1);
        assert_eq!(s.link_out.len(), 1);
        let (_, tin) = s.link_in.next_completion(t(0.0)).unwrap();
        let (_, tout) = s.link_out.next_completion(t(0.0)).unwrap();
        assert_eq!(tin, t(4.0));
        assert_eq!(tout, t(2.0));
    }

    #[test]
    fn finish_unknown_task_is_none() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::default());
        assert_eq!(s.finish_compute(t(0.0), TaskId(99)), None);
    }

    #[test]
    fn reserve_then_begin_compute_later() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::default());
        assert_eq!(s.reserve(t(0.0), TaskId(1), 80.0), AdmitOutcome::Admitted);
        assert_eq!(s.resident_mb(), 80.0);
        assert_eq!(s.run_queue_len(), 0, "memory held but not computing yet");
        s.begin_compute(t(5.0), TaskId(1), 10.0);
        assert_eq!(s.run_queue_len(), 1);
        s.finish_compute(t(15.0), TaskId(1));
        assert_eq!(s.resident_mb(), 0.0);
    }

    #[test]
    fn release_frees_reservation_without_compute() {
        let mut s = ServerRuntime::new(spec(), MemoryModel::default());
        s.reserve(t(0.0), TaskId(1), 150.0);
        assert_eq!(s.reserve(t(0.0), TaskId(2), 10.0), AdmitOutcome::Rejected);
        s.release(t(1.0), TaskId(1));
        assert_eq!(s.resident_mb(), 0.0);
        assert_eq!(s.reserve(t(1.0), TaskId(3), 10.0), AdmitOutcome::Admitted);
    }

    #[test]
    fn reservation_already_causes_thrashing() {
        // Memory pressure from a reserved (still transferring) task slows
        // the CPU — the data is already being paged in.
        let mut s = ServerRuntime::new(spec(), MemoryModel::thrashing(4.0, 8));
        s.reserve(t(0.0), TaskId(1), 120.0);
        s.begin_compute(t(0.0), TaskId(2), 18.0);
        // overcommit (120-100)/100 = 0.2 → slowdown 1.8.
        let (_, when) = s.cpu.next_completion(t(0.0)).unwrap();
        assert!(when.approx_eq(t(18.0 * 1.8), 1e-9), "got {when:?}");
    }
}

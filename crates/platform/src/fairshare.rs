//! The shared-resource model of §2.3.
//!
//! "We consider a simple but realistic model when a server executes `n`
//! tasks: each task is given `1/n` of the total power of the resource."
//!
//! [`FairShareResource`] implements exactly that, for any resource whose
//! activities carry a scalar amount of remaining *work*: a CPU (work =
//! seconds of dedicated compute at nominal speed), a network link (work = MB
//! to move). Between membership changes the progress rate is constant, so
//! the state only needs updating at event boundaries — the same
//! piecewise-constant integration the paper's HTM performs ("all tasks
//! mapped on a given server progress at the same speed until a new task
//! arrives or a running task finishes").
//!
//! The resource does not own any event scheduling. The caller asks
//! [`FairShareResource::next_completion`] after every membership or capacity
//! change and (re)schedules its completion event, using the embedded
//! [`Generation`] stamp to invalidate the previously scheduled one.

use cas_sim::{Generation, SimTime};
use std::collections::HashMap;
use std::hash::Hash;

/// A capacity shared equally among its current activities.
///
/// `K` identifies activities (typically a `TaskId`). Keys must be unique
/// among concurrently running activities.
///
/// Activities are stored **structure-of-arrays**: keys in one `Vec`,
/// remaining-work scalars in a parallel `Vec` (same positions). The two
/// hot loops — [`Self::advance`]'s uniform work subtraction and
/// [`Self::next_completion`]'s minimum scan — then stream over a dense
/// `f64` slice the compiler can vectorise, instead of striding over
/// key/value pairs; the `fairshare_layout` micro-bench in `cas-bench`
/// measures the layouts against each other at the 64-server sweep scale.
#[derive(Debug, Clone)]
pub struct FairShareResource<K> {
    /// Activity keys, in insertion order.
    keys: Vec<K>,
    /// `remaining[i]` = work still to do for `keys[i]`, in resource units
    /// (CPU-seconds, MB, …).
    remaining: Vec<f64>,
    /// Position of each key in the parallel vectors, so
    /// [`Self::remaining`] and the duplicate-key check in [`Self::add`] —
    /// which sits on the per-event hot path — are O(1) instead of linear
    /// scans. Kept in sync by `add`/`remove` (the `remove` fixup is O(n),
    /// matching the `Vec` shift it accompanies).
    index: HashMap<K, usize>,
    /// Work units delivered per second in total, split equally.
    capacity: f64,
    /// Last time `advance` integrated progress up to.
    updated_at: SimTime,
    /// Bumped on every change that invalidates previously computed
    /// completion times.
    generation: Generation,
}

impl<K: Copy + Eq + Hash + std::fmt::Debug> FairShareResource<K> {
    /// Creates an empty resource with the given total capacity
    /// (work units per second).
    ///
    /// # Panics
    /// Panics unless `capacity > 0` and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive, got {capacity}"
        );
        FairShareResource {
            keys: Vec::new(),
            remaining: Vec::new(),
            index: HashMap::new(),
            capacity,
            updated_at: SimTime::ZERO,
            generation: Generation::default(),
        }
    }

    /// Number of running activities.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when idle.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Current total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The generation stamp valid for events derived from the current state.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Keys of all running activities.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.keys.iter().copied()
    }

    /// `(key, remaining work)` of all running activities, in insertion
    /// order — the raw state a what-if engine copies into its scratch
    /// buffers (see `cas-core`'s prediction cache).
    pub fn entries_iter(&self) -> impl Iterator<Item = (K, f64)> + '_ {
        self.keys
            .iter()
            .copied()
            .zip(self.remaining.iter().copied())
    }

    /// The time progress has been integrated up to.
    pub fn updated_at(&self) -> SimTime {
        self.updated_at
    }

    /// Remaining work of `key`, if running. O(1) via the key index.
    pub fn remaining(&self, key: K) -> Option<f64> {
        self.index.get(&key).map(|&i| self.remaining[i])
    }

    /// Per-activity progress rate right now (capacity / n), or the full
    /// capacity when idle.
    pub fn rate_per_activity(&self) -> f64 {
        if self.keys.is_empty() {
            self.capacity
        } else {
            self.capacity / self.keys.len() as f64
        }
    }

    /// Integrates progress up to `now`. Idempotent; must be called (and is
    /// called internally) before any state change.
    ///
    /// # Panics
    /// Panics if `now` is before the last update — the resource cannot run
    /// backwards.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.updated_at,
            "resource cannot rewind: updated_at={:?}, now={now:?}",
            self.updated_at
        );
        if self.keys.is_empty() || now == self.updated_at {
            self.updated_at = now;
            return;
        }
        let dt = (now - self.updated_at).as_secs();
        let rate = self.capacity / self.keys.len() as f64;
        let done = rate * dt;
        for r in &mut self.remaining {
            // Clamp: float rounding may overshoot the exact completion
            // instant by a hair; remaining work is never negative.
            *r = (*r - done).max(0.0);
        }
        self.updated_at = now;
    }

    /// Adds an activity with `work` units to do. Advances to `now` first and
    /// invalidates previously computed completions.
    ///
    /// # Panics
    /// Panics if `work` is negative/non-finite or the key is already running.
    pub fn add(&mut self, now: SimTime, key: K, work: f64) {
        assert!(
            work >= 0.0 && work.is_finite(),
            "work must be >= 0, got {work}"
        );
        self.advance(now);
        assert!(
            !self.index.contains_key(&key),
            "activity {key:?} already running"
        );
        self.index.insert(key, self.keys.len());
        self.keys.push(key);
        self.remaining.push(work);
        self.generation.bump();
    }

    /// Removes an activity, returning its remaining work (0 when it was
    /// complete). Advances to `now` first.
    ///
    /// Returns `None` if the key was not running.
    pub fn remove(&mut self, now: SimTime, key: K) -> Option<f64> {
        self.advance(now);
        let idx = self.index.remove(&key)?;
        self.keys.remove(idx);
        let left = self.remaining.remove(idx);
        for shifted in &self.keys[idx..] {
            *self.index.get_mut(shifted).expect("indexed entry") -= 1;
        }
        self.generation.bump();
        Some(left)
    }

    /// Changes the total capacity (CPU noise redraws, thrashing slowdown).
    /// Advances to `now` under the old capacity first.
    pub fn set_capacity(&mut self, now: SimTime, capacity: f64) {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive, got {capacity}"
        );
        self.advance(now);
        if capacity != self.capacity {
            self.capacity = capacity;
            self.generation.bump();
        }
    }

    /// The next activity to finish and its completion time, given the
    /// current membership and capacity, or `None` when idle.
    ///
    /// Ties (identical remaining work) resolve to the earliest-added
    /// activity, keeping behaviour deterministic.
    pub fn next_completion(&self, now: SimTime) -> Option<(K, SimTime)> {
        debug_assert!(now >= self.updated_at);
        let lag = (now - self.updated_at).as_secs();
        let rate = self.capacity / self.keys.len().max(1) as f64;
        // First-minimal scan over the dense work column (`min_by` returns
        // the first of equal minima: ties resolve to the earliest-added
        // activity, as on the AoS layout).
        self.remaining
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("remaining work is never NaN"))
            .map(|(i, &r)| {
                let dt = ((r / rate) - lag).max(0.0);
                (self.keys[i], now + SimTime::from_secs(dt))
            })
    }

    /// Completion times of *all* current activities assuming no further
    /// membership changes — the core of the HTM's Gantt construction.
    /// Returned in completion order.
    pub fn drain_schedule(&self, now: SimTime) -> Vec<(K, SimTime)> {
        let mut remaining: Vec<(K, f64)> = {
            // Simulate the resource forward privately.
            let lag = (now - self.updated_at).as_secs();
            let rate = self.capacity / self.keys.len().max(1) as f64;
            self.entries_iter()
                .map(|(k, r)| (k, (r - rate * lag).max(0.0)))
                .collect()
        };
        remaining.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let mut out = Vec::with_capacity(remaining.len());
        let mut t = now;
        let mut done_work = 0.0;
        for i in 0..remaining.len() {
            let n_active = (remaining.len() - i) as f64;
            let rate = self.capacity / n_active;
            let step_work = remaining[i].1 - done_work;
            t += SimTime::from_secs((step_work / rate).max(0.0));
            done_work = remaining[i].1;
            out.push((remaining[i].0, t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_activity_runs_at_full_capacity() {
        let mut r = FairShareResource::new(2.0);
        r.add(t(0.0), 1u32, 10.0);
        let (k, when) = r.next_completion(t(0.0)).unwrap();
        assert_eq!(k, 1);
        assert_eq!(when, t(5.0)); // 10 units at 2 units/s
    }

    #[test]
    fn two_activities_share_equally() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(0.0), 1u32, 10.0);
        r.add(t(0.0), 2u32, 10.0);
        // Each progresses at 0.5/s → both finish at t=20; tie → first added.
        let (k, when) = r.next_completion(t(0.0)).unwrap();
        assert_eq!(k, 1);
        assert_eq!(when, t(20.0));
    }

    #[test]
    fn paper_usefulness_example() {
        // §2.3: at t=0 two identical servers get tasks of 100 s and 200 s.
        // At t=80 the remaining durations are 20 s and 120 s.
        let mut s1 = FairShareResource::new(1.0);
        let mut s2 = FairShareResource::new(1.0);
        s1.add(t(0.0), 1u32, 100.0);
        s2.add(t(0.0), 2u32, 200.0);
        s1.advance(t(80.0));
        s2.advance(t(80.0));
        assert!((s1.remaining(1).unwrap() - 20.0).abs() < 1e-9);
        assert!((s2.remaining(2).unwrap() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_mid_flight_delays_running_task() {
        // Fig. 1 mechanics: T1 runs alone, T3 arrives, both share.
        let mut r = FairShareResource::new(1.0);
        r.add(t(0.0), 1u32, 100.0);
        r.advance(t(50.0)); // T1 half done
        r.add(t(50.0), 3u32, 25.0);
        // T3 finishes first: 25 units at 0.5/s = 50 s → t=100.
        let (k, when) = r.next_completion(t(50.0)).unwrap();
        assert_eq!(k, 3);
        assert_eq!(when, t(100.0));
        r.remove(t(100.0), 3);
        // T1 had 50 left at t=50, did 25 during sharing, 25 left at full rate.
        let (k, when) = r.next_completion(t(100.0)).unwrap();
        assert_eq!(k, 1);
        assert_eq!(when, t(125.0));
        // Perturbation of T3 on T1 = 125 - 100 = 25 s: half of T3's 50 s of
        // shared residence, exactly the model's prediction.
    }

    #[test]
    fn drain_schedule_matches_event_by_event() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(0.0), 1u32, 30.0);
        r.add(t(0.0), 2u32, 10.0);
        r.add(t(0.0), 3u32, 20.0);
        let sched = r.drain_schedule(t(0.0));
        // Event-by-event: 3 tasks at 1/3 each. T2 (10) finishes at t=30.
        // Then T3 has 10 left, T1 has 20 left, rate 1/2: T3 at 30+20=50,
        // T1 at 50 + 10/1 ... wait: at t=30, T1 done 10 → 20 left, T3 done
        // 10 → 10 left. Rate 1/2: T3 finishes +20 → t=50 (T1 done 10 more,
        // 10 left). T1 alone: +10 → t=60.
        assert_eq!(sched[0], (2, t(30.0)));
        assert_eq!(sched[1], (3, t(50.0)));
        assert_eq!(sched[2], (1, t(60.0)));
    }

    #[test]
    fn drain_schedule_respects_unadvanced_lag() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(0.0), 1u32, 10.0);
        // Query at t=4 without advancing: completion must still be t=10.
        let sched = r.drain_schedule(t(4.0));
        assert_eq!(sched, vec![(1, t(10.0))]);
    }

    #[test]
    fn capacity_change_rescales_rates() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(0.0), 1u32, 10.0);
        r.set_capacity(t(5.0), 0.5); // 5 units left, now at 0.5/s
        let (_, when) = r.next_completion(t(5.0)).unwrap();
        assert_eq!(when, t(15.0));
    }

    #[test]
    fn remove_returns_remaining_work() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(0.0), 1u32, 10.0);
        r.add(t(0.0), 2u32, 10.0);
        let left = r.remove(t(10.0), 2).unwrap();
        assert!((left - 5.0).abs() < 1e-9);
        assert_eq!(r.remove(t(10.0), 2), None);
    }

    #[test]
    fn generation_bumps_on_changes() {
        let mut r = FairShareResource::new(1.0);
        let g0 = r.generation();
        r.add(t(0.0), 1u32, 1.0);
        let g1 = r.generation();
        assert_ne!(g0, g1);
        r.set_capacity(t(0.0), 2.0);
        assert_ne!(g1, r.generation());
        // Setting the same capacity is not a change.
        let g2 = r.generation();
        r.set_capacity(t(0.0), 2.0);
        assert_eq!(g2, r.generation());
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(3.0), 1u32, 0.0);
        let (k, when) = r.next_completion(t(3.0)).unwrap();
        assert_eq!(k, 1);
        assert_eq!(when, t(3.0));
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn rewind_panics() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(5.0), 1u32, 1.0);
        r.advance(t(4.0));
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn duplicate_key_panics() {
        let mut r = FairShareResource::new(1.0);
        r.add(t(0.0), 1u32, 1.0);
        r.add(t(0.0), 1u32, 1.0);
    }

    #[test]
    fn idle_resource_has_no_completion() {
        let r: FairShareResource<u32> = FairShareResource::new(1.0);
        assert!(r.next_completion(t(0.0)).is_none());
        assert!(r.drain_schedule(t(0.0)).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    proptest! {
        /// Work is conserved: running a set of activities to completion via
        /// next_completion/remove takes total time = total work / capacity
        /// (the resource is never idle while work remains).
        #[test]
        fn work_conservation(
            works in proptest::collection::vec(0.1f64..100.0, 1..20),
            capacity in 0.1f64..10.0,
        ) {
            let mut r = FairShareResource::new(capacity);
            let total: f64 = works.iter().sum();
            for (i, &w) in works.iter().enumerate() {
                r.add(t(0.0), i as u32, w);
            }
            let mut now = t(0.0);
            while let Some((k, when)) = r.next_completion(now) {
                now = when;
                r.remove(now, k);
            }
            let expected = total / capacity;
            prop_assert!((now.as_secs() - expected).abs() < 1e-6 * expected.max(1.0),
                "finished at {} expected {}", now.as_secs(), expected);
        }

        /// drain_schedule agrees with event-by-event execution.
        #[test]
        fn drain_matches_stepping(
            works in proptest::collection::vec(0.1f64..50.0, 1..15),
        ) {
            let mut r = FairShareResource::new(1.0);
            for (i, &w) in works.iter().enumerate() {
                r.add(t(0.0), i as u32, w);
            }
            let predicted = r.drain_schedule(t(0.0));
            let mut stepped = Vec::new();
            let mut now = t(0.0);
            while let Some((k, when)) = r.next_completion(now) {
                now = when;
                r.remove(now, k);
                stepped.push((k, now));
            }
            prop_assert_eq!(predicted.len(), stepped.len());
            for (p, s) in predicted.iter().zip(&stepped) {
                prop_assert_eq!(p.0, s.0);
                prop_assert!(p.1.approx_eq(s.1, 1e-6));
            }
        }

        /// Completion order equals ascending remaining-work order.
        #[test]
        fn completion_order_is_work_order(
            works in proptest::collection::vec(0.1f64..50.0, 2..15),
        ) {
            let mut r = FairShareResource::new(2.0);
            for (i, &w) in works.iter().enumerate() {
                r.add(t(0.0), i as u32, w);
            }
            let sched = r.drain_schedule(t(0.0));
            let mut prev = f64::NEG_INFINITY;
            for (k, _) in sched {
                let w = works[k as usize];
                prop_assert!(w >= prev);
                prev = w;
            }
        }

        /// Adding an activity never makes any existing activity finish
        /// earlier (perturbations are non-negative — the invariant the MP
        /// heuristic relies on).
        #[test]
        fn perturbation_nonnegative(
            works in proptest::collection::vec(1.0f64..50.0, 1..10),
            new_work in 1.0f64..50.0,
            arrival_frac in 0.0f64..1.0,
        ) {
            let mut base = FairShareResource::new(1.0);
            for (i, &w) in works.iter().enumerate() {
                base.add(t(0.0), i as u32, w);
            }
            let before: Vec<(u32, SimTime)> = base.drain_schedule(t(0.0));
            let arrival = t(arrival_frac * works.iter().cloned().fold(0.0, f64::max));
            let mut with_new = base.clone();
            with_new.advance(arrival);
            with_new.add(arrival, 999, new_work);
            let after = with_new.drain_schedule(arrival);
            for (k, t_before) in before {
                if let Some(&(_, t_after)) = after.iter().find(|(kk, _)| *kk == k) {
                    prop_assert!(t_after >= t_before - SimTime::from_secs(1e-9),
                        "task {k} finished earlier after insertion");
                }
            }
        }
    }
}

//! Static cost information: phase costs per (problem, server).
//!
//! The paper measured each task type on each unloaded server and "placed
//! [the costs] in the NetSolve code" (§5.1) — the agent's static information
//! is a lookup table, not a model. [`CostTable`] is that table. For synthetic
//! workloads and sweeps, [`CostTable::from_rates`] derives a table from
//! abstract work volumes and machine rates instead.

use crate::ids::{ProblemId, ServerId};
use crate::task::{Phase, Problem};
use serde::{Deserialize, Serialize};

/// The three phase costs of one problem on one *unloaded* server, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCosts {
    /// Input-data transfer time.
    pub input: f64,
    /// Computation time.
    pub compute: f64,
    /// Output-data transfer time.
    pub output: f64,
}

impl PhaseCosts {
    /// Convenience constructor.
    pub fn new(input: f64, compute: f64, output: f64) -> Self {
        let c = PhaseCosts {
            input,
            compute,
            output,
        };
        assert!(
            input >= 0.0 && compute >= 0.0 && output >= 0.0,
            "phase costs must be non-negative: {c:?}"
        );
        c
    }

    /// Total unloaded duration `d(i,j)` — the denominator of the paper's
    /// stretch metric.
    #[inline]
    pub fn total(&self) -> f64 {
        self.input + self.compute + self.output
    }

    /// Cost of a single phase.
    #[inline]
    pub fn phase(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Input => self.input,
            Phase::Compute => self.compute,
            Phase::Output => self.output,
        }
    }
}

/// Static information: problems, and phase costs per (problem, server).
///
/// `None` for a (problem, server) pair means the server did not register
/// that problem — the agent must not map such tasks there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTable {
    problems: Vec<Problem>,
    n_servers: usize,
    /// Row-major: `costs[problem * n_servers + server]`.
    costs: Vec<Option<PhaseCosts>>,
}

impl CostTable {
    /// Creates a table for `n_servers` servers with no problems yet.
    pub fn new(n_servers: usize) -> Self {
        CostTable {
            problems: Vec::new(),
            n_servers,
            costs: Vec::new(),
        }
    }

    /// Number of servers the table covers.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Number of registered problems.
    pub fn n_problems(&self) -> usize {
        self.problems.len()
    }

    /// Registers a problem with its per-server costs.
    ///
    /// `per_server[s] = Some(costs)` if server `s` can solve it.
    ///
    /// # Panics
    /// Panics if `per_server.len() != n_servers`.
    pub fn add_problem(
        &mut self,
        problem: Problem,
        per_server: Vec<Option<PhaseCosts>>,
    ) -> ProblemId {
        assert_eq!(
            per_server.len(),
            self.n_servers,
            "cost row must cover every server"
        );
        let id = ProblemId(self.problems.len() as u32);
        self.problems.push(problem);
        self.costs.extend(per_server);
        id
    }

    /// Registers a problem solvable by every server with the same costs.
    pub fn add_uniform_problem(&mut self, problem: Problem, costs: PhaseCosts) -> ProblemId {
        self.add_problem(problem, vec![Some(costs); self.n_servers])
    }

    /// The problem description.
    pub fn problem(&self, id: ProblemId) -> &Problem {
        &self.problems[id.index()]
    }

    /// All problems, indexable by `ProblemId::index`.
    pub fn problems(&self) -> &[Problem] {
        &self.problems
    }

    /// Phase costs of `problem` on `server`, or `None` if that server
    /// cannot solve it.
    pub fn costs(&self, problem: ProblemId, server: ServerId) -> Option<PhaseCosts> {
        self.costs[problem.index() * self.n_servers + server.index()]
    }

    /// Servers able to solve `problem` — the candidate set in every
    /// heuristic's "for each server that can resolve the new submitted
    /// problem" loop (Figs. 2–4).
    pub fn solvers(&self, problem: ProblemId) -> Vec<ServerId> {
        (0..self.n_servers as u32)
            .map(ServerId)
            .filter(|&s| self.costs(problem, s).is_some())
            .collect()
    }

    /// The unloaded duration `d` of `problem` on `server`, if solvable.
    pub fn unloaded_duration(&self, problem: ProblemId, server: ServerId) -> Option<f64> {
        self.costs(problem, server).map(|c| c.total())
    }

    /// The same problems, restricted to a contiguous block of servers:
    /// server `start + i` of this table becomes server `i` of the result.
    /// This is how a shard federation derives each shard engine's local
    /// cost table from the farm-wide one (`cas_platform::shard`).
    ///
    /// # Panics
    /// Panics if `start + len` exceeds the table's server count.
    pub fn restrict(&self, start: u32, len: usize) -> CostTable {
        assert!(
            start as usize + len <= self.n_servers,
            "restriction {start}+{len} exceeds {} servers",
            self.n_servers
        );
        let mut costs = Vec::with_capacity(self.problems.len() * len);
        for p in 0..self.problems.len() {
            let row_start = p * self.n_servers + start as usize;
            costs.extend_from_slice(&self.costs[row_start..row_start + len]);
        }
        CostTable {
            problems: self.problems.clone(),
            n_servers: len,
            costs,
        }
    }

    /// Extends the table with one new server, online: `per_problem[p]` is
    /// the new server's phase costs for problem `p` (`None` = cannot
    /// solve it). The server takes the next id; the result equals a table
    /// built with the extra column from the start. This is the static
    /// half of a [`ServerJoin`](crate::shard) — a machine registering
    /// with the agent after the campaign began.
    ///
    /// # Panics
    /// Panics unless exactly one entry per registered problem is given.
    pub fn push_server(&mut self, per_problem: Vec<Option<PhaseCosts>>) -> ServerId {
        assert_eq!(
            per_problem.len(),
            self.problems.len(),
            "join column must cover every problem"
        );
        let old_n = self.n_servers;
        let mut costs = Vec::with_capacity(self.problems.len() * (old_n + 1));
        for (p, col) in per_problem.into_iter().enumerate() {
            costs.extend_from_slice(&self.costs[p * old_n..(p + 1) * old_n]);
            costs.push(col);
        }
        self.costs = costs;
        self.n_servers = old_n + 1;
        ServerId(old_n as u32)
    }

    /// Derives a table from abstract volumes and machine rates: for each
    /// problem give `(work_ops, input_mb, output_mb, mem_mb)`; for each
    /// server `(ops_per_sec, mbps, latency_s)`. Transfer cost is
    /// `latency + mb / mbps` (the NetSolve communication model of §2.2);
    /// compute cost is `ops / ops_per_sec`.
    pub fn from_rates(
        problems: &[(String, f64, f64, f64, f64)],
        servers: &[(f64, f64, f64)],
    ) -> Self {
        let mut table = CostTable::new(servers.len());
        for (name, ops, input_mb, output_mb, mem_mb) in problems {
            let problem = Problem::new(name.clone(), *input_mb, *output_mb, *mem_mb);
            let row = servers
                .iter()
                .map(|&(ops_per_sec, mbps, latency)| {
                    Some(PhaseCosts::new(
                        latency + input_mb / mbps,
                        ops / ops_per_sec,
                        latency + output_mb / mbps,
                    ))
                })
                .collect();
            table.add_problem(problem, row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> CostTable {
        let mut t = CostTable::new(2);
        t.add_problem(
            Problem::new("a", 10.0, 5.0, 100.0),
            vec![
                Some(PhaseCosts::new(4.0, 149.0, 1.0)),
                Some(PhaseCosts::new(3.0, 18.0, 1.0)),
            ],
        );
        t.add_problem(
            Problem::new("b", 1.0, 1.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.1, 16.0, 0.05))],
        );
        t
    }

    #[test]
    fn lookup() {
        let t = sample_table();
        let c = t.costs(ProblemId(0), ServerId(0)).unwrap();
        assert_eq!(c.compute, 149.0);
        assert_eq!(c.total(), 154.0);
        assert!(t.costs(ProblemId(1), ServerId(0)).is_none());
    }

    #[test]
    fn solvers_filters_unregistered() {
        let t = sample_table();
        assert_eq!(t.solvers(ProblemId(0)), vec![ServerId(0), ServerId(1)]);
        assert_eq!(t.solvers(ProblemId(1)), vec![ServerId(1)]);
    }

    #[test]
    fn unloaded_duration() {
        let t = sample_table();
        assert_eq!(t.unloaded_duration(ProblemId(0), ServerId(1)), Some(22.0));
        assert_eq!(t.unloaded_duration(ProblemId(1), ServerId(0)), None);
    }

    #[test]
    fn phase_accessor() {
        let c = PhaseCosts::new(1.0, 2.0, 3.0);
        assert_eq!(c.phase(Phase::Input), 1.0);
        assert_eq!(c.phase(Phase::Compute), 2.0);
        assert_eq!(c.phase(Phase::Output), 3.0);
    }

    #[test]
    #[should_panic(expected = "cover every server")]
    fn wrong_row_length_panics() {
        let mut t = CostTable::new(3);
        t.add_problem(Problem::new("x", 0.0, 0.0, 0.0), vec![None]);
    }

    #[test]
    fn from_rates_netsolve_model() {
        // 1000 ops at 100 ops/s = 10 s compute; 10 MB at 5 MB/s + 0.1 s
        // latency = 2.1 s input.
        let t = CostTable::from_rates(
            &[("p".into(), 1000.0, 10.0, 5.0, 0.0)],
            &[(100.0, 5.0, 0.1)],
        );
        let c = t.costs(ProblemId(0), ServerId(0)).unwrap();
        assert!((c.input - 2.1).abs() < 1e-12);
        assert!((c.compute - 10.0).abs() < 1e-12);
        assert!((c.output - 1.1).abs() < 1e-12);
    }

    #[test]
    fn uniform_problem_everywhere() {
        let mut t = CostTable::new(4);
        let id = t.add_uniform_problem(
            Problem::new("u", 0.0, 0.0, 0.0),
            PhaseCosts::new(0.0, 5.0, 0.0),
        );
        assert_eq!(t.solvers(id).len(), 4);
    }

    #[test]
    fn restrict_shifts_server_ids() {
        let mut t = CostTable::new(4);
        t.add_problem(
            Problem::new("p0", 0.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(0.0, 10.0, 0.0)),
                Some(PhaseCosts::new(0.0, 20.0, 0.0)),
                None,
                Some(PhaseCosts::new(0.0, 40.0, 0.0)),
            ],
        );
        t.add_problem(
            Problem::new("p1", 0.0, 0.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.0, 5.0, 0.0)), None, None],
        );
        let r = t.restrict(1, 2);
        assert_eq!(r.n_servers(), 2);
        assert_eq!(r.n_problems(), 2);
        // Global S1 → local S0, global S2 → local S1.
        assert_eq!(
            r.unloaded_duration(ProblemId(0), ServerId(0)),
            t.unloaded_duration(ProblemId(0), ServerId(1))
        );
        assert_eq!(r.costs(ProblemId(0), ServerId(1)), None);
        assert_eq!(r.unloaded_duration(ProblemId(1), ServerId(0)), Some(5.0));
        // Full-width restriction is the identity.
        assert_eq!(t.restrict(0, 4), t);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn restrict_out_of_range_panics() {
        CostTable::new(3).restrict(2, 2);
    }

    /// Online extension equals a table built with the column from the
    /// start, and the new server composes with later `add_problem` and
    /// `restrict` calls.
    #[test]
    fn push_server_matches_fresh_table() {
        let mut grown = sample_table();
        let id = grown.push_server(vec![Some(PhaseCosts::new(1.0, 9.0, 0.0)), None]);
        assert_eq!(id, ServerId(2));

        let mut fresh = CostTable::new(3);
        fresh.add_problem(
            Problem::new("a", 10.0, 5.0, 100.0),
            vec![
                Some(PhaseCosts::new(4.0, 149.0, 1.0)),
                Some(PhaseCosts::new(3.0, 18.0, 1.0)),
                Some(PhaseCosts::new(1.0, 9.0, 0.0)),
            ],
        );
        fresh.add_problem(
            Problem::new("b", 1.0, 1.0, 0.0),
            vec![None, Some(PhaseCosts::new(0.1, 16.0, 0.05)), None],
        );
        assert_eq!(grown, fresh);
        assert_eq!(grown.unloaded_duration(ProblemId(0), id), Some(10.0));
        assert_eq!(grown.solvers(ProblemId(1)), vec![ServerId(1)]);
        assert_eq!(grown.restrict(2, 1).costs(ProblemId(1), ServerId(0)), None);
    }

    #[test]
    #[should_panic(expected = "cover every problem")]
    fn push_server_wrong_column_length_panics() {
        sample_table().push_server(vec![None]);
    }
}

//! # cas-platform — the resource substrate
//!
//! Everything the paper's environment is made of, minus the scheduling logic:
//!
//! * [`ids`] — newtyped identifiers for servers, problems and tasks.
//! * [`arena`] — the generational slab arena backing per-task record
//!   stores (middleware flights, HTM committed-task metadata): contiguous
//!   storage, recycled slots, typed keys with ABA-safe generations.
//! * [`task`] — problem descriptions (input/output data sizes, memory need)
//!   and task instances; the paper's three-phase task model (input transfer,
//!   compute, output transfer).
//! * [`cost`] — static information: the per-(problem, server) phase-cost
//!   tables that the paper measured on unloaded machines and compiled into
//!   NetSolve (Tables 3 and 4), plus helpers to derive tables from machine
//!   specs for synthetic workloads.
//! * [`fairshare`] — the shared-resource model of §2.3: a resource running
//!   `n` activities gives each `1/n` of its capacity. One generic
//!   implementation backs both time-shared CPUs and shared network links.
//! * [`server`] — server specifications (Table 2) and runtime state: the
//!   fair-share CPU, the memory/swap accounting with thrashing and collapse
//!   that drives the paper's first set of experiments, and the in/out links.
//! * [`index`] — the incrementally maintained stage-1 placement index:
//!   per-problem server rankings by static cost × believed load, re-ranked
//!   by commit/retract/complete hooks so candidate pruning never rescans
//!   the platform per arrival. Rankings live in a cache-friendly flat
//!   sorted-vec ladder by default, with the original `BTreeSet` storage
//!   selectable as the executable spec it is differentially tested
//!   against.
//! * [`shard`] — deterministic contiguous partitioning of the farm into
//!   shards, the substrate of the middleware's federated agent: pure in
//!   `(n_servers, n_shards)`, so sharded runs reproduce on any host.
//! * [`monitor`] — the UNIX-style exponentially-damped load average that
//!   NetSolve servers report to the agent, plus report staleness bookkeeping.
//! * [`forecast`] — small NWS-flavoured forecasters (last value, running
//!   mean, sliding median, adaptive best-of) for the baseline's dynamic
//!   information model.
//!
//! The ground truth of an experiment is built from these pieces by
//! `cas-middleware`; the agent's *model* of the platform (the HTM) lives in
//! `cas-core` and deliberately shares the task/cost vocabulary defined here.

pub mod arena;
pub mod cost;
pub mod fairshare;
pub mod forecast;
pub mod ids;
pub mod index;
pub mod monitor;
pub mod server;
pub mod shard;
pub mod task;

pub use arena::{Arena, ArenaKey};
pub use cost::{CostTable, PhaseCosts};
pub use fairshare::FairShareResource;
pub use ids::{ProblemId, ServerId, TaskId};
pub use index::{IndexScoring, RankingsBackend, StaticIndex};
pub use monitor::{LoadAverage, LoadReport};
pub use server::{AdmitOutcome, MemoryModel, ServerRuntime, ServerSpec};
pub use shard::{ShardMap, ShardTree};
pub use task::{Phase, Problem, TaskInstance};

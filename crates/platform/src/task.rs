//! Problems and tasks: the three-phase task model of §2.3.
//!
//! A *problem* is a service type a server can register ("multiply square
//! matrices of size 1500"). A *task* is one client request instantiating a
//! problem. Every task goes through three phases on its chosen server:
//! input-data transfer, computation, output-data transfer (Fig. 1). Phase
//! durations on an *unloaded* server come from the static cost tables
//! ([`crate::cost::CostTable`]); on a loaded server they stretch according to
//! the fair-share model.

use crate::ids::{ProblemId, TaskId};
use cas_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The three phases of a task's life on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Client → server transfer of input data.
    Input,
    /// Computation on the server CPU.
    Compute,
    /// Server → client transfer of output data.
    Output,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 3] = [Phase::Input, Phase::Compute, Phase::Output];

    /// The phase after this one, if any.
    pub fn next(self) -> Option<Phase> {
        match self {
            Phase::Input => Some(Phase::Compute),
            Phase::Compute => Some(Phase::Output),
            Phase::Output => None,
        }
    }
}

/// A problem description: the static information the agent knows about a
/// service type (§2.2 — "size of input and output data as well as the task
/// cost").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Human-readable name, e.g. `"matmul-1500"`.
    pub name: String,
    /// Input data volume in MB (client → server).
    pub input_mb: f64,
    /// Output data volume in MB (server → client).
    pub output_mb: f64,
    /// Resident memory the computation needs, in MB. Zero for the paper's
    /// "waste-cpu" task, which was designed to need none.
    pub mem_mb: f64,
}

impl Problem {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, input_mb: f64, output_mb: f64, mem_mb: f64) -> Self {
        let p = Problem {
            name: name.into(),
            input_mb,
            output_mb,
            mem_mb,
        };
        assert!(
            p.input_mb >= 0.0 && p.output_mb >= 0.0 && p.mem_mb >= 0.0,
            "problem volumes must be non-negative: {p:?}"
        );
        p
    }
}

/// One submitted task: a problem instance with an arrival date.
///
/// The paper writes `a(i,j)` for the arrival date of the task with local
/// number `j` on server `i`; we keep a single global record and let the HTM
/// derive local numbering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskInstance {
    /// Globally unique id, assigned in submission order.
    pub id: TaskId,
    /// The problem this task instantiates.
    pub problem: ProblemId,
    /// When the client submits the request to the agent.
    pub arrival: SimTime,
}

impl TaskInstance {
    /// Convenience constructor.
    pub fn new(id: TaskId, problem: ProblemId, arrival: SimTime) -> Self {
        TaskInstance {
            id,
            problem,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_ordering() {
        assert_eq!(Phase::Input.next(), Some(Phase::Compute));
        assert_eq!(Phase::Compute.next(), Some(Phase::Output));
        assert_eq!(Phase::Output.next(), None);
        assert_eq!(Phase::ALL.len(), 3);
    }

    #[test]
    fn problem_construction() {
        let p = Problem::new("matmul-1200", 21.97, 10.98, 32.95);
        assert_eq!(p.name, "matmul-1200");
        assert_eq!(p.input_mb, 21.97);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_volume_rejected() {
        Problem::new("bad", -1.0, 0.0, 0.0);
    }

    #[test]
    fn task_instance_fields() {
        let t = TaskInstance::new(TaskId(5), ProblemId(1), SimTime::from_secs(33.0));
        assert_eq!(t.id, TaskId(5));
        assert_eq!(t.problem, ProblemId(1));
        assert_eq!(t.arrival.as_secs(), 33.0);
    }
}

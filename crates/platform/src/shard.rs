//! Deterministic partitioning of the server farm into shards.
//!
//! The shard federation (see `cas-middleware`) splits the agent's decision
//! state — HTM traces, static index, selector — into per-shard engines so
//! that no single structure scales with the whole farm. [`ShardMap`] is the
//! partition itself: a pure function of `(n_servers, n_shards)`, with no
//! dependence on machine parallelism, so a sharded experiment is
//! reproducible bit for bit on any host.
//!
//! The partition is **contiguous**: shard `k` owns a block of consecutive
//! global server ids. Two properties follow, and the federation relies on
//! both:
//!
//! * global id order equals `(shard, local id)` lexicographic order, so a
//!   shortlist sorted by global id groups into per-shard runs of
//!   consecutive candidates (one `predict_all` batch per run), and
//! * the global → local translation is a subtraction, not a table lookup.

use crate::ids::ServerId;

/// A deterministic contiguous partition of `n_servers` into shards.
///
/// The partition is **versioned**: a fresh map is version 0, and every
/// [`ShardMap::rebalanced`] step bumps the counter, so the federation can
/// tell which engine rebuild a decision belongs to. Two maps are equal
/// only when both the blocks and the version agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    n_servers: usize,
    /// Start of each shard's block plus a final sentinel equal to
    /// `n_servers`: shard `k` owns global ids `starts[k]..starts[k + 1]`.
    starts: Vec<u32>,
    /// Rebalance generation: 0 at construction, `+1` per rebalance step.
    version: u64,
}

impl ShardMap {
    /// Partitions `n_servers` into `n_shards` near-equal contiguous
    /// blocks (the first `n_servers % n_shards` shards are one larger).
    /// `n_shards` is clamped to `[1, max(n_servers, 1)]` so every shard is
    /// non-empty.
    pub fn new(n_servers: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.clamp(1, n_servers.max(1));
        let base = n_servers / n_shards;
        let extra = n_servers % n_shards;
        let mut starts = Vec::with_capacity(n_shards + 1);
        let mut at = 0usize;
        for k in 0..n_shards {
            starts.push(at as u32);
            at += base + usize::from(k < extra);
        }
        debug_assert_eq!(at, n_servers);
        starts.push(n_servers as u32);
        ShardMap {
            n_servers,
            starts,
            version: 0,
        }
    }

    /// The rebalance generation this partition belongs to.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Re-partitions around the current live population: a shard whose
    /// live-server count fell below `lo` merges into its right neighbour
    /// (the last shard merges left), and one that outgrew `hi` splits at
    /// its live midpoint — both repeatedly, so every resulting shard is
    /// back inside the band where possible. Blocks stay contiguous and
    /// non-empty, dead servers stay owned by whichever block covers
    /// them, and shards already inside the band keep their exact
    /// boundaries — the federation rebuilds only the blocks that moved.
    ///
    /// Returns `None` when the partition is already within the band (no
    /// boundary moves); otherwise the new map, with the version bumped.
    /// Callers should keep `hi ≥ 2·lo` so a freshly split shard cannot
    /// immediately re-merge.
    ///
    /// # Panics
    /// Panics unless `live` has one flag per server and `lo <= hi`.
    pub fn rebalanced(&self, live: &[bool], lo: usize, hi: usize) -> Option<ShardMap> {
        assert_eq!(live.len(), self.n_servers, "one liveness flag per server");
        let lo = lo.max(1);
        assert!(lo <= hi, "size band must satisfy lo <= hi");
        if self.n_servers == 0 {
            return None;
        }
        // Prefix sums: pre[i] = live servers with global id < i.
        let mut pre = Vec::with_capacity(self.n_servers + 1);
        pre.push(0usize);
        for (i, &up) in live.iter().enumerate() {
            pre.push(pre[i] + usize::from(up));
        }
        let live_in = |a: u32, b: u32| pre[b as usize] - pre[a as usize];

        let mut blocks: Vec<(u32, u32)> = (0..self.n_shards())
            .map(|k| (self.starts[k], self.starts[k + 1]))
            .collect();

        // Merge pass. A merged block is re-examined in place: it may
        // still be undersized (e.g. two dead neighbours).
        let mut k = 0;
        while blocks.len() > 1 && k < blocks.len() {
            let (a, b) = blocks[k];
            if live_in(a, b) < lo {
                if k + 1 < blocks.len() {
                    let (_, c) = blocks.remove(k + 1);
                    blocks[k] = (a, c);
                } else {
                    let (p, _) = blocks.remove(k - 1);
                    k -= 1;
                    blocks[k] = (p, b);
                }
            } else {
                k += 1;
            }
        }

        // Split pass. The left half is re-examined in place, so a block
        // that grew far past the band splits as often as needed.
        let mut k = 0;
        while k < blocks.len() {
            let (a, b) = blocks[k];
            let total = live_in(a, b);
            if total > hi && b - a >= 2 {
                // Cut right after the ⌊total/2⌋-th live server: both
                // halves keep at least one live server, and the cut is
                // strictly inside the block.
                let half = total / 2;
                let mut seen = 0usize;
                let mut cut = a + 1;
                for s in a..b {
                    if live[s as usize] {
                        seen += 1;
                        if seen == half {
                            cut = s + 1;
                            break;
                        }
                    }
                }
                blocks.insert(k + 1, (cut, b));
                blocks[k] = (a, cut);
            } else {
                k += 1;
            }
        }

        let starts: Vec<u32> = blocks
            .iter()
            .map(|&(a, _)| a)
            .chain(std::iter::once(self.n_servers as u32))
            .collect();
        if starts == self.starts {
            return None;
        }
        Some(ShardMap {
            n_servers: self.n_servers,
            starts,
            version: self.version + 1,
        })
    }

    /// The default shard count for an `n`-server farm: one shard per ~640
    /// servers, capped at 1024. Small farms stay unsharded (the federation
    /// only pays off once per-engine state outgrows the cache), and the
    /// count is a function of the platform alone — never of the host —
    /// so `--shards auto` is reproducible across machines. Above ~16
    /// shards the router walks the federation through a [`ShardTree`]
    /// (groups of ~[`ShardTree::DEFAULT_GROUP_SHARDS`] shards), which is
    /// what makes lifting the old 16-shard cap affordable: the lazy merge
    /// prunes whole groups, so per-decision cost grows with the group
    /// count, not the shard count.
    pub fn auto_shards(n_servers: usize) -> usize {
        n_servers.div_ceil(640).clamp(1, 1024)
    }

    /// Extends the partition with one new server, appended to the **last**
    /// shard's block: the new global id is `n_servers`, contiguity is
    /// preserved, and no existing boundary moves — every other shard's
    /// engine is untouched by the growth. Bumps the version (the shape
    /// changed) and returns the new server's id.
    pub fn push_server(&mut self) -> ServerId {
        let id = ServerId(self.n_servers as u32);
        self.n_servers += 1;
        *self.starts.last_mut().expect("sentinel present") = self.n_servers as u32;
        self.version += 1;
        id
    }

    /// Servers covered by the partition.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// The shard owning `server`.
    ///
    /// # Panics
    /// Panics if `server` is outside the partition.
    pub fn owner(&self, server: ServerId) -> usize {
        assert!(
            (server.index()) < self.n_servers,
            "{server} outside the {}-server shard map",
            self.n_servers
        );
        // Blocks are near-equal, so the block index is a division away;
        // the remainder shards at the front are one larger, which the
        // partition_point handles exactly (starts is sorted).
        self.starts
            .partition_point(|&s| s as usize <= server.index())
            - 1
    }

    /// The first global id of `shard`'s block.
    pub fn start(&self, shard: usize) -> u32 {
        self.starts[shard]
    }

    /// The global ids owned by `shard`, as a range.
    pub fn members(&self, shard: usize) -> std::ops::Range<u32> {
        self.starts[shard]..self.starts[shard + 1]
    }

    /// Number of servers in `shard`.
    pub fn len(&self, shard: usize) -> usize {
        (self.starts[shard + 1] - self.starts[shard]) as usize
    }

    /// Translates a global server id to its shard-local id.
    pub fn to_local(&self, shard: usize, server: ServerId) -> ServerId {
        debug_assert_eq!(self.owner(server), shard, "{server} not owned here");
        ServerId(server.0 - self.starts[shard])
    }

    /// Translates a shard-local id back to the global id.
    pub fn to_global(&self, shard: usize, local: ServerId) -> ServerId {
        debug_assert!((local.0) < self.starts[shard + 1] - self.starts[shard]);
        ServerId(self.starts[shard] + local.0)
    }
}

/// The second level of the federation: a deterministic contiguous
/// grouping of shard indices. Where [`ShardMap`] partitions *servers
/// into shards*, `ShardTree` partitions *shards into groups* so the
/// router's lazy skyline walk can prune a whole group — dozens of
/// member shards — with one comparison against the group's cached
/// skyline. Like the map, the tree is a pure function of its inputs
/// (`n_shards`, `group_size`): no host dependence, so grouped runs
/// reproduce bit for bit anywhere.
///
/// Groups are near-equal contiguous runs of shard indices (the first
/// `n_shards % n_groups` groups are one shard larger), mirroring how
/// `ShardMap` blocks servers — so group order equals shard order equals
/// global server-id order, and every merge that concatenates per-group
/// results in group order is automatically in global id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTree {
    n_shards: usize,
    /// First shard index of each group plus a final sentinel equal to
    /// `n_shards`: group `g` owns shards `starts[g]..starts[g + 1]`.
    starts: Vec<u32>,
}

impl ShardTree {
    /// Default fan-out: ~16 shards per group. At the `auto_shards`
    /// density (one shard per ~640 servers) one group covers ~10k
    /// servers, so a 100k farm walks ~10 group skylines instead of ~157
    /// shard skylines per decision.
    pub const DEFAULT_GROUP_SHARDS: usize = 16;

    /// Groups `n_shards` shards into near-equal contiguous runs of at
    /// most `group_size` shards (`group_size` is clamped to `[1,
    /// max(n_shards, 1)]`; the group count is `n_shards / group_size`,
    /// rounded up, so no group exceeds the requested fan-out).
    pub fn new(n_shards: usize, group_size: usize) -> Self {
        let group_size = group_size.clamp(1, n_shards.max(1));
        let n_groups = n_shards.div_ceil(group_size).max(1);
        let base = n_shards / n_groups;
        let extra = n_shards % n_groups;
        let mut starts = Vec::with_capacity(n_groups + 1);
        let mut at = 0usize;
        for g in 0..n_groups {
            starts.push(at as u32);
            at += base + usize::from(g < extra);
        }
        debug_assert_eq!(at, n_shards);
        starts.push(n_shards as u32);
        ShardTree { n_shards, starts }
    }

    /// Number of shards covered by the tree.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.starts.len() - 1
    }

    /// The shard indices owned by `group`, as a range.
    pub fn members(&self, group: usize) -> std::ops::Range<usize> {
        self.starts[group] as usize..self.starts[group + 1] as usize
    }

    /// Number of shards in `group`.
    pub fn len(&self, group: usize) -> usize {
        (self.starts[group + 1] - self.starts[group]) as usize
    }

    /// Whether the tree is degenerate (zero or one group): the group walk
    /// has nothing to prune, so the router falls back to the flat walk.
    pub fn is_empty(&self) -> bool {
        self.n_groups() <= 1
    }

    /// The group owning `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is outside the tree.
    pub fn group_of(&self, shard: usize) -> usize {
        assert!(
            shard < self.n_shards,
            "shard {shard} outside the {}-shard tree",
            self.n_shards
        );
        self.starts.partition_point(|&s| s as usize <= shard) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_near_equal_blocks() {
        let map = ShardMap::new(10, 3);
        assert_eq!(map.n_shards(), 3);
        assert_eq!(map.members(0), 0..4); // 10 % 3 = 1 extra up front
        assert_eq!(map.members(1), 4..7);
        assert_eq!(map.members(2), 7..10);
        assert_eq!(map.len(0) + map.len(1) + map.len(2), 10);
    }

    #[test]
    fn owner_and_translation_roundtrip() {
        let map = ShardMap::new(1000, 7);
        for s in 0..1000u32 {
            let server = ServerId(s);
            let shard = map.owner(server);
            assert!(map.members(shard).contains(&s));
            let local = map.to_local(shard, server);
            assert_eq!(map.to_global(shard, local), server);
        }
    }

    #[test]
    fn shard_count_clamps() {
        assert_eq!(ShardMap::new(3, 8).n_shards(), 3, "no empty shards");
        assert_eq!(ShardMap::new(8, 0).n_shards(), 1, "zero means one");
        assert_eq!(ShardMap::new(0, 4).n_shards(), 1, "empty farm, one shard");
        assert_eq!(ShardMap::new(0, 4).members(0), 0..0);
    }

    #[test]
    fn single_shard_is_identity() {
        let map = ShardMap::new(64, 1);
        assert_eq!(map.members(0), 0..64);
        for s in 0..64u32 {
            assert_eq!(map.to_local(0, ServerId(s)), ServerId(s));
        }
    }

    #[test]
    fn auto_shards_scales_with_farm() {
        assert_eq!(ShardMap::auto_shards(0), 1);
        assert_eq!(ShardMap::auto_shards(100), 1);
        assert_eq!(ShardMap::auto_shards(640), 1);
        assert_eq!(ShardMap::auto_shards(641), 2);
        assert_eq!(ShardMap::auto_shards(1000), 2);
        assert_eq!(ShardMap::auto_shards(10_000), 16);
        assert_eq!(ShardMap::auto_shards(100_000), 157, "past the old cap");
        assert_eq!(ShardMap::auto_shards(1_000_000), 1024, "capped");
    }

    #[test]
    fn push_server_grows_last_shard_only() {
        let mut map = ShardMap::new(10, 3); // 0..4, 4..7, 7..10
        let v0 = map.version();
        let id = map.push_server();
        assert_eq!(id, ServerId(10));
        assert_eq!(map.n_servers(), 11);
        assert_eq!(map.members(0), 0..4, "earlier blocks untouched");
        assert_eq!(map.members(1), 4..7);
        assert_eq!(map.members(2), 7..11, "last block grew");
        assert_eq!(map.owner(ServerId(10)), 2);
        assert_eq!(map.to_local(2, ServerId(10)), ServerId(3));
        assert_eq!(map.version(), v0 + 1, "growth is a shape change");
        // Growth composes: a second push keeps appending.
        assert_eq!(map.push_server(), ServerId(11));
        assert_eq!(map.members(2), 7..12);
    }

    #[test]
    fn tree_groups_are_contiguous_and_near_equal() {
        let tree = ShardTree::new(10, 3); // 4 groups: 3+3+2+2
        assert_eq!(tree.n_groups(), 4);
        assert_eq!(tree.members(0), 0..3);
        assert_eq!(tree.members(1), 3..6);
        assert_eq!(tree.members(2), 6..8);
        assert_eq!(tree.members(3), 8..10);
        assert!((0..tree.n_groups()).all(|g| tree.len(g) <= 3));
        for shard in 0..10 {
            let g = tree.group_of(shard);
            assert!(tree.members(g).contains(&shard));
        }
    }

    #[test]
    fn tree_clamps_and_degenerates() {
        assert_eq!(ShardTree::new(16, 16).n_groups(), 1);
        assert!(ShardTree::new(16, 16).is_empty(), "one group: flat walk");
        assert_eq!(ShardTree::new(16, 4).n_groups(), 4);
        assert!(!ShardTree::new(16, 4).is_empty());
        assert_eq!(ShardTree::new(1, 16).n_groups(), 1);
        assert_eq!(ShardTree::new(0, 4).n_groups(), 1, "empty tree, one group");
        assert_eq!(ShardTree::new(0, 4).members(0), 0..0);
        assert_eq!(ShardTree::new(5, 0).n_groups(), 5, "zero clamps to one");
        // The 100k-farm shape: 157 auto shards, default fan-out.
        let shards = ShardMap::auto_shards(100_000);
        let tree = ShardTree::new(shards, ShardTree::DEFAULT_GROUP_SHARDS);
        assert_eq!(tree.n_groups(), 10);
        assert_eq!(
            (0..tree.n_groups()).map(|g| tree.len(g)).sum::<usize>(),
            shards
        );
    }

    #[test]
    fn rebalance_within_band_is_identity() {
        let map = ShardMap::new(12, 3);
        assert_eq!(map.version(), 0);
        assert_eq!(map.rebalanced(&[true; 12], 2, 8), None);
        // A crash that keeps every shard inside the band moves nothing.
        let mut live = [true; 12];
        live[5] = false;
        assert_eq!(map.rebalanced(&live, 2, 8), None);
    }

    #[test]
    fn undersized_shard_merges_right_and_last_merges_left() {
        let map = ShardMap::new(12, 3); // blocks 0..4, 4..8, 8..12
                                        // Kill most of the middle shard: it merges into the right one.
        let mut live = [true; 12];
        live[4..7].fill(false);
        let out = map.rebalanced(&live, 2, 8).expect("must rebalance");
        assert_eq!(out.version(), 1);
        assert_eq!(out.n_shards(), 2);
        assert_eq!(out.members(0), 0..4);
        assert_eq!(out.members(1), 4..12);
        // Kill most of the *last* shard instead: it merges left.
        let mut live = [true; 12];
        live[9..12].fill(false);
        let out = map.rebalanced(&live, 2, 8).expect("must rebalance");
        assert_eq!(out.members(0), 0..4);
        assert_eq!(out.members(1), 4..12);
    }

    #[test]
    fn oversized_shard_splits_at_live_midpoint() {
        let map = ShardMap::new(12, 1);
        let out = map.rebalanced(&[true; 12], 2, 8).expect("must split");
        assert_eq!(out.n_shards(), 2);
        assert_eq!(out.members(0), 0..6);
        assert_eq!(out.members(1), 6..12);
        assert_eq!(out.version(), 1);
        // Dead servers do not count toward the midpoint: with the left
        // half of the block dead, the cut lands where the *live* mass
        // halves, not at the geometric middle.
        let mut live = [true; 12];
        live[0..4].fill(false);
        let out = map.rebalanced(&live, 2, 6).expect("must split");
        assert_eq!(out.n_shards(), 2);
        assert_eq!(out.members(0), 0..8, "4 dead + 4 live on the left");
        assert_eq!(out.members(1), 8..12);
    }

    #[test]
    fn far_oversized_shard_splits_repeatedly() {
        let map = ShardMap::new(32, 1);
        let out = map.rebalanced(&[true; 32], 2, 8).expect("must split");
        assert!(out.n_shards() >= 4);
        for k in 0..out.n_shards() {
            assert!(out.len(k) <= 8, "shard {k} still oversized");
        }
        // Partition invariants survive: contiguous cover, roundtrip ids.
        for s in 0..32u32 {
            let shard = out.owner(ServerId(s));
            assert!(out.members(shard).contains(&s));
            assert_eq!(out.to_global(shard, out.to_local(shard, ServerId(s))).0, s);
        }
    }

    #[test]
    fn fully_dead_farm_collapses_to_one_shard() {
        let map = ShardMap::new(12, 3);
        let out = map.rebalanced(&[false; 12], 2, 8).expect("must merge");
        assert_eq!(out.n_shards(), 1);
        assert_eq!(out.members(0), 0..12);
        // And a second call is stable (one shard cannot merge further).
        assert_eq!(out.rebalanced(&[false; 12], 2, 8), None);
        assert_eq!(ShardMap::new(0, 1).rebalanced(&[], 1, 2), None);
    }

    #[test]
    fn versions_chain_across_rebalances() {
        let map = ShardMap::new(16, 2);
        let mut live = [true; 16];
        live[0..7].fill(false);
        let merged = map.rebalanced(&live, 4, 16).expect("merge");
        assert_eq!(merged.version(), 1);
        let split = merged.rebalanced(&[true; 16], 4, 10).expect("split");
        assert_eq!(split.version(), 2);
        assert_ne!(
            split,
            ShardMap::new(16, split.n_shards()),
            "same blocks, different generation, still distinguishable"
        );
    }

    #[test]
    fn global_order_is_shard_lexicographic() {
        let map = ShardMap::new(23, 5);
        let mut seen = Vec::new();
        for shard in 0..map.n_shards() {
            for local in map.members(shard) {
                seen.push(map.to_global(shard, ServerId(local - map.start(shard))).0);
            }
        }
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }
}

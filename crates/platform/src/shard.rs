//! Deterministic partitioning of the server farm into shards.
//!
//! The shard federation (see `cas-middleware`) splits the agent's decision
//! state — HTM traces, static index, selector — into per-shard engines so
//! that no single structure scales with the whole farm. [`ShardMap`] is the
//! partition itself: a pure function of `(n_servers, n_shards)`, with no
//! dependence on machine parallelism, so a sharded experiment is
//! reproducible bit for bit on any host.
//!
//! The partition is **contiguous**: shard `k` owns a block of consecutive
//! global server ids. Two properties follow, and the federation relies on
//! both:
//!
//! * global id order equals `(shard, local id)` lexicographic order, so a
//!   shortlist sorted by global id groups into per-shard runs of
//!   consecutive candidates (one `predict_all` batch per run), and
//! * the global → local translation is a subtraction, not a table lookup.

use crate::ids::ServerId;

/// A deterministic contiguous partition of `n_servers` into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    n_servers: usize,
    /// Start of each shard's block plus a final sentinel equal to
    /// `n_servers`: shard `k` owns global ids `starts[k]..starts[k + 1]`.
    starts: Vec<u32>,
}

impl ShardMap {
    /// Partitions `n_servers` into `n_shards` near-equal contiguous
    /// blocks (the first `n_servers % n_shards` shards are one larger).
    /// `n_shards` is clamped to `[1, max(n_servers, 1)]` so every shard is
    /// non-empty.
    pub fn new(n_servers: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.clamp(1, n_servers.max(1));
        let base = n_servers / n_shards;
        let extra = n_servers % n_shards;
        let mut starts = Vec::with_capacity(n_shards + 1);
        let mut at = 0usize;
        for k in 0..n_shards {
            starts.push(at as u32);
            at += base + usize::from(k < extra);
        }
        debug_assert_eq!(at, n_servers);
        starts.push(n_servers as u32);
        ShardMap { n_servers, starts }
    }

    /// The default shard count for an `n`-server farm: one shard per ~640
    /// servers, capped at 16. Small farms stay unsharded (the federation
    /// only pays off once per-engine state outgrows the cache), and the
    /// count is a function of the platform alone — never of the host —
    /// so `--shards auto` is reproducible across machines.
    pub fn auto_shards(n_servers: usize) -> usize {
        n_servers.div_ceil(640).clamp(1, 16)
    }

    /// Servers covered by the partition.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// The shard owning `server`.
    ///
    /// # Panics
    /// Panics if `server` is outside the partition.
    pub fn owner(&self, server: ServerId) -> usize {
        assert!(
            (server.index()) < self.n_servers,
            "{server} outside the {}-server shard map",
            self.n_servers
        );
        // Blocks are near-equal, so the block index is a division away;
        // the remainder shards at the front are one larger, which the
        // partition_point handles exactly (starts is sorted).
        self.starts
            .partition_point(|&s| s as usize <= server.index())
            - 1
    }

    /// The first global id of `shard`'s block.
    pub fn start(&self, shard: usize) -> u32 {
        self.starts[shard]
    }

    /// The global ids owned by `shard`, as a range.
    pub fn members(&self, shard: usize) -> std::ops::Range<u32> {
        self.starts[shard]..self.starts[shard + 1]
    }

    /// Number of servers in `shard`.
    pub fn len(&self, shard: usize) -> usize {
        (self.starts[shard + 1] - self.starts[shard]) as usize
    }

    /// Translates a global server id to its shard-local id.
    pub fn to_local(&self, shard: usize, server: ServerId) -> ServerId {
        debug_assert_eq!(self.owner(server), shard, "{server} not owned here");
        ServerId(server.0 - self.starts[shard])
    }

    /// Translates a shard-local id back to the global id.
    pub fn to_global(&self, shard: usize, local: ServerId) -> ServerId {
        debug_assert!((local.0) < self.starts[shard + 1] - self.starts[shard]);
        ServerId(self.starts[shard] + local.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_near_equal_blocks() {
        let map = ShardMap::new(10, 3);
        assert_eq!(map.n_shards(), 3);
        assert_eq!(map.members(0), 0..4); // 10 % 3 = 1 extra up front
        assert_eq!(map.members(1), 4..7);
        assert_eq!(map.members(2), 7..10);
        assert_eq!(map.len(0) + map.len(1) + map.len(2), 10);
    }

    #[test]
    fn owner_and_translation_roundtrip() {
        let map = ShardMap::new(1000, 7);
        for s in 0..1000u32 {
            let server = ServerId(s);
            let shard = map.owner(server);
            assert!(map.members(shard).contains(&s));
            let local = map.to_local(shard, server);
            assert_eq!(map.to_global(shard, local), server);
        }
    }

    #[test]
    fn shard_count_clamps() {
        assert_eq!(ShardMap::new(3, 8).n_shards(), 3, "no empty shards");
        assert_eq!(ShardMap::new(8, 0).n_shards(), 1, "zero means one");
        assert_eq!(ShardMap::new(0, 4).n_shards(), 1, "empty farm, one shard");
        assert_eq!(ShardMap::new(0, 4).members(0), 0..0);
    }

    #[test]
    fn single_shard_is_identity() {
        let map = ShardMap::new(64, 1);
        assert_eq!(map.members(0), 0..64);
        for s in 0..64u32 {
            assert_eq!(map.to_local(0, ServerId(s)), ServerId(s));
        }
    }

    #[test]
    fn auto_shards_scales_with_farm() {
        assert_eq!(ShardMap::auto_shards(0), 1);
        assert_eq!(ShardMap::auto_shards(100), 1);
        assert_eq!(ShardMap::auto_shards(640), 1);
        assert_eq!(ShardMap::auto_shards(641), 2);
        assert_eq!(ShardMap::auto_shards(1000), 2);
        assert_eq!(ShardMap::auto_shards(10_000), 16);
        assert_eq!(ShardMap::auto_shards(1_000_000), 16, "capped");
    }

    #[test]
    fn global_order_is_shard_lexicographic() {
        let map = ShardMap::new(23, 5);
        let mut seen = Vec::new();
        for shard in 0..map.n_shards() {
            for local in map.members(shard) {
                seen.push(map.to_global(shard, ServerId(local - map.start(shard))).0);
            }
        }
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }
}

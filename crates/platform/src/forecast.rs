//! NWS-flavoured forecasters.
//!
//! §2.2 notes the agent "may also use monitors beforehand installed such as
//! NWS". The Network Weather Service's key idea is to run a family of cheap
//! predictors over the measurement history and, for each new query, use the
//! one whose *past* predictions had the lowest error. We implement a small
//! ensemble — last value, running mean, sliding-window mean, sliding-window
//! median — plus the [`Adaptive`] best-of selector. The baseline MCT
//! configuration can optionally smooth its load signal through one of these
//! (an ablation knob; the paper's NetSolve used raw reports).

use std::collections::VecDeque;

/// A one-step-ahead forecaster over a scalar series.
pub trait Forecaster {
    /// Incorporates a new measurement.
    fn update(&mut self, value: f64);
    /// Predicts the next value; `None` until enough history exists.
    fn predict(&self) -> Option<f64>;
    /// Short human-readable name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Predicts the last observed value.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl Forecaster for LastValue {
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Predicts the mean of all observations.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl Forecaster for RunningMean {
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
    fn name(&self) -> &'static str {
        "running-mean"
    }
}

/// Predicts the mean of the last `w` observations.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    window: VecDeque<f64>,
    w: usize,
}

impl SlidingMean {
    /// # Panics
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        assert!(w > 0);
        SlidingMean {
            window: VecDeque::with_capacity(w),
            w,
        }
    }
}

impl Forecaster for SlidingMean {
    fn update(&mut self, value: f64) {
        if self.window.len() == self.w {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
    }
    fn name(&self) -> &'static str {
        "sliding-mean"
    }
}

/// Predicts the median of the last `w` observations — robust to the load
/// spikes a briefly-thrashing server produces.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    window: VecDeque<f64>,
    w: usize,
}

impl SlidingMedian {
    /// # Panics
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        assert!(w > 0);
        SlidingMedian {
            window: VecDeque::with_capacity(w),
            w,
        }
    }
}

impl Forecaster for SlidingMedian {
    fn update(&mut self, value: f64) {
        if self.window.len() == self.w {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = sorted.len() / 2;
        Some(if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        })
    }
    fn name(&self) -> &'static str {
        "sliding-median"
    }
}

/// NWS-style adaptive ensemble: tracks each member's cumulative absolute
/// one-step prediction error and answers with the current best member's
/// prediction.
pub struct Adaptive {
    members: Vec<Box<dyn Forecaster + Send>>,
    errors: Vec<f64>,
}

impl Adaptive {
    /// The standard ensemble: last value, running mean, sliding mean(8),
    /// sliding median(8).
    pub fn standard() -> Self {
        Adaptive::new(vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(8)),
            Box::new(SlidingMedian::new(8)),
        ])
    }

    /// Builds an ensemble from arbitrary members.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Forecaster + Send>>) -> Self {
        assert!(!members.is_empty());
        let n = members.len();
        Adaptive {
            members,
            errors: vec![0.0; n],
        }
    }

    /// Name of the member that currently has the lowest cumulative error.
    pub fn best_member(&self) -> &'static str {
        let (i, _) = self
            .errors
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty ensemble");
        self.members[i].name()
    }
}

impl Forecaster for Adaptive {
    fn update(&mut self, value: f64) {
        for (m, err) in self.members.iter_mut().zip(&mut self.errors) {
            if let Some(p) = m.predict() {
                *err += (p - value).abs();
            }
            m.update(value);
        }
    }
    fn predict(&self) -> Option<f64> {
        let (i, _) = self
            .errors
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())?;
        self.members[i].predict()
    }
    fn name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks() {
        let mut f = LastValue::default();
        assert_eq!(f.predict(), None);
        f.update(3.0);
        f.update(7.0);
        assert_eq!(f.predict(), Some(7.0));
    }

    #[test]
    fn running_mean() {
        let mut f = RunningMean::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn sliding_mean_window() {
        let mut f = SlidingMean::new(2);
        for v in [10.0, 1.0, 3.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(2.0)); // only (1, 3) remain
    }

    #[test]
    fn sliding_median_odd_even() {
        let mut f = SlidingMedian::new(5);
        for v in [5.0, 1.0, 9.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(5.0));
        f.update(2.0);
        // window = [5,1,9,2] → sorted [1,2,5,9] → (2+5)/2
        assert_eq!(f.predict(), Some(3.5));
    }

    #[test]
    fn median_robust_to_spike() {
        let mut f = SlidingMedian::new(5);
        for v in [1.0, 1.0, 100.0, 1.0, 1.0] {
            f.update(v);
        }
        assert_eq!(f.predict(), Some(1.0));
    }

    #[test]
    fn adaptive_prefers_last_value_on_trend() {
        // A steadily rising series: last-value beats any mean.
        let mut f = Adaptive::standard();
        for i in 0..50 {
            f.update(i as f64);
        }
        assert_eq!(f.best_member(), "last-value");
        assert_eq!(f.predict(), Some(49.0));
    }

    #[test]
    fn adaptive_prefers_mean_on_noise() {
        // Alternating 0/10: last-value is always 10 off; means hover at 5.
        let mut f = Adaptive::standard();
        for i in 0..60 {
            f.update(if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        assert_ne!(f.best_member(), "last-value");
        let p = f.predict().unwrap();
        assert!((p - 5.0).abs() < 1.5, "p = {p}");
    }

    #[test]
    fn adaptive_empty_history_is_none() {
        let f = Adaptive::standard();
        assert_eq!(f.predict(), None);
    }

    /// Window rollover must evict exactly the oldest element, element by
    /// element — a window of `w` fed `w + k` values predicts from the
    /// last `w` alone.
    #[test]
    fn sliding_windows_roll_over_exactly() {
        let mut mean = SlidingMean::new(3);
        let mut median = SlidingMedian::new(3);
        for v in [100.0, 200.0, 300.0] {
            mean.update(v);
            median.update(v);
        }
        // Roll the window forward twice: 100 then 200 leave.
        for v in [6.0, 9.0] {
            mean.update(v);
            median.update(v);
        }
        assert_eq!(mean.predict(), Some((300.0 + 6.0 + 9.0) / 3.0));
        assert_eq!(median.predict(), Some(9.0));
        // One more evicts the last of the original fill entirely.
        mean.update(3.0);
        median.update(3.0);
        assert_eq!(mean.predict(), Some(6.0));
        assert_eq!(median.predict(), Some(6.0));
    }

    /// A window wider than the history behaves like the full-history
    /// forecasters — partial fill must not divide by the window size.
    #[test]
    fn sliding_windows_partial_fill() {
        let mut mean = SlidingMean::new(100);
        let mut median = SlidingMedian::new(100);
        assert_eq!(mean.predict(), None);
        assert_eq!(median.predict(), None);
        mean.update(4.0);
        median.update(4.0);
        assert_eq!(mean.predict(), Some(4.0));
        assert_eq!(median.predict(), Some(4.0));
        mean.update(8.0);
        median.update(8.0);
        assert_eq!(mean.predict(), Some(6.0));
        assert_eq!(median.predict(), Some(6.0));
    }

    /// The ensemble must not charge error to members that could not yet
    /// predict: the first observation primes every member without
    /// penalising any, so the scoreboard starts fair.
    #[test]
    fn adaptive_first_observation_charges_no_error() {
        let mut f = Adaptive::standard();
        f.update(42.0);
        // Every member now predicts 42; all errors are still zero, so the
        // tie resolves to the first member and the prediction is exact.
        assert_eq!(f.predict(), Some(42.0));
        assert_eq!(f.best_member(), "last-value");
    }

    /// Members keep being scored after a long run: a regime change flips
    /// the best member (mean-friendly noise, then a trend).
    #[test]
    fn adaptive_switches_members_on_regime_change() {
        let mut f = Adaptive::standard();
        for i in 0..40 {
            f.update(if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        assert_ne!(f.best_member(), "last-value");
        // A long steep ramp: last-value's error stays ~slope per step,
        // every mean falls behind by the growing gap.
        for i in 0..400 {
            f.update(1000.0 * i as f64);
        }
        assert_eq!(f.best_member(), "last-value");
    }

    #[test]
    #[should_panic]
    fn sliding_mean_zero_window_panics() {
        SlidingMean::new(0);
    }

    #[test]
    #[should_panic]
    fn sliding_median_zero_window_panics() {
        SlidingMedian::new(0);
    }
}

//! Newtyped identifiers.
//!
//! Plain `u32`/`u64` indices would compile fine everywhere — which is exactly
//! the problem: a server index passed where a problem index is expected is a
//! silent wrong answer in a simulator. Newtypes make those mix-ups type
//! errors, at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a computational server registered with the agent.
///
/// Values are dense indices (0..n_servers) assigned at platform
/// construction, so they double as `Vec` indices via [`ServerId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The dense index of this server.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifies a problem type (e.g. "matmul-1500", "waste-cpu-400").
///
/// In the client-agent-server model, servers register the list of problems
/// they can solve; tasks reference the problem they instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProblemId(pub u32);

impl ProblemId {
    /// The dense index of this problem.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProblemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies one submitted task (one client request).
///
/// Unique across the whole experiment; assigned in submission order, which
/// makes it usable as the paper's "local number" ordering too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl TaskId {
    /// The dense index of this task.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ServerId(3).to_string(), "S3");
        assert_eq!(ProblemId(1).to_string(), "P1");
        assert_eq!(TaskId(42).to_string(), "T42");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(ServerId(7).index(), 7);
        assert_eq!(ProblemId(2).index(), 2);
        assert_eq!(TaskId(9).index(), 9);
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(TaskId(1) < TaskId(2));
        assert!(ServerId(0) < ServerId(1));
    }
}

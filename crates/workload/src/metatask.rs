//! Metatask generation (§5).
//!
//! "We call an experiment the submission of a metatask composed of N
//! independent tasks to the agent. … The difference between two arrivals is
//! drawn from a Poisson distribution with a mean of λ₁ or λ₂ seconds. …
//! A task has a uniform probability to be of each duration."
//!
//! The two arrival-rate constants are back-derived from the reported
//! makespans (see DESIGN.md): [`LOW_RATE_MEAN_GAP`] = 20 s for the "low
//! rate" tables (5, 7) and [`HIGH_RATE_MEAN_GAP`] = 15 s for the "high
//! rate" tables (6, 8).

use cas_platform::{ProblemId, TaskId, TaskInstance};
use cas_sim::dist::{Exponential, Poisson, Sample};
use cas_sim::{RngStream, SimTime, StreamKind};

/// Mean inter-arrival gap of the paper's low-rate experiments, seconds.
pub const LOW_RATE_MEAN_GAP: f64 = 20.0;

/// Mean inter-arrival gap of the paper's high-rate experiments, seconds.
pub const HIGH_RATE_MEAN_GAP: f64 = 15.0;

/// Number of tasks in the paper's metatasks.
pub const PAPER_METATASK_LEN: usize = 500;

/// Which distribution the inter-arrival gaps are drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GapDistribution {
    /// The literal reading of §5: integer-valued Poisson gaps.
    Poisson,
    /// The Poisson-process reading: exponential gaps. Statistically
    /// equivalent at these means; the default.
    Exponential,
}

/// A metatask specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetataskSpec {
    /// Number of independent tasks.
    pub n_tasks: usize,
    /// Mean inter-arrival gap, seconds.
    pub mean_gap: f64,
    /// Gap distribution.
    pub gaps: GapDistribution,
    /// Number of distinct problem types tasks draw from (uniformly).
    pub n_problems: usize,
}

impl MetataskSpec {
    /// The paper's configuration: 500 tasks over 3 problem types.
    pub fn paper(mean_gap: f64) -> Self {
        MetataskSpec {
            n_tasks: PAPER_METATASK_LEN,
            mean_gap,
            gaps: GapDistribution::Exponential,
            n_problems: 3,
        }
    }

    /// Generates the metatask deterministically from `seed`.
    ///
    /// Arrival gaps come from the `Arrivals` stream and type draws from the
    /// `TaskSizes` stream, so two specs differing only in `mean_gap` still
    /// assign the same *sequence of problem types* — the paper compares
    /// "the same set of tasks … with different arrival dates".
    pub fn generate(&self, seed: u64) -> Vec<TaskInstance> {
        assert!(self.n_problems > 0, "need at least one problem type");
        let mut gap_rng = RngStream::derive(seed, StreamKind::Arrivals);
        let mut size_rng = RngStream::derive(seed, StreamKind::TaskSizes);
        let mut tasks = Vec::with_capacity(self.n_tasks);
        let mut clock = 0.0f64;
        for i in 0..self.n_tasks {
            let gap = match self.gaps {
                GapDistribution::Poisson => Poisson::new(self.mean_gap).sample(&mut gap_rng),
                GapDistribution::Exponential => {
                    Exponential::new(self.mean_gap).sample(&mut gap_rng)
                }
            };
            clock += gap;
            let problem = ProblemId(size_rng.below(self.n_problems as u64) as u32);
            tasks.push(TaskInstance::new(
                TaskId(i as u64),
                problem,
                SimTime::from_secs(clock),
            ));
        }
        tasks
    }
}

/// Arrival-process summary of a generated (or trace-ingested) task list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSummary {
    /// Number of tasks.
    pub n: usize,
    /// Time of the last arrival, seconds.
    pub span_s: f64,
    /// Mean inter-arrival gap (`span / n`), seconds.
    pub mean_gap_s: f64,
}

/// Summarises a task list's arrival process. Returns `None` for an empty
/// list — zero-task traces are reachable through CSV ingestion, and the
/// mean gap of nothing is not a number, not a quantity.
pub fn arrival_summary(tasks: &[TaskInstance]) -> Option<ArrivalSummary> {
    let last = tasks.last()?;
    let n = tasks.len();
    let span_s = last.arrival.as_secs();
    Some(ArrivalSummary {
        n,
        span_s,
        mean_gap_s: span_s / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = MetataskSpec::paper(20.0);
        let a = spec.generate(1);
        let b = spec.generate(1);
        assert_eq!(a, b);
        let c = spec.generate(2);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_increasing_and_sized() {
        let spec = MetataskSpec::paper(20.0);
        let tasks = spec.generate(7);
        assert_eq!(tasks.len(), 500);
        for w in tasks.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
            assert_eq!(w[1].id.0, w[0].id.0 + 1);
        }
    }

    #[test]
    fn mean_gap_close_to_nominal() {
        let spec = MetataskSpec::paper(20.0);
        let tasks = spec.generate(3);
        let summary = arrival_summary(&tasks).unwrap();
        assert_eq!(summary.n, 500);
        // 500 samples: expect within ~10 %.
        let mean = summary.mean_gap_s;
        assert!((mean - 20.0).abs() < 2.0, "mean gap = {mean}");
    }

    #[test]
    fn empty_task_list_has_no_summary() {
        // Zero-task traces are reachable via CSV ingestion; the summary
        // must be well-defined (None), never a 0/0 NaN.
        assert_eq!(arrival_summary(&[]), None);
        let spec = MetataskSpec {
            n_tasks: 0,
            ..MetataskSpec::paper(20.0)
        };
        let tasks = spec.generate(1);
        assert!(tasks.is_empty());
        assert_eq!(arrival_summary(&tasks), None);
    }

    #[test]
    fn singleton_summary_is_finite() {
        let spec = MetataskSpec {
            n_tasks: 1,
            ..MetataskSpec::paper(20.0)
        };
        let s = arrival_summary(&spec.generate(4)).unwrap();
        assert_eq!(s.n, 1);
        assert!(s.span_s.is_finite() && s.mean_gap_s.is_finite());
    }

    #[test]
    fn paper_horizon_matches_reported_makespans() {
        // 500 tasks at 20 s → last arrival ≈ 10 000 s (Table 5's makespans
        // are ≈ 9 900); at 15 s → ≈ 7 500 s (Tables 6/8 ≈ 7 600).
        let low = MetataskSpec::paper(LOW_RATE_MEAN_GAP).generate(11);
        let high = MetataskSpec::paper(HIGH_RATE_MEAN_GAP).generate(11);
        let low_end = low.last().unwrap().arrival.as_secs();
        let high_end = high.last().unwrap().arrival.as_secs();
        assert!((low_end - 10_000.0).abs() < 1_000.0, "low_end = {low_end}");
        assert!((high_end - 7_500.0).abs() < 800.0, "high_end = {high_end}");
    }

    #[test]
    fn type_sequence_independent_of_rate() {
        // The same seed at two rates gives the same type sequence — the
        // paper's "same metatask, different arrival dates".
        let low = MetataskSpec::paper(20.0).generate(5);
        let high = MetataskSpec::paper(15.0).generate(5);
        for (a, b) in low.iter().zip(&high) {
            assert_eq!(a.problem, b.problem);
        }
    }

    #[test]
    fn types_roughly_uniform() {
        let tasks = MetataskSpec::paper(20.0).generate(9);
        let mut counts = [0usize; 3];
        for t in &tasks {
            counts[t.problem.index()] += 1;
        }
        for c in counts {
            assert!(c > 120 && c < 220, "counts = {counts:?}");
        }
    }

    #[test]
    fn poisson_gaps_are_integers() {
        let spec = MetataskSpec {
            gaps: GapDistribution::Poisson,
            ..MetataskSpec::paper(15.0)
        };
        let tasks = spec.generate(2);
        for t in &tasks {
            assert_eq!(t.arrival.as_secs().fract(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one problem")]
    fn zero_problems_rejected() {
        let spec = MetataskSpec {
            n_problems: 0,
            ..MetataskSpec::paper(20.0)
        };
        spec.generate(0);
    }
}

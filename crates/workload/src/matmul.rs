//! The matrix-multiplication workload of the first experiment set (Table 3).
//!
//! "The tasks are multiplications of square matrix of size 1200, 1500 and
//! 1800. Each multiplication has been run on each unloaded server hence
//! determining its time cost (transfer and computing), which have been
//! placed in the NetSolve code." (§5.1)
//!
//! The memory need listed in Table 3 is the input plus output matrix
//! storage; it is what makes MCT and HMCT collapse the fast servers at the
//! high arrival rate (Table 6).

use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId};

/// The three matrix sizes.
pub const SIZES: [u32; 3] = [1200, 1500, 1800];

/// Per-size data volumes, MB: (input, output) — Table 3 columns 2–3.
/// Input holds the two operand matrices, output the result.
pub const DATA_MB: [(f64, f64); 3] = [(21.97, 10.98), (34.33, 17.16), (49.43, 24.72)];

/// Phase costs per size (rows) and server (columns: chamagne, cabestan,
/// artimon, pulney), straight from Table 3.
pub const INPUT_COST: [[f64; 4]; 3] = [
    [4.0, 4.0, 3.0, 3.0],
    [6.0, 5.0, 5.0, 5.0],
    [8.0, 8.0, 8.0, 7.0],
];

/// Computing costs, seconds — the dominant heterogeneity (chamagne is
/// ~10× slower than pulney).
pub const COMPUTE_COST: [[f64; 4]; 3] = [
    [149.0, 70.0, 18.0, 14.0],
    [292.0, 136.0, 33.0, 25.0],
    [504.0, 231.0, 53.0, 40.0],
];

/// Output-transfer costs, seconds.
pub const OUTPUT_COST: [[f64; 4]; 3] = [
    [1.0, 1.0, 1.0, 1.0],
    [2.0, 2.0, 1.0, 1.0],
    [3.0, 3.0, 2.0, 2.0],
];

/// Builds the Table 3 cost table for the set-1 servers
/// (chamagne, cabestan, artimon, pulney — indices 0..4).
///
/// Problem ids are assigned in size order: `ProblemId(0)` = 1200,
/// `ProblemId(1)` = 1500, `ProblemId(2)` = 1800.
pub fn cost_table() -> CostTable {
    let mut table = CostTable::new(4);
    for (i, &size) in SIZES.iter().enumerate() {
        let (input_mb, output_mb) = DATA_MB[i];
        let problem = Problem::new(
            format!("matmul-{size}"),
            input_mb,
            output_mb,
            input_mb + output_mb,
        );
        let row = (0..4)
            .map(|s| {
                Some(PhaseCosts::new(
                    INPUT_COST[i][s],
                    COMPUTE_COST[i][s],
                    OUTPUT_COST[i][s],
                ))
            })
            .collect();
        table.add_problem(problem, row);
    }
    table
}

/// The problem ids of the three sizes, in [`SIZES`] order.
pub fn problem_ids() -> [ProblemId; 3] {
    [ProblemId(0), ProblemId(1), ProblemId(2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::ServerId;

    #[test]
    fn table3_spot_checks() {
        let t = cost_table();
        // matmul-1200 on chamagne: 4 / 149 / 1.
        let c = t.costs(ProblemId(0), ServerId(0)).unwrap();
        assert_eq!((c.input, c.compute, c.output), (4.0, 149.0, 1.0));
        // matmul-1800 on pulney: 7 / 40 / 2.
        let c = t.costs(ProblemId(2), ServerId(3)).unwrap();
        assert_eq!((c.input, c.compute, c.output), (7.0, 40.0, 2.0));
        // matmul-1500 on artimon: 5 / 33 / 1.
        let c = t.costs(ProblemId(1), ServerId(2)).unwrap();
        assert_eq!((c.input, c.compute, c.output), (5.0, 33.0, 1.0));
    }

    #[test]
    fn memory_needs_match_table3() {
        let t = cost_table();
        assert!((t.problem(ProblemId(0)).mem_mb - 32.95).abs() < 1e-9);
        assert!((t.problem(ProblemId(1)).mem_mb - 51.49).abs() < 1e-9);
        assert!((t.problem(ProblemId(2)).mem_mb - 74.15).abs() < 1e-9);
    }

    #[test]
    fn every_server_solves_every_size() {
        let t = cost_table();
        for p in problem_ids() {
            assert_eq!(t.solvers(p).len(), 4);
        }
    }

    #[test]
    fn heterogeneity_ordering() {
        // pulney (fastest) < artimon < cabestan < chamagne on compute cost,
        // for every size.
        let t = cost_table();
        for p in problem_ids() {
            let costs: Vec<f64> = (0..4)
                .map(|s| t.costs(p, ServerId(s)).unwrap().compute)
                .collect();
            assert!(costs[3] < costs[2]);
            assert!(costs[2] < costs[1]);
            assert!(costs[1] < costs[0]);
        }
    }

    #[test]
    fn unloaded_duration_1200_chamagne() {
        let t = cost_table();
        assert_eq!(t.unloaded_duration(ProblemId(0), ServerId(0)), Some(154.0));
    }
}

//! The "waste-cpu" workload of the second experiment set (Table 4).
//!
//! "To prevent the memory problems that we do not yet handle, we designed a
//! task, 'waste-cpu', that does not require any memory to be computed …
//! its computation costs, dependent on the parameters, are similar to the
//! multiplication tasks." (§5.2)
//!
//! Parameters 200/400/600 play the role of the matrix sizes; data volumes
//! are negligible (a scalar parameter in, a scalar out).

use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId};

/// The three waste-cpu parameters.
pub const PARAMS: [u32; 3] = [200, 400, 600];

/// Input-transfer costs per parameter (rows) and server (columns: valette,
/// spinnaker, cabestan, artimon), from Table 4.
pub const INPUT_COST: [[f64; 4]; 3] = [
    [0.08, 0.09, 0.10, 0.12],
    [0.08, 0.14, 0.09, 0.13],
    [0.13, 0.09, 0.08, 0.14],
];

/// Computing costs, seconds.
pub const COMPUTE_COST: [[f64; 4]; 3] = [
    [91.81, 16.0, 74.86, 17.1],
    [182.52, 30.6, 148.48, 33.2],
    [273.28, 45.6, 222.26, 49.4],
];

/// Output-transfer costs, seconds.
pub const OUTPUT_COST: [[f64; 4]; 3] = [
    [0.03, 0.05, 0.03, 0.03],
    [0.03, 0.06, 0.03, 0.03],
    [0.03, 0.05, 0.03, 0.03],
];

/// Nominal data volume for the scalar parameter/result, MB (the transfers
/// in Table 4 are latency-dominated; the exact volume is irrelevant).
const DATA_MB: f64 = 0.001;

/// Builds the Table 4 cost table for the set-2 servers
/// (valette, spinnaker, cabestan, artimon — indices 0..4).
///
/// Problem ids in parameter order: `ProblemId(0)` = 200, `ProblemId(1)` =
/// 400, `ProblemId(2)` = 600. Memory need is zero by design.
pub fn cost_table() -> CostTable {
    let mut table = CostTable::new(4);
    for (i, &param) in PARAMS.iter().enumerate() {
        let problem = Problem::new(format!("waste-cpu-{param}"), DATA_MB, DATA_MB, 0.0);
        let row = (0..4)
            .map(|s| {
                Some(PhaseCosts::new(
                    INPUT_COST[i][s],
                    COMPUTE_COST[i][s],
                    OUTPUT_COST[i][s],
                ))
            })
            .collect();
        table.add_problem(problem, row);
    }
    table
}

/// The problem ids of the three parameters, in [`PARAMS`] order.
pub fn problem_ids() -> [ProblemId; 3] {
    [ProblemId(0), ProblemId(1), ProblemId(2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::ServerId;

    #[test]
    fn table4_spot_checks() {
        let t = cost_table();
        // waste-cpu-200 on valette: 0.08 / 91.81 / 0.03.
        let c = t.costs(ProblemId(0), ServerId(0)).unwrap();
        assert_eq!((c.input, c.compute, c.output), (0.08, 91.81, 0.03));
        // waste-cpu-600 on artimon: 0.14 / 49.4 / 0.03.
        let c = t.costs(ProblemId(2), ServerId(3)).unwrap();
        assert_eq!((c.input, c.compute, c.output), (0.14, 49.4, 0.03));
        // waste-cpu-400 on spinnaker: 0.14 / 30.6 / 0.06.
        let c = t.costs(ProblemId(1), ServerId(1)).unwrap();
        assert_eq!((c.input, c.compute, c.output), (0.14, 30.6, 0.06));
    }

    #[test]
    fn no_memory_by_design() {
        let t = cost_table();
        for p in problem_ids() {
            assert_eq!(t.problem(p).mem_mb, 0.0);
        }
    }

    #[test]
    fn fast_slow_split() {
        // spinnaker and artimon are the fast pair; valette and cabestan the
        // slow pair — the two-speed structure §5.3's analysis leans on.
        let t = cost_table();
        for p in problem_ids() {
            let c: Vec<f64> = (0..4)
                .map(|s| t.costs(p, ServerId(s)).unwrap().compute)
                .collect();
            assert!(c[1] < c[0] / 4.0, "spinnaker ≪ valette");
            assert!(c[3] < c[2] / 4.0, "artimon ≪ cabestan");
        }
    }

    #[test]
    fn costs_scale_with_parameter() {
        let t = cost_table();
        for s in 0..4 {
            let c200 = t.costs(ProblemId(0), ServerId(s)).unwrap().compute;
            let c600 = t.costs(ProblemId(2), ServerId(s)).unwrap().compute;
            assert!(c600 > 2.5 * c200, "600 ≈ 3 × 200 on server {s}");
        }
    }
}

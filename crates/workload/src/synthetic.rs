//! Parametric platforms and workloads for sweeps and ablations.
//!
//! The paper evaluates on one fixed testbed with homogeneous-Poisson
//! arrivals; the ablation benches vary heterogeneity, server count and
//! task granularity to probe *where* the HTM-based heuristics win.
//! [`SyntheticPlatform`] builds a platform and matching cost table from a
//! handful of knobs, and [`BurstArrivals`] opens the bursty-traffic
//! scenario: an inhomogeneous Poisson arrival process sampled by the
//! thinning method (Lewis & Shedler 1979, as implemented by the IPPP
//! package of Hohmann 2019, arXiv:1901.10754).

use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId, ServerSpec, TaskId, TaskInstance};
use cas_sim::dist::{Exponential, Sample};
use cas_sim::{RngStream, SimTime, StreamKind};

/// Knobs for a synthetic platform + workload family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticPlatform {
    /// Number of servers.
    pub n_servers: usize,
    /// Speed of the fastest server relative to the slowest (1.0 =
    /// homogeneous).
    pub heterogeneity: f64,
    /// Number of problem types.
    pub n_problems: usize,
    /// Compute cost of the cheapest problem on the *fastest* server,
    /// seconds.
    pub base_cost: f64,
    /// Cost of the most expensive problem relative to the cheapest.
    pub cost_spread: f64,
    /// Transfer cost as a fraction of compute cost (0 = compute-only).
    pub comm_fraction: f64,
    /// Memory need per task as a fraction of the smallest server's RAM
    /// (0 = memory-free, like waste-cpu).
    pub mem_fraction: f64,
}

impl Default for SyntheticPlatform {
    fn default() -> Self {
        SyntheticPlatform {
            n_servers: 4,
            heterogeneity: 5.0,
            n_problems: 3,
            base_cost: 15.0,
            cost_spread: 3.0,
            comm_fraction: 0.02,
            mem_fraction: 0.0,
        }
    }
}

impl SyntheticPlatform {
    /// Builds server specs: speeds geometrically interpolated between the
    /// slowest and fastest; RAM 256 MB + jitter, swap = RAM.
    pub fn servers(&self, seed: u64) -> Vec<ServerSpec> {
        assert!(self.n_servers >= 1);
        let mut rng = RngStream::derive(seed, StreamKind::Custom(0xA0));
        (0..self.n_servers)
            .map(|i| {
                let frac = if self.n_servers == 1 {
                    0.0
                } else {
                    i as f64 / (self.n_servers - 1) as f64
                };
                // Server 0 is fastest (speed factor heterogeneity), the
                // last is slowest (factor 1).
                let speed = self.heterogeneity.powf(1.0 - frac);
                let ram = 256.0 * rng.uniform(0.9, 1.1);
                ServerSpec::new(format!("synth-{i}"), 1000.0 * speed, ram, ram)
            })
            .collect()
    }

    /// Builds the matching cost table. Problem `p`'s cost on the fastest
    /// server interpolates geometrically from `base_cost` to
    /// `base_cost * cost_spread`; slower servers scale it by their relative
    /// slowness.
    pub fn cost_table(&self, seed: u64) -> CostTable {
        let servers = self.servers(seed);
        let fastest = servers.iter().map(|s| s.cpu_mhz).fold(f64::MIN, f64::max);
        let min_ram = servers.iter().map(|s| s.ram_mb).fold(f64::MAX, f64::min);
        let mut table = CostTable::new(servers.len());
        for p in 0..self.n_problems {
            let frac = if self.n_problems == 1 {
                0.0
            } else {
                p as f64 / (self.n_problems - 1) as f64
            };
            let fast_cost = self.base_cost * self.cost_spread.powf(frac);
            let mem = self.mem_fraction * min_ram * (1.0 + frac);
            let data_mb = fast_cost * self.comm_fraction * 10.0;
            let problem = Problem::new(format!("synth-p{p}"), data_mb, data_mb / 2.0, mem);
            let row = servers
                .iter()
                .map(|s| {
                    let slowdown = fastest / s.cpu_mhz;
                    let compute = fast_cost * slowdown;
                    let comm = fast_cost * self.comm_fraction;
                    Some(PhaseCosts::new(comm, compute, comm / 2.0))
                })
                .collect();
            table.add_problem(problem, row);
        }
        table
    }
}

/// An inhomogeneous-Poisson metatask: arrivals follow a sinusoidally
/// modulated rate
///
/// ```text
/// λ(t) = base_rate + (peak_rate − base_rate) · ½(1 + sin(2πt / period))
/// ```
///
/// sampled exactly by **thinning**: candidate events are drawn from a
/// homogeneous Poisson process at `peak_rate` (the majorant) and each
/// candidate at time `t` is accepted with probability `λ(t)/peak_rate`.
/// The accepted stream is a realisation of the inhomogeneous process —
/// no discretisation, no approximation. With `base_rate == peak_rate`
/// every candidate is accepted and the process degenerates to the
/// paper's homogeneous arrivals.
///
/// Problem types draw from their own RNG stream (`TaskSizes`), mirroring
/// [`MetataskSpec`](crate::metatask::MetataskSpec): two burst specs
/// differing only in rates produce the same *sequence of problem types*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstArrivals {
    /// Number of tasks to emit.
    pub n_tasks: usize,
    /// Trough arrival rate, tasks per second (> 0).
    pub base_rate: f64,
    /// Crest arrival rate, tasks per second (≥ `base_rate`).
    pub peak_rate: f64,
    /// Burst period, seconds.
    pub period: f64,
    /// Number of distinct problem types tasks draw from (uniformly).
    pub n_problems: usize,
}

impl BurstArrivals {
    /// The instantaneous arrival rate λ(t), tasks/second.
    pub fn rate_at(&self, t: f64) -> f64 {
        let swing = (self.peak_rate - self.base_rate) * 0.5;
        self.base_rate + swing * (1.0 + (2.0 * std::f64::consts::PI * t / self.period).sin())
    }

    /// The time-averaged arrival rate, tasks/second (the sine averages
    /// out: midway between trough and crest).
    pub fn mean_rate(&self) -> f64 {
        0.5 * (self.base_rate + self.peak_rate)
    }

    /// Generates the metatask deterministically from `seed` by thinning.
    ///
    /// # Panics
    /// Panics unless `0 < base_rate ≤ peak_rate`, `period > 0` and
    /// `n_problems > 0`.
    pub fn generate(&self, seed: u64) -> Vec<TaskInstance> {
        assert!(
            self.base_rate > 0.0 && self.peak_rate >= self.base_rate,
            "need 0 < base_rate <= peak_rate, got {self:?}"
        );
        assert!(self.period > 0.0, "need a positive burst period");
        assert!(self.n_problems > 0, "need at least one problem type");
        let mut gap_rng = RngStream::derive(seed, StreamKind::Arrivals);
        let mut size_rng = RngStream::derive(seed, StreamKind::TaskSizes);
        let majorant_gap = Exponential::new(1.0 / self.peak_rate);
        let mut tasks = Vec::with_capacity(self.n_tasks);
        let mut clock = 0.0f64;
        for i in 0..self.n_tasks {
            // Thinning: step the majorant process until a candidate
            // survives the acceptance draw.
            loop {
                clock += majorant_gap.sample(&mut gap_rng);
                if gap_rng.uniform01() * self.peak_rate < self.rate_at(clock) {
                    break;
                }
            }
            let problem = ProblemId(size_rng.below(self.n_problems as u64) as u32);
            tasks.push(TaskInstance::new(
                TaskId(i as u64),
                problem,
                SimTime::from_secs(clock),
            ));
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::{ProblemId, ServerId};

    #[test]
    fn default_builds_consistent_platform() {
        let p = SyntheticPlatform::default();
        let servers = p.servers(1);
        let table = p.cost_table(1);
        assert_eq!(servers.len(), 4);
        assert_eq!(table.n_servers(), 4);
        assert_eq!(table.n_problems(), 3);
    }

    #[test]
    fn heterogeneity_ratio_respected() {
        let p = SyntheticPlatform {
            heterogeneity: 8.0,
            ..Default::default()
        };
        let table = p.cost_table(2);
        let fast = table.costs(ProblemId(0), ServerId(0)).unwrap().compute;
        let slow = table.costs(ProblemId(0), ServerId(3)).unwrap().compute;
        assert!((slow / fast - 8.0).abs() < 1e-9, "ratio = {}", slow / fast);
    }

    #[test]
    fn homogeneous_platform_has_equal_costs() {
        let p = SyntheticPlatform {
            heterogeneity: 1.0,
            ..Default::default()
        };
        let table = p.cost_table(3);
        let costs: Vec<f64> = (0..4)
            .map(|s| table.costs(ProblemId(1), ServerId(s)).unwrap().compute)
            .collect();
        for c in &costs[1..] {
            assert!((c - costs[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_spread_across_problems() {
        let p = SyntheticPlatform {
            cost_spread: 4.0,
            ..Default::default()
        };
        let table = p.cost_table(4);
        let cheap = table.costs(ProblemId(0), ServerId(0)).unwrap().compute;
        let dear = table.costs(ProblemId(2), ServerId(0)).unwrap().compute;
        assert!((dear / cheap - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_comm_fraction_is_compute_only() {
        let p = SyntheticPlatform {
            comm_fraction: 0.0,
            ..Default::default()
        };
        let table = p.cost_table(5);
        let c = table.costs(ProblemId(0), ServerId(0)).unwrap();
        assert_eq!(c.input, 0.0);
        assert_eq!(c.output, 0.0);
    }

    #[test]
    fn mem_fraction_populates_memory_needs() {
        let p = SyntheticPlatform {
            mem_fraction: 0.5,
            ..Default::default()
        };
        let table = p.cost_table(6);
        assert!(table.problem(ProblemId(0)).mem_mb > 0.0);
        assert!(table.problem(ProblemId(2)).mem_mb > table.problem(ProblemId(0)).mem_mb);
    }

    #[test]
    fn single_server_platform() {
        let p = SyntheticPlatform {
            n_servers: 1,
            ..Default::default()
        };
        assert_eq!(p.servers(7).len(), 1);
        assert_eq!(p.cost_table(7).n_servers(), 1);
    }

    /// Regression: `n_servers == 1` used to interpolate `i / (n − 1)` =
    /// 0/0 = NaN into the speed ladder. The single server must sit at the
    /// fast end with finite speed and costs.
    #[test]
    fn single_server_costs_are_finite() {
        let p = SyntheticPlatform {
            n_servers: 1,
            ..Default::default()
        };
        let server = &p.servers(7)[0];
        assert!(server.cpu_mhz.is_finite() && server.cpu_mhz > 0.0);
        assert!((server.cpu_mhz - 1000.0 * p.heterogeneity).abs() < 1e-9);
        let table = p.cost_table(7);
        for prob in 0..table.n_problems() {
            let c = table.costs(ProblemId(prob as u32), ServerId(0)).unwrap();
            assert!(c.compute.is_finite() && c.compute > 0.0);
            assert!(c.input.is_finite() && c.output.is_finite());
        }
    }

    /// Regression: `n_problems == 1` used to hit the same 0/0 in the cost
    /// spread interpolation. The lone problem must cost exactly
    /// `base_cost` on the fastest server, with every entry finite.
    #[test]
    fn single_problem_costs_are_finite() {
        let p = SyntheticPlatform {
            n_problems: 1,
            mem_fraction: 0.25,
            ..Default::default()
        };
        let table = p.cost_table(8);
        assert_eq!(table.n_problems(), 1);
        assert!(table.problem(ProblemId(0)).mem_mb.is_finite());
        for s in 0..table.n_servers() {
            let c = table.costs(ProblemId(0), ServerId(s as u32)).unwrap();
            assert!(c.compute.is_finite() && c.compute > 0.0);
        }
        let fast = table.costs(ProblemId(0), ServerId(0)).unwrap().compute;
        assert!((fast - p.base_cost).abs() < 1e-9, "fast cost = {fast}");
    }

    /// The fully degenerate 1×1 farm must still build a usable table.
    #[test]
    fn one_by_one_platform_is_well_formed() {
        let p = SyntheticPlatform {
            n_servers: 1,
            n_problems: 1,
            ..Default::default()
        };
        let table = p.cost_table(9);
        let c = table.costs(ProblemId(0), ServerId(0)).unwrap();
        assert!((c.compute - p.base_cost).abs() < 1e-9);
        assert!(c.input.is_finite() && c.output.is_finite());
    }

    fn burst_spec() -> BurstArrivals {
        BurstArrivals {
            n_tasks: 4000,
            base_rate: 0.02,
            peak_rate: 0.5,
            period: 600.0,
            n_problems: 3,
        }
    }

    #[test]
    fn burst_is_deterministic_and_well_formed() {
        let spec = burst_spec();
        let a = spec.generate(11);
        let b = spec.generate(11);
        assert_eq!(a, b);
        assert_ne!(a, spec.generate(12));
        assert_eq!(a.len(), 4000);
        for (i, w) in a.windows(2).enumerate() {
            assert!(w[1].arrival >= w[0].arrival, "disorder at {i}");
            assert_eq!(w[1].id.0, w[0].id.0 + 1);
        }
        assert!(a.iter().all(|t| t.problem.index() < 3));
    }

    #[test]
    fn burst_mean_rate_matches_analytic() {
        let spec = burst_spec();
        let tasks = spec.generate(5);
        let span = tasks.last().unwrap().arrival.as_secs();
        let empirical = tasks.len() as f64 / span;
        let expected = spec.mean_rate();
        assert!(
            (empirical - expected).abs() < 0.15 * expected,
            "empirical {empirical} vs expected {expected}"
        );
    }

    /// Thinning must actually modulate density: windows around rate crests
    /// hold far more arrivals than windows around troughs.
    #[test]
    fn burst_crests_are_denser_than_troughs() {
        let spec = burst_spec();
        let tasks = spec.generate(9);
        // λ peaks at t ≡ period/4 (sin = 1) and bottoms at t ≡ 3·period/4.
        let (mut crest, mut trough) = (0usize, 0usize);
        for t in &tasks {
            let phase = t.arrival.as_secs().rem_euclid(spec.period) / spec.period;
            if (0.15..0.35).contains(&phase) {
                crest += 1;
            } else if (0.65..0.85).contains(&phase) {
                trough += 1;
            }
        }
        assert!(
            crest > 5 * trough.max(1),
            "burst structure missing: crest={crest}, trough={trough}"
        );
    }

    /// base == peak degenerates to the homogeneous process: every
    /// candidate accepted, mean gap = 1/rate.
    #[test]
    fn flat_burst_is_homogeneous_poisson() {
        let spec = BurstArrivals {
            n_tasks: 3000,
            base_rate: 0.1,
            peak_rate: 0.1,
            period: 100.0,
            n_problems: 2,
        };
        let tasks = spec.generate(3);
        let span = tasks.last().unwrap().arrival.as_secs();
        let mean_gap = span / tasks.len() as f64;
        assert!((mean_gap - 10.0).abs() < 1.0, "mean gap = {mean_gap}");
    }

    #[test]
    fn burst_type_sequence_independent_of_rates() {
        let slow = burst_spec().generate(7);
        let fast = BurstArrivals {
            base_rate: 0.2,
            peak_rate: 2.0,
            ..burst_spec()
        }
        .generate(7);
        for (a, b) in slow.iter().zip(&fast) {
            assert_eq!(a.problem, b.problem);
        }
    }

    #[test]
    #[should_panic(expected = "base_rate")]
    fn burst_rejects_inverted_rates() {
        BurstArrivals {
            base_rate: 1.0,
            peak_rate: 0.5,
            ..burst_spec()
        }
        .generate(0);
    }
}

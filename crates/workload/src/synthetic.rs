//! Parametric platforms and workloads for sweeps and ablations.
//!
//! The paper evaluates on one fixed testbed; the ablation benches vary
//! heterogeneity, server count and task granularity to probe *where* the
//! HTM-based heuristics win. [`SyntheticPlatform`] builds a platform and
//! matching cost table from a handful of knobs.

use cas_platform::{CostTable, PhaseCosts, Problem, ServerSpec};
use cas_sim::{RngStream, StreamKind};

/// Knobs for a synthetic platform + workload family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticPlatform {
    /// Number of servers.
    pub n_servers: usize,
    /// Speed of the fastest server relative to the slowest (1.0 =
    /// homogeneous).
    pub heterogeneity: f64,
    /// Number of problem types.
    pub n_problems: usize,
    /// Compute cost of the cheapest problem on the *fastest* server,
    /// seconds.
    pub base_cost: f64,
    /// Cost of the most expensive problem relative to the cheapest.
    pub cost_spread: f64,
    /// Transfer cost as a fraction of compute cost (0 = compute-only).
    pub comm_fraction: f64,
    /// Memory need per task as a fraction of the smallest server's RAM
    /// (0 = memory-free, like waste-cpu).
    pub mem_fraction: f64,
}

impl Default for SyntheticPlatform {
    fn default() -> Self {
        SyntheticPlatform {
            n_servers: 4,
            heterogeneity: 5.0,
            n_problems: 3,
            base_cost: 15.0,
            cost_spread: 3.0,
            comm_fraction: 0.02,
            mem_fraction: 0.0,
        }
    }
}

impl SyntheticPlatform {
    /// Builds server specs: speeds geometrically interpolated between the
    /// slowest and fastest; RAM 256 MB + jitter, swap = RAM.
    pub fn servers(&self, seed: u64) -> Vec<ServerSpec> {
        assert!(self.n_servers >= 1);
        let mut rng = RngStream::derive(seed, StreamKind::Custom(0xA0));
        (0..self.n_servers)
            .map(|i| {
                let frac = if self.n_servers == 1 {
                    0.0
                } else {
                    i as f64 / (self.n_servers - 1) as f64
                };
                // Server 0 is fastest (speed factor heterogeneity), the
                // last is slowest (factor 1).
                let speed = self.heterogeneity.powf(1.0 - frac);
                let ram = 256.0 * rng.uniform(0.9, 1.1);
                ServerSpec::new(format!("synth-{i}"), 1000.0 * speed, ram, ram)
            })
            .collect()
    }

    /// Builds the matching cost table. Problem `p`'s cost on the fastest
    /// server interpolates geometrically from `base_cost` to
    /// `base_cost * cost_spread`; slower servers scale it by their relative
    /// slowness.
    pub fn cost_table(&self, seed: u64) -> CostTable {
        let servers = self.servers(seed);
        let fastest = servers.iter().map(|s| s.cpu_mhz).fold(f64::MIN, f64::max);
        let min_ram = servers.iter().map(|s| s.ram_mb).fold(f64::MAX, f64::min);
        let mut table = CostTable::new(servers.len());
        for p in 0..self.n_problems {
            let frac = if self.n_problems == 1 {
                0.0
            } else {
                p as f64 / (self.n_problems - 1) as f64
            };
            let fast_cost = self.base_cost * self.cost_spread.powf(frac);
            let mem = self.mem_fraction * min_ram * (1.0 + frac);
            let data_mb = fast_cost * self.comm_fraction * 10.0;
            let problem = Problem::new(format!("synth-p{p}"), data_mb, data_mb / 2.0, mem);
            let row = servers
                .iter()
                .map(|s| {
                    let slowdown = fastest / s.cpu_mhz;
                    let compute = fast_cost * slowdown;
                    let comm = fast_cost * self.comm_fraction;
                    Some(PhaseCosts::new(comm, compute, comm / 2.0))
                })
                .collect();
            table.add_problem(problem, row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::{ProblemId, ServerId};

    #[test]
    fn default_builds_consistent_platform() {
        let p = SyntheticPlatform::default();
        let servers = p.servers(1);
        let table = p.cost_table(1);
        assert_eq!(servers.len(), 4);
        assert_eq!(table.n_servers(), 4);
        assert_eq!(table.n_problems(), 3);
    }

    #[test]
    fn heterogeneity_ratio_respected() {
        let p = SyntheticPlatform {
            heterogeneity: 8.0,
            ..Default::default()
        };
        let table = p.cost_table(2);
        let fast = table.costs(ProblemId(0), ServerId(0)).unwrap().compute;
        let slow = table.costs(ProblemId(0), ServerId(3)).unwrap().compute;
        assert!((slow / fast - 8.0).abs() < 1e-9, "ratio = {}", slow / fast);
    }

    #[test]
    fn homogeneous_platform_has_equal_costs() {
        let p = SyntheticPlatform {
            heterogeneity: 1.0,
            ..Default::default()
        };
        let table = p.cost_table(3);
        let costs: Vec<f64> = (0..4)
            .map(|s| table.costs(ProblemId(1), ServerId(s)).unwrap().compute)
            .collect();
        for c in &costs[1..] {
            assert!((c - costs[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_spread_across_problems() {
        let p = SyntheticPlatform {
            cost_spread: 4.0,
            ..Default::default()
        };
        let table = p.cost_table(4);
        let cheap = table.costs(ProblemId(0), ServerId(0)).unwrap().compute;
        let dear = table.costs(ProblemId(2), ServerId(0)).unwrap().compute;
        assert!((dear / cheap - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_comm_fraction_is_compute_only() {
        let p = SyntheticPlatform {
            comm_fraction: 0.0,
            ..Default::default()
        };
        let table = p.cost_table(5);
        let c = table.costs(ProblemId(0), ServerId(0)).unwrap();
        assert_eq!(c.input, 0.0);
        assert_eq!(c.output, 0.0);
    }

    #[test]
    fn mem_fraction_populates_memory_needs() {
        let p = SyntheticPlatform {
            mem_fraction: 0.5,
            ..Default::default()
        };
        let table = p.cost_table(6);
        assert!(table.problem(ProblemId(0)).mem_mb > 0.0);
        assert!(table.problem(ProblemId(2)).mem_mb > table.problem(ProblemId(0)).mem_mb);
    }

    #[test]
    fn single_server_platform() {
        let p = SyntheticPlatform {
            n_servers: 1,
            ..Default::default()
        };
        assert_eq!(p.servers(7).len(), 1);
        assert_eq!(p.cost_table(7).n_servers(), 1);
    }
}

//! Farm lifecycle fault injection: deterministic MTBF/MTTR churn.
//!
//! Production farms are not frozen at build time — servers crash, drain
//! and come back. This module is the workload-side half of the lifecycle
//! subsystem: a per-server renewal process that draws uptimes (time to
//! the next crash) and downtimes (time to repair) from exponential
//! distributions with configurable means (MTBF / MTTR), each server on
//! its **own** [`RngStream`] derived from the churn seed.
//!
//! Two properties the engine relies on:
//!
//! * **Determinism** — the fault schedule is a pure function of
//!   `(churn_seed, server)`; the same configuration replays the same
//!   crashes on any host, so crash-retraction equivalence can be proven
//!   differentially against a reference agent under *the same* schedule.
//! * **Stream isolation** — churn draws never touch the arrival,
//!   noise or tie-break streams (each server's stream is keyed
//!   `Custom(CHURN_STREAM_TAG | server)`), so a crash-free configuration
//!   (`mtbf = ∞`) is bit-identical to a frozen farm: no stream is even
//!   created.

use cas_platform::ServerId;
use cas_sim::dist::{Exponential, Sample};
use cas_sim::{RngStream, StreamKind};

/// Tag bit that keys churn streams inside [`StreamKind::Custom`], keeping
/// them disjoint from any other custom stream in the workspace.
pub const CHURN_STREAM_TAG: u32 = 0x4000_0000;

/// Churn configuration: mean time between failures, mean time to repair,
/// and the seed of the fault schedule.
///
/// `mtbf = f64::INFINITY` (the default) disables churn entirely —
/// [`ChurnModel::process`] returns `None` and no RNG stream is derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Mean uptime between a server coming online and its next crash,
    /// seconds. Infinite disables churn.
    pub mtbf: f64,
    /// Mean downtime between a crash and the server rejoining, seconds.
    pub mttr: f64,
    /// Root seed of the fault schedule (independent of the workload seed
    /// so the same metatask can be replayed under different schedules).
    pub seed: u64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            mtbf: f64::INFINITY,
            mttr: 60.0,
            seed: 0,
        }
    }
}

impl ChurnModel {
    /// Whether this configuration injects any faults at all.
    pub fn enabled(&self) -> bool {
        self.mtbf.is_finite() && self.mtbf > 0.0 && self.mttr > 0.0 && self.mttr.is_finite()
    }

    /// Builds the per-server fault process, or `None` when churn is
    /// disabled (so a crash-free run provably derives no churn streams).
    pub fn process(&self, n_servers: usize) -> Option<ChurnProcess> {
        if !self.enabled() {
            return None;
        }
        Some(ChurnProcess {
            up: Exponential::new(self.mtbf),
            down: Exponential::new(self.mttr),
            streams: (0..n_servers as u32)
                .map(|s| RngStream::derive(self.seed, StreamKind::Custom(CHURN_STREAM_TAG | s)))
                .collect(),
        })
    }
}

/// The instantiated fault schedule: one exponential renewal process per
/// server, each on its own stream.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    up: Exponential,
    down: Exponential,
    streams: Vec<RngStream>,
}

impl ChurnProcess {
    /// Draws the time until `server`'s next crash, measured from the
    /// instant it (re)joined.
    pub fn next_uptime(&mut self, server: ServerId) -> f64 {
        let stream = &mut self.streams[server.index()];
        self.up.sample(stream)
    }

    /// Draws how long `server` stays down after a crash.
    pub fn next_downtime(&mut self, server: ServerId) -> f64 {
        let stream = &mut self.streams[server.index()];
        self.down.sample(stream)
    }

    /// Number of servers the schedule covers.
    pub fn n_servers(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_mtbf_disables_churn() {
        let m = ChurnModel::default();
        assert!(!m.enabled());
        assert!(m.process(16).is_none());
        let m = ChurnModel {
            mtbf: 0.0,
            ..ChurnModel::default()
        };
        assert!(!m.enabled());
        let m = ChurnModel {
            mtbf: 100.0,
            mttr: 0.0,
            seed: 1,
        };
        assert!(!m.enabled(), "zero repair time is degenerate");
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let m = ChurnModel {
            mtbf: 400.0,
            mttr: 60.0,
            seed: 7,
        };
        let mut a = m.process(4).unwrap();
        let mut b = m.process(4).unwrap();
        for s in 0..4u32 {
            for _ in 0..32 {
                assert_eq!(
                    a.next_uptime(ServerId(s)).to_bits(),
                    b.next_uptime(ServerId(s)).to_bits()
                );
                assert_eq!(
                    a.next_downtime(ServerId(s)).to_bits(),
                    b.next_downtime(ServerId(s)).to_bits()
                );
            }
        }
    }

    #[test]
    fn servers_have_independent_streams() {
        let m = ChurnModel {
            mtbf: 400.0,
            mttr: 60.0,
            seed: 7,
        };
        let mut p = m.process(2).unwrap();
        let same = (0..64)
            .filter(|_| {
                p.next_uptime(ServerId(0)).to_bits() == p.next_uptime(ServerId(1)).to_bits()
            })
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn draws_converge_to_configured_means() {
        let m = ChurnModel {
            mtbf: 400.0,
            mttr: 60.0,
            seed: 0xC0FFEE,
        };
        let mut p = m.process(1).unwrap();
        let n = 50_000;
        let up: f64 = (0..n).map(|_| p.next_uptime(ServerId(0))).sum::<f64>() / n as f64;
        let down: f64 = (0..n).map(|_| p.next_downtime(ServerId(0))).sum::<f64>() / n as f64;
        assert!((up - 400.0).abs() < 10.0, "mean uptime {up}");
        assert!((down - 60.0).abs() < 2.0, "mean downtime {down}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut a = ChurnModel {
            mtbf: 100.0,
            mttr: 10.0,
            seed: 1,
        }
        .process(1)
        .unwrap();
        let mut b = ChurnModel {
            mtbf: 100.0,
            mttr: 10.0,
            seed: 2,
        }
        .process(1)
        .unwrap();
        let same = (0..64)
            .filter(|_| {
                a.next_uptime(ServerId(0)).to_bits() == b.next_uptime(ServerId(0)).to_bits()
            })
            .count();
        assert_eq!(same, 0);
    }
}

//! Trace-driven production workloads (ROADMAP open item 2).
//!
//! Every other workload in this crate is synthetic; this module replays
//! *request traces* — per-user arrival streams with measured service
//! demands — through the unchanged decision pipeline. The shape follows
//! dslab-faas's trace layer: an object-safe [`Trace`] trait yielding
//! `(arrival, demand, user/app id)` tuples, with two sources:
//!
//! * [`CsvTrace`] — an ingester for Azure-functions-style CSV files
//!   (`arrival_s,user,duration_s` rows), with typed [`TraceError`]s so
//!   malformed or empty files fail loudly instead of poisoning a campaign;
//! * [`FittedTraceSpec`] — a generator that draws per-app inter-arrival
//!   and duration distributions deterministically from a seed (dedicated
//!   RNG stream pair per app), for trace-shaped load at any scale.
//!
//! [`TraceWorkload::compile`] turns any trace into the engine's native
//! inputs — a demand-ladder cost table over a synthetic-style farm, the
//! arrival-sorted [`TaskInstance`] list, and the per-task user classes the
//! SLO layer reports on. When the trace holds at most
//! [`TraceWorkload::max_problems`] distinct durations the ladder is
//! *exact*: a CSV written from a [`MetataskSpec`](crate::MetataskSpec)
//! run compiles back to bit-identical task instances, which is what lets
//! the equivalence tests pin the trace path against the generator path.

use cas_platform::{CostTable, PhaseCosts, Problem, ProblemId, ServerSpec, TaskId, TaskInstance};
use cas_sim::dist::{Exponential, Sample};
use cas_sim::{RngStream, SimTime, StreamKind};
use std::collections::VecDeque;

/// One trace row: a request from `user` arriving at `arrival_s` demanding
/// `duration_s` seconds of service on the reference (fastest) server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Arrival time, seconds from campaign start (≥ 0, finite).
    pub arrival_s: f64,
    /// User/app class id.
    pub user: u32,
    /// Service demand on the reference server, seconds (> 0, finite).
    pub duration_s: f64,
}

/// An object-safe stream of trace rows. Sources need not be sorted;
/// [`TraceWorkload::compile`] orders by arrival (stable on ties).
pub trait Trace {
    /// The next row, or `None` when the trace is exhausted.
    fn next_entry(&mut self) -> Option<TraceEntry>;

    /// Number of remaining rows, when known (sizing hint only).
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// Why a trace could not be ingested or compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace held no rows — a zero-task campaign is not well-defined
    /// (there is nothing to schedule and every per-task aggregate would
    /// divide by zero), so ingestion reports it as a typed error instead.
    Empty,
    /// A row failed to parse or held a non-finite / out-of-range field.
    Parse {
        /// 1-based line number in the source file.
        line: usize,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace holds no rows"),
            TraceError::Parse { line, what } => write!(f, "trace line {line}: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A CSV-ingested trace: `arrival_s,user,duration_s` per row. Blank lines
/// and `#` comments are skipped, as is an optional header row (a first
/// data line whose first field is not a number).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTrace {
    entries: VecDeque<TraceEntry>,
}

impl CsvTrace {
    /// Parses CSV text. Returns `Ok` even for zero data rows — emptiness
    /// is reported by [`TraceWorkload::compile`] (typed, [`TraceError::Empty`])
    /// so callers that only want to inspect a file can still do so.
    pub fn parse(text: &str) -> Result<CsvTrace, TraceError> {
        let mut entries = VecDeque::new();
        let mut saw_data_line = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if !saw_data_line && fields[0].parse::<f64>().is_err() {
                // Header row ("arrival_s,user,duration_s").
                saw_data_line = true;
                continue;
            }
            saw_data_line = true;
            if fields.len() != 3 {
                return Err(TraceError::Parse {
                    line: i + 1,
                    what: format!(
                        "expected 3 fields (arrival_s,user,duration_s), got {}",
                        fields.len()
                    ),
                });
            }
            let field = |j: usize, name: &str| -> Result<f64, TraceError> {
                fields[j].parse::<f64>().map_err(|_| TraceError::Parse {
                    line: i + 1,
                    what: format!("{name} `{}` is not a number", fields[j]),
                })
            };
            let arrival_s = field(0, "arrival")?;
            let user = fields[1].parse::<u32>().map_err(|_| TraceError::Parse {
                line: i + 1,
                what: format!("user `{}` is not a u32", fields[1]),
            })?;
            let duration_s = field(2, "duration")?;
            if !arrival_s.is_finite() || arrival_s < 0.0 {
                return Err(TraceError::Parse {
                    line: i + 1,
                    what: format!("arrival {arrival_s} must be finite and >= 0"),
                });
            }
            if !duration_s.is_finite() || duration_s <= 0.0 {
                return Err(TraceError::Parse {
                    line: i + 1,
                    what: format!("duration {duration_s} must be finite and > 0"),
                });
            }
            entries.push_back(TraceEntry {
                arrival_s,
                user,
                duration_s,
            });
        }
        Ok(CsvTrace { entries })
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the trace holds no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Trace for CsvTrace {
    fn next_entry(&mut self) -> Option<TraceEntry> {
        self.entries.pop_front()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }
}

/// One application's fitted load profile: how often it submits and how
/// much service it demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// User/app class id carried into the per-class SLOs.
    pub user: u32,
    /// Number of requests this app emits.
    pub n_tasks: usize,
    /// Mean inter-arrival gap, seconds (exponential).
    pub mean_gap_s: f64,
    /// Mean service demand on the reference server, seconds (exponential).
    pub mean_duration_s: f64,
}

/// A fitted multi-app trace generator. Each app draws its inter-arrival
/// gaps and durations from its *own* pair of RNG streams derived from the
/// seed and the app's position, so the whole trace is a pure function of
/// `(spec, seed)` and adding an app never perturbs the others' draws.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedTraceSpec {
    /// Per-app profiles; order fixes the RNG stream assignment.
    pub apps: Vec<AppProfile>,
}

/// RNG stream tag base for fitted traces (two streams per app).
const FITTED_STREAM_BASE: u32 = 0xB000_0000;

impl FittedTraceSpec {
    /// Generates the merged trace deterministically from `seed`: per-app
    /// arrival sequences, merged by arrival (stable: earlier apps first on
    /// exact ties).
    pub fn generate(&self, seed: u64) -> FittedTrace {
        let mut entries: Vec<TraceEntry> = Vec::new();
        for (a, app) in self.apps.iter().enumerate() {
            assert!(app.mean_gap_s > 0.0, "need a positive mean gap");
            assert!(app.mean_duration_s > 0.0, "need a positive mean duration");
            let tag = FITTED_STREAM_BASE + 2 * a as u32;
            let mut gap_rng = RngStream::derive(seed, StreamKind::Custom(tag));
            let mut dur_rng = RngStream::derive(seed, StreamKind::Custom(tag + 1));
            let gap_dist = Exponential::new(app.mean_gap_s);
            let dur_dist = Exponential::new(app.mean_duration_s);
            let mut clock = 0.0f64;
            for _ in 0..app.n_tasks {
                clock += gap_dist.sample(&mut gap_rng);
                // Floor tiny draws: durations must be positive for stretch.
                let duration_s = dur_dist.sample(&mut dur_rng).max(1e-6);
                entries.push(TraceEntry {
                    arrival_s: clock,
                    user: app.user,
                    duration_s,
                });
            }
        }
        entries.sort_by(|x, y| {
            x.arrival_s
                .partial_cmp(&y.arrival_s)
                .expect("fitted arrivals are finite")
        });
        FittedTrace {
            entries: entries.into(),
        }
    }
}

/// A generated fitted trace (see [`FittedTraceSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FittedTrace {
    entries: VecDeque<TraceEntry>,
}

impl Trace for FittedTrace {
    fn next_entry(&mut self) -> Option<TraceEntry> {
        self.entries.pop_front()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }
}

/// Knobs for compiling a trace into engine inputs: the farm shape and the
/// demand-ladder resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceWorkload {
    /// Number of servers in the compiled farm.
    pub n_servers: usize,
    /// Speed of the fastest server relative to the slowest
    /// (matches [`SyntheticPlatform`](crate::synthetic::SyntheticPlatform)).
    pub heterogeneity: f64,
    /// Transfer cost as a fraction of compute cost.
    pub comm_fraction: f64,
    /// Memory need per task as a fraction of the smallest server's RAM.
    pub mem_fraction: f64,
    /// Demand-ladder cap: at most this many distinct problem types. Traces
    /// with more distinct durations are quantile-bucketed; traces with at
    /// most this many keep every duration *exactly* (the ladder-exact case
    /// the equivalence tests rely on).
    pub max_problems: usize,
}

impl Default for TraceWorkload {
    fn default() -> Self {
        TraceWorkload {
            n_servers: 4,
            heterogeneity: 5.0,
            comm_fraction: 0.02,
            mem_fraction: 0.0,
            max_problems: 8,
        }
    }
}

/// Engine-ready output of [`TraceWorkload::compile`].
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    /// The demand-ladder cost table.
    pub costs: CostTable,
    /// The compiled farm.
    pub servers: Vec<ServerSpec>,
    /// Arrival-sorted task instances (ids reassigned 0..n in that order).
    pub tasks: Vec<TaskInstance>,
    /// `users[i]` is the user class of `tasks[i]`.
    pub users: Vec<u32>,
    /// The ladder: problem `p`'s service demand on the fastest server.
    pub ladder: Vec<f64>,
}

impl TraceWorkload {
    /// Builds the farm and the cost table for a given demand ladder:
    /// ladder value `p` becomes problem `p`'s compute cost on the fastest
    /// server, scaled by each server's relative slowness — the exact
    /// arithmetic of
    /// [`SyntheticPlatform::cost_table`](crate::synthetic::SyntheticPlatform::cost_table)
    /// with the ladder standing in for the geometric cost spread.
    pub fn farm(&self, ladder: &[f64], seed: u64) -> (Vec<ServerSpec>, CostTable) {
        let servers = crate::synthetic::SyntheticPlatform {
            n_servers: self.n_servers,
            heterogeneity: self.heterogeneity,
            ..Default::default()
        }
        .servers(seed);
        let fastest = servers.iter().map(|s| s.cpu_mhz).fold(f64::MIN, f64::max);
        let min_ram = servers.iter().map(|s| s.ram_mb).fold(f64::MAX, f64::min);
        let mut table = CostTable::new(servers.len());
        for (p, &fast_cost) in ladder.iter().enumerate() {
            let frac = if ladder.len() == 1 {
                0.0
            } else {
                p as f64 / (ladder.len() - 1) as f64
            };
            let mem = self.mem_fraction * min_ram * (1.0 + frac);
            let data_mb = fast_cost * self.comm_fraction * 10.0;
            let problem = Problem::new(format!("trace-p{p}"), data_mb, data_mb / 2.0, mem);
            let row = servers
                .iter()
                .map(|s| {
                    let slowdown = fastest / s.cpu_mhz;
                    let compute = fast_cost * slowdown;
                    let comm = fast_cost * self.comm_fraction;
                    Some(PhaseCosts::new(comm, compute, comm / 2.0))
                })
                .collect();
            table.add_problem(problem, row);
        }
        (servers, table)
    }

    /// Compiles a trace into engine inputs. Returns
    /// [`TraceError::Empty`] for a zero-row trace.
    pub fn compile(&self, trace: &mut dyn Trace, seed: u64) -> Result<CompiledTrace, TraceError> {
        assert!(self.max_problems >= 1, "need at least one ladder rung");
        let mut entries = Vec::with_capacity(trace.len_hint().unwrap_or(0));
        while let Some(e) = trace.next_entry() {
            entries.push(e);
        }
        if entries.is_empty() {
            return Err(TraceError::Empty);
        }
        // Stable by arrival: exact ties keep source order.
        entries.sort_by(|x, y| {
            x.arrival_s
                .partial_cmp(&y.arrival_s)
                .expect("trace arrivals are finite")
        });

        let (ladder, edges) = build_ladder(&entries, self.max_problems);
        let (servers, costs) = self.farm(&ladder, seed);

        let mut tasks = Vec::with_capacity(entries.len());
        let mut users = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let p = edges
                .iter()
                .position(|&edge| e.duration_s <= edge)
                .expect("every duration falls under the top ladder edge");
            tasks.push(TaskInstance::new(
                TaskId(i as u64),
                ProblemId(p as u32),
                SimTime::from_secs(e.arrival_s),
            ));
            users.push(e.user);
        }
        Ok(CompiledTrace {
            costs,
            servers,
            tasks,
            users,
            ladder,
        })
    }
}

/// Builds the demand ladder: `(rung costs ascending, upper edges)`. A
/// duration maps to the first rung whose edge is ≥ it. With at most
/// `max_problems` distinct durations the ladder is those durations exactly;
/// otherwise the sorted multiset is cut into `max_problems` near-equal
/// quantile chunks, each rung costing the chunk mean.
fn build_ladder(entries: &[TraceEntry], max_problems: usize) -> (Vec<f64>, Vec<f64>) {
    let mut sorted: Vec<f64> = entries.iter().map(|e| e.duration_s).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("trace durations are finite"));
    let mut distinct = sorted.clone();
    distinct.dedup();
    if distinct.len() <= max_problems {
        return (distinct.clone(), distinct);
    }
    let n = sorted.len();
    let mut ladder = Vec::with_capacity(max_problems);
    let mut edges = Vec::with_capacity(max_problems);
    for k in 0..max_problems {
        let lo = k * n / max_problems;
        let hi = (k + 1) * n / max_problems;
        let chunk = &sorted[lo..hi];
        ladder.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
        edges.push(chunk[chunk.len() - 1]);
    }
    // The top edge must cover the maximum exactly.
    *edges.last_mut().expect("max_problems >= 1") = sorted[n - 1];
    (ladder, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metatask::MetataskSpec;
    use std::fmt::Write as _;

    fn spec() -> FittedTraceSpec {
        FittedTraceSpec {
            apps: vec![
                AppProfile {
                    user: 0,
                    n_tasks: 40,
                    mean_gap_s: 25.0,
                    mean_duration_s: 20.0,
                },
                AppProfile {
                    user: 3,
                    n_tasks: 25,
                    mean_gap_s: 40.0,
                    mean_duration_s: 60.0,
                },
            ],
        }
    }

    #[test]
    fn csv_parses_header_comments_and_rows() {
        let text = "# golden trace\narrival_s,user,duration_s\n0.5, 1, 10.0\n\n2.25,0,3.5\n";
        let trace = CsvTrace::parse(text).unwrap();
        assert_eq!(trace.len(), 2);
        let mut t = trace;
        assert_eq!(
            t.next_entry(),
            Some(TraceEntry {
                arrival_s: 0.5,
                user: 1,
                duration_s: 10.0
            })
        );
        assert_eq!(
            t.next_entry(),
            Some(TraceEntry {
                arrival_s: 2.25,
                user: 0,
                duration_s: 3.5
            })
        );
        assert_eq!(t.next_entry(), None);
    }

    #[test]
    fn csv_errors_carry_line_numbers() {
        let err = CsvTrace::parse("0.0,1,5.0\n1.0,oops,5.0\n").unwrap_err();
        assert_eq!(
            err,
            TraceError::Parse {
                line: 2,
                what: "user `oops` is not a u32".into()
            }
        );
        let err = CsvTrace::parse("0.0,1\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
        let err = CsvTrace::parse("3.0,1,-2.0\n").unwrap_err();
        assert!(err.to_string().contains("duration"));
        let err = CsvTrace::parse("-1.0,1,2.0\n").unwrap_err();
        assert!(err.to_string().contains("arrival"));
    }

    #[test]
    fn empty_trace_is_a_typed_error_at_compile() {
        let parsed = CsvTrace::parse("# nothing here\n").unwrap();
        assert!(parsed.is_empty());
        let mut t = parsed;
        let err = TraceWorkload::default().compile(&mut t, 1).unwrap_err();
        assert_eq!(err, TraceError::Empty);
        assert_eq!(err.to_string(), "trace holds no rows");
    }

    #[test]
    fn fitted_trace_is_deterministic_and_sorted() {
        let a = spec().generate(11);
        let b = spec().generate(11);
        assert_eq!(a, b);
        assert_ne!(a, spec().generate(12));
        let mut t = a;
        let mut prev = 0.0;
        let mut by_user = [0usize; 4];
        while let Some(e) = t.next_entry() {
            assert!(e.arrival_s >= prev, "arrivals must be sorted");
            assert!(e.duration_s > 0.0);
            prev = e.arrival_s;
            by_user[e.user as usize] += 1;
        }
        assert_eq!(by_user[0], 40);
        assert_eq!(by_user[3], 25);
    }

    #[test]
    fn adding_an_app_never_perturbs_earlier_apps() {
        let base = spec().generate(5);
        let mut wider = spec();
        wider.apps.push(AppProfile {
            user: 9,
            n_tasks: 10,
            mean_gap_s: 10.0,
            mean_duration_s: 5.0,
        });
        let mut wide = wider.generate(5);
        let mut base_entries = Vec::new();
        let mut b = base;
        while let Some(e) = b.next_entry() {
            base_entries.push(e);
        }
        let mut wide_entries = Vec::new();
        while let Some(e) = wide.next_entry() {
            if e.user != 9 {
                wide_entries.push(e);
            }
        }
        assert_eq!(base_entries, wide_entries);
    }

    #[test]
    fn compile_is_deterministic_and_aligned() {
        let mut t1 = spec().generate(7);
        let mut t2 = spec().generate(7);
        let tw = TraceWorkload::default();
        let a = tw.compile(&mut t1, 7).unwrap();
        let b = tw.compile(&mut t2, 7).unwrap();
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.users, b.users);
        assert_eq!(a.ladder, b.ladder);
        assert_eq!(a.tasks.len(), 65);
        assert_eq!(a.users.len(), a.tasks.len());
        for (i, w) in a.tasks.windows(2).enumerate() {
            assert!(w[1].arrival >= w[0].arrival, "disorder at {i}");
            assert_eq!(w[1].id.0, w[0].id.0 + 1);
        }
        assert_eq!(a.servers.len(), 4);
        assert_eq!(a.costs.n_servers(), 4);
        assert_eq!(a.costs.n_problems(), a.ladder.len());
    }

    #[test]
    fn wide_duration_spread_buckets_to_max_problems() {
        let mut t = spec().generate(3);
        let tw = TraceWorkload {
            max_problems: 4,
            ..Default::default()
        };
        let c = tw.compile(&mut t, 3).unwrap();
        assert_eq!(c.ladder.len(), 4);
        for w in c.ladder.windows(2) {
            assert!(w[1] > w[0], "ladder must ascend: {:?}", c.ladder);
        }
        // Every problem id in range; cheap tasks land on low rungs.
        assert!(c.tasks.iter().all(|t| t.problem.index() < 4));
    }

    #[test]
    fn ladder_exact_when_few_distinct_durations() {
        let text = "0.0,0,20.0\n5.0,1,10.0\n9.0,0,30.0\n12.0,1,10.0\n";
        let mut t = CsvTrace::parse(text).unwrap();
        let c = TraceWorkload::default().compile(&mut t, 1).unwrap();
        assert_eq!(c.ladder, vec![10.0, 20.0, 30.0]);
        let problems: Vec<u32> = c.tasks.iter().map(|t| t.problem.0).collect();
        assert_eq!(problems, vec![1, 0, 2, 0]);
        assert_eq!(c.users, vec![0, 1, 0, 1]);
    }

    /// The acceptance round-trip: a CSV written from a metatask compiles
    /// back to bit-identical task instances over the same ladder.
    #[test]
    fn metatask_csv_roundtrip_is_bit_identical() {
        let seed = 42;
        let ms = MetataskSpec {
            n_tasks: 60,
            mean_gap: 25.0,
            gaps: crate::GapDistribution::Exponential,
            n_problems: 3,
        };
        let tasks = ms.generate(seed);
        let ladder = [15.0, 26.0, 45.0];
        let mut csv = String::from("arrival_s,user,duration_s\n");
        for t in &tasks {
            writeln!(
                csv,
                "{:?},0,{:?}",
                t.arrival.as_secs(),
                ladder[t.problem.index()]
            )
            .unwrap();
        }
        let mut trace = CsvTrace::parse(&csv).unwrap();
        let c = TraceWorkload::default().compile(&mut trace, seed).unwrap();
        assert_eq!(c.ladder.to_vec(), ladder.to_vec());
        assert_eq!(c.tasks, tasks);
        assert!(c.users.iter().all(|&u| u == 0));
    }

    #[test]
    fn trace_trait_is_object_safe() {
        let mut boxed: Box<dyn Trace> = Box::new(spec().generate(1));
        assert!(boxed.len_hint().unwrap() > 0);
        assert!(boxed.next_entry().is_some());
    }
}

//! The testbed of Table 2.
//!
//! Six server machines scattered around the LORIA laboratory, plus the
//! agent (xrousse) and client (zanzibar) hosts. Servers were dedicated to
//! the experiments; network links were not.

use cas_platform::ServerSpec;

/// One machine row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Host name.
    pub name: &'static str,
    /// Processor description.
    pub processor: &'static str,
    /// Clock speed in MHz.
    pub mhz: f64,
    /// RAM in MB.
    pub ram_mb: f64,
    /// Swap in MB.
    pub swap_mb: f64,
}

impl Machine {
    /// Converts to a platform server spec.
    pub fn spec(&self) -> ServerSpec {
        ServerSpec::new(self.name, self.mhz, self.ram_mb, self.swap_mb)
    }
}

/// chamagne — Pentium II, 330 MHz, 512 MB RAM, 134 MB swap.
pub const CHAMAGNE: Machine = Machine {
    name: "chamagne",
    processor: "pentium II",
    mhz: 330.0,
    ram_mb: 512.0,
    swap_mb: 134.0,
};

/// cabestan — Pentium III, 500 MHz, 192 MB RAM, 400 MB swap.
pub const CABESTAN: Machine = Machine {
    name: "cabestan",
    processor: "pentium III",
    mhz: 500.0,
    ram_mb: 192.0,
    swap_mb: 400.0,
};

/// artimon — Pentium IV, 1.7 GHz, 512 MB RAM, 1024 MB swap.
pub const ARTIMON: Machine = Machine {
    name: "artimon",
    processor: "pentium IV",
    mhz: 1700.0,
    ram_mb: 512.0,
    swap_mb: 1024.0,
};

/// pulney — Xeon, 1.4 GHz, 256 MB RAM, 533 MB swap.
pub const PULNEY: Machine = Machine {
    name: "pulney",
    processor: "xeon",
    mhz: 1400.0,
    ram_mb: 256.0,
    swap_mb: 533.0,
};

/// valette — Pentium II, 400 MHz, 128 MB RAM, 126 MB swap.
pub const VALETTE: Machine = Machine {
    name: "valette",
    processor: "pentium II",
    mhz: 400.0,
    ram_mb: 128.0,
    swap_mb: 126.0,
};

/// spinnaker — Xeon, 2 GHz, 1 GB RAM, 2 GB swap.
pub const SPINNAKER: Machine = Machine {
    name: "spinnaker",
    processor: "xeon",
    mhz: 2000.0,
    ram_mb: 1024.0,
    swap_mb: 2048.0,
};

/// All six server machines of Table 2.
pub const ALL_SERVERS: [Machine; 6] = [CHAMAGNE, CABESTAN, ARTIMON, PULNEY, VALETTE, SPINNAKER];

/// The server set of the first experiment set (§5.1, matmul):
/// chamagne, cabestan, artimon, pulney — in Table 3's column order.
pub fn set1_servers() -> Vec<ServerSpec> {
    [CHAMAGNE, CABESTAN, ARTIMON, PULNEY]
        .iter()
        .map(Machine::spec)
        .collect()
}

/// The server set of the second experiment set (§5.2, waste-cpu):
/// valette, spinnaker, cabestan, artimon — in Table 4's column order.
pub fn set2_servers() -> Vec<ServerSpec> {
    [VALETTE, SPINNAKER, CABESTAN, ARTIMON]
        .iter()
        .map(Machine::spec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_spot_checks() {
        assert_eq!(CHAMAGNE.mhz, 330.0);
        assert_eq!(CHAMAGNE.ram_mb, 512.0);
        assert_eq!(CABESTAN.swap_mb, 400.0);
        assert_eq!(ARTIMON.mhz, 1700.0);
        assert_eq!(SPINNAKER.ram_mb, 1024.0);
        assert_eq!(VALETTE.swap_mb, 126.0);
    }

    #[test]
    fn experiment_sets_have_four_servers() {
        let s1 = set1_servers();
        assert_eq!(s1.len(), 4);
        assert_eq!(s1[0].name, "chamagne");
        assert_eq!(s1[3].name, "pulney");
        let s2 = set2_servers();
        assert_eq!(s2.len(), 4);
        assert_eq!(s2[0].name, "valette");
        assert_eq!(s2[1].name, "spinnaker");
    }

    #[test]
    fn spec_conversion_preserves_memory() {
        let spec = PULNEY.spec();
        assert_eq!(spec.total_mem_mb(), 256.0 + 533.0);
    }

    #[test]
    fn all_servers_distinct_names() {
        let mut names: Vec<&str> = ALL_SERVERS.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}

//! # cas-workload — the paper's workloads and testbed
//!
//! * [`testbed`] — the machines of Table 2 and the two server sets used in
//!   the experiments (§5.1 and §5.2).
//! * [`matmul`] — the first experiment set's tasks: square matrix
//!   multiplications of sizes 1200/1500/1800 with the measured per-server
//!   phase costs and memory needs of Table 3.
//! * [`wastecpu`] — the second set's tasks: the memory-free "waste-cpu"
//!   problem with parameters 200/400/600 and the costs of Table 4.
//! * [`metatask`] — metatask generation: N independent tasks, uniformly
//!   random type, inter-arrival gaps drawn from a Poisson (or exponential)
//!   distribution with a configurable mean, from a dedicated RNG stream.
//! * [`synthetic`] — parametric platform/workload families for sweeps and
//!   ablations beyond the paper's fixed testbed.
//! * [`churn`] — the farm lifecycle fault injector: deterministic
//!   per-server MTBF/MTTR renewal processes feeding the middleware's
//!   server join/leave/crash kernel events.
//! * [`trace`] — trace-driven production workloads: an object-safe
//!   [`Trace`](trace::Trace) source trait (CSV ingestion +
//!   fitted per-app generator) compiled onto a demand-ladder farm with
//!   per-task user classes.

pub mod churn;
pub mod matmul;
pub mod metatask;
pub mod synthetic;
pub mod testbed;
pub mod trace;
pub mod wastecpu;

pub use churn::{ChurnModel, ChurnProcess};
pub use metatask::{arrival_summary, ArrivalSummary, GapDistribution, MetataskSpec};
pub use testbed::Machine;
pub use trace::{
    AppProfile, CompiledTrace, CsvTrace, FittedTrace, FittedTraceSpec, Trace, TraceEntry,
    TraceError, TraceWorkload,
};

//! Offline shim for `crossbeam`, backed by `std::thread::scope`.
//!
//! Provides the `crossbeam::thread::scope` entry point the experiment
//! runner uses, with the crossbeam calling convention: the spawned closure
//! receives a scope handle (for nested spawns) and `scope` returns a
//! `Result` that is `Err` only when a worker panicked. `std`'s scoped
//! threads already propagate panics to the scope, so the `Err` arm is
//! unreachable in practice — panics resurface as panics, which satisfies
//! every caller that `.expect()`s the result.

pub mod thread {
    /// A handle for spawning scoped threads (crossbeam calling convention).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker; the closure receives the scope handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` inside a thread scope; all spawned workers are joined
    /// before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

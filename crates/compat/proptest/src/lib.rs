//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses, with
//! deterministic sampling and **no shrinking**: each `proptest!` test runs
//! a fixed number of cases (default 64, override with the `PROPTEST_CASES`
//! environment variable or `ProptestConfig::with_cases`) from a generator
//! seeded by the test's name, so failures are reproducible run to run.
//!
//! Supported surface:
//! * `proptest! { #[test] fn name(x in strategy, y: Type) { .. } }` with an
//!   optional leading `#![proptest_config(..)]`;
//! * `prop_compose!` for derived strategies;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`;
//! * range strategies over ints and floats, tuples of strategies,
//!   `Vec<Strategy>`, `proptest::collection::vec`, `proptest::option::of`,
//!   `proptest::bool::ANY`, and `Strategy::prop_map`.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Arbitrary, Strategy};
pub use test_runner::{ProptestConfig, SampleRng, TestCaseError};

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::SampleRng;
    use std::ops::Range;

    /// Accepted length specifications for [`vec`]: a range or an exact
    /// length (mirrors proptest's `SizeRange` conversions).
    pub trait IntoSizeRange {
        /// Converts to a half-open length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    /// Strategy for `Vec`s with a length drawn from `size` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over `Option`s.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::SampleRng;

    /// Strategy producing `Some` three times out of four.
    pub struct OptionStrategy<S>(S);

    /// Builds an [`OptionStrategy`].
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Strategies over `bool`s.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::SampleRng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut SampleRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Defines property tests (shim: fixed-case loop, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(stringify!($name), &__cfg, |__rng| {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::sample(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $var:ident : $ty:ty) => {
        let $var: $ty = $crate::strategy::Arbitrary::arbitrary($rng);
    };
    ($rng:ident; $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var: $ty = $crate::strategy::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Composes strategies into a derived strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($var:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::SampleRng| {
                $(let $var = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

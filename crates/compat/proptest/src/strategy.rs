//! The [`Strategy`] trait and the built-in strategies of the shim.

use crate::test_runner::SampleRng;
use std::ops::Range;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut SampleRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy defined by a closure (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut SampleRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut SampleRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        })*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SampleRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut SampleRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        })*
    };
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// A `Vec` of strategies samples each element (real proptest has the same
/// impl; used for fixed-length heterogeneously-parameterised vectors).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// `name: Type` parameters in `proptest!` draw from the type's canonical
/// strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut SampleRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut SampleRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SampleRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SampleRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}

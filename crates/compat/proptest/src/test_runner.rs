//! Case loop, configuration and failure reporting for the shim.

use std::fmt;

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The deterministic case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SampleRng {
    state: u64,
}

impl SampleRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        SampleRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `f` for every case, panicking (with the case number) on the first
/// failure. Seeds derive from the test name, so runs are reproducible.
pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, mut f: F)
where
    F: FnMut(&mut SampleRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for case in 0..cfg.cases {
        let mut rng = SampleRng::new(base ^ (u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D)));
        if let Err(e) = f(&mut rng) {
            panic!("proptest '{name}' failed at case {case}/{}: {e}", cfg.cases);
        }
    }
}

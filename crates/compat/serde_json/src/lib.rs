//! Offline JSON backend for the vendored serde shim.
//!
//! Implements the shim's `Serializer` over a growable `String`, producing
//! standard JSON: structs as objects, sequences as arrays, newtype structs
//! as their inner value, unit enum variants as strings, and struct enum
//! variants as `{"Variant": {...}}` — the same externally-tagged layout as
//! real `serde_json`.

use serde::ser::{SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};
use std::fmt;

/// Serialization error (unused in practice: the string sink cannot fail).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest roundtrip formatting, as real serde_json produces.
        let mut buf = format!("{v}");
        if !buf.contains('.') && !buf.contains('e') && !buf.contains("inf") {
            buf.push_str(".0");
        }
        out.push_str(&buf);
    } else {
        out.push_str("null");
    }
}

/// JSON serializer writing into a `String`.
struct JsonSer<'a> {
    out: &'a mut String,
    pretty: bool,
    indent: usize,
}

impl<'a> JsonSer<'a> {
    fn newline(&mut self, indent: usize) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..indent {
                self.out.push_str("  ");
            }
        }
    }
}

/// In-progress JSON array.
struct JsonSeq<'a> {
    out: &'a mut String,
    pretty: bool,
    indent: usize,
    first: bool,
}

/// In-progress JSON object.
struct JsonStruct<'a> {
    out: &'a mut String,
    pretty: bool,
    indent: usize,
    first: bool,
    /// When the object is an enum struct variant, close an extra brace.
    wrapped: bool,
}

impl<'a> Serializer for JsonSer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = JsonSeq<'a>;
    type SerializeStruct = JsonStruct<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        escape_into(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        escape_into(self.out, variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(JsonSer {
            out: self.out,
            pretty: false,
            indent: 0,
        })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeq<'a>, Error> {
        self.out.push('[');
        Ok(JsonSeq {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent,
            first: true,
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonStruct<'a>, Error> {
        self.out.push('{');
        Ok(JsonStruct {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent,
            first: true,
            wrapped: false,
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<JsonStruct<'a>, Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        self.out.push('{');
        Ok(JsonStruct {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent,
            first: true,
            wrapped: true,
        })
    }
}

impl SerializeSeq for JsonSeq<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let mut ser = JsonSer {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent + 1,
        };
        ser.newline(ser.indent);
        value.serialize(ser)
    }

    fn end(self) -> Result<(), Error> {
        if !self.first && self.pretty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push(']');
        Ok(())
    }
}

impl SerializeStruct for JsonStruct<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let mut ser = JsonSer {
            out: self.out,
            pretty: self.pretty,
            indent: self.indent + 1,
        };
        ser.newline(ser.indent);
        escape_into(ser.out, name);
        ser.out.push(':');
        if ser.pretty {
            ser.out.push(' ');
        }
        value.serialize(ser)
    }

    fn end(self) -> Result<(), Error> {
        if !self.first && self.pretty {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push('}');
        if self.wrapped {
            self.out.push('}');
        }
        Ok(())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSer {
        out: &mut out,
        pretty: false,
        indent: 0,
    })?;
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonSer {
        out: &mut out,
        pretty: true,
        indent: 0,
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn primitives_and_containers() {
        assert_eq!(super::to_string(&1u32).unwrap(), "1");
        assert_eq!(super::to_string(&-2i64).unwrap(), "-2");
        assert_eq!(super::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(super::to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(super::to_string(&true).unwrap(), "true");
        assert_eq!(super::to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(super::to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(super::to_string(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(
            super::to_string(&(1u8, "x".to_string())).unwrap(),
            "[1,\"x\"]"
        );
    }
}

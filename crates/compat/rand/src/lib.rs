//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually uses: the [`RngCore`] trait
//! (implemented by `cas_sim::RngStream` so `rand`-flavoured consumers can
//! drive our deterministic streams) and the [`Error`] type its fallible
//! method mentions. The trait contract matches `rand` 0.8.

use std::fmt;

/// Error type for fallible RNG operations (never produced by our streams).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in `rand` 0.8.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

//! Derive macros for the vendored serde shim.
//!
//! Hand-rolled (no `syn`/`quote`, which are unavailable offline): a small
//! token walker extracts the item's shape — named struct, tuple struct, or
//! enum with unit/tuple/struct variants — and the macros emit impls of the
//! shim's `Serialize`/`Deserialize` traits. Generic types are not supported
//! (none of the workspace's derived types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T, …);` — number of unnamed fields.
    TupleStruct(usize),
    /// `enum E { V1, V2 { a: T }, V3(T) }`.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Skips attribute tokens (`#[...]` / `#![...]`) starting at `i`; returns
/// the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if i < tokens.len() {
                    if let TokenTree::Punct(p2) = &tokens[i] {
                        if p2.as_char() == '!' {
                            i += 1;
                        }
                    }
                }
                // The bracketed attribute body.
                if i < tokens.len() {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token list on commas that sit at angle-bracket depth zero
/// (type arguments like `Vec<(A, B)>` or `Foo<K, V>` stay intact).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: i32 = 0;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Extracts the field names of a named-fields body.
fn named_field_names(body: &[TokenTree]) -> Vec<String> {
    split_top_commas(body)
        .into_iter()
        .filter_map(|field| {
            let mut i = skip_attrs(&field, 0);
            i = skip_vis(&field, i);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Parses the annotated item into `(type_name, shape)`.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported ({name})");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde_derive shim: expected item body for {name}, got {other:?}"),
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::NamedStruct(named_field_names(&body_tokens)),
        ("struct", Delimiter::Parenthesis) => {
            Shape::TupleStruct(split_top_commas(&body_tokens).len())
        }
        ("enum", Delimiter::Brace) => {
            let variants = split_top_commas(&body_tokens)
                .into_iter()
                .filter_map(|var| {
                    let mut j = skip_attrs(&var, 0);
                    j = skip_vis(&var, j);
                    let name = match var.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        _ => return None,
                    };
                    j += 1;
                    let fields = match var.get(j) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantFields::Named(named_field_names(&inner))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantFields::Tuple(split_top_commas(&inner).len())
                        }
                        _ => VariantFields::Unit,
                    };
                    Some(Variant { name, fields })
                })
                .collect();
            Shape::Enum(variants)
        }
        other => panic!("serde_derive shim: unsupported item shape {other:?}"),
    };
    (name, shape)
}

/// Derives the shim's `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut code = format!(
                "let mut st = ::serde::Serializer::serialize_struct(serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                code.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut st, \"{f}\", &self.{f})?;\n"
                ));
            }
            code.push_str("::serde::ser::SerializeStruct::end(st)");
            code
        }
        Shape::TupleStruct(1) => format!(
            "::serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)"
        ),
        Shape::TupleStruct(n) => {
            let mut code = format!(
                "let mut seq = ::serde::Serializer::serialize_seq(serializer, ::core::option::Option::Some({n}))?;\n"
            );
            for idx in 0..*n {
                code.push_str(&format!(
                    "::serde::ser::SerializeSeq::serialize_element(&mut seq, &self.{idx})?;\n"
                ));
            }
            code.push_str("::serde::ser::SerializeSeq::end(seq)");
            code
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vi, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(serializer, \"{name}\", {vi}u32, \"{vname}\"),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut arm = format!(
                            "{name}::{vname} {{ {pat} }} => {{ let mut st = ::serde::Serializer::serialize_struct_variant(serializer, \"{name}\", {vi}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStruct::serialize_field(&mut st, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStruct::end(st) }\n");
                        arms.push_str(&arm);
                    }
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(v0) => ::serde::Serializer::serialize_newtype_variant(serializer, \"{name}\", {vi}u32, \"{vname}\", v0),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("v{k}")).collect();
                        let pat = binds.join(", ");
                        let tuple = binds.join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => ::serde::Serializer::serialize_newtype_variant(serializer, \"{name}\", {vi}u32, \"{vname}\", &({tuple})),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let imp = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    imp.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derives the shim's `Deserialize` (a stub that reports "unsupported" at
/// runtime — nothing in the workspace deserialises derived types).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse_item(input);
    let imp = format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D) \
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                     \"vendored serde shim: Deserialize is not implemented for derived types\"))\n\
             }}\n\
         }}"
    );
    imp.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

//! Offline shim for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use.
//! Measurement is simple but honest: a short warm-up, then timed batches
//! until a wall-clock budget is spent, reporting the mean ns/iteration to
//! stdout. Statistical machinery (outlier detection, HTML reports) is out
//! of scope; relative comparisons between benches in one run remain
//! meaningful, which is what the repo's perf gates use.
//!
//! Environment knobs: `CRITERION_BUDGET_MS` (per-bench measure budget,
//! default 300 ms), `CRITERION_WARMUP_MS` (default 100 ms).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted, not acted on: the shim always
/// times per-batch and divides).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Declared throughput per iteration (echoed in the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// The measurement loop handle passed to bench closures.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    /// Mean nanoseconds per iteration of the last `iter*` call.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warmup: env_ms("CRITERION_WARMUP_MS", 100),
            budget: env_ms("CRITERION_BUDGET_MS", 300),
            ns_per_iter: f64::NAN,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            std::hint::black_box(routine());
        }
        // Measure.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        let total = start.elapsed();
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        // Measure, excluding setup time.
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        let wall = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
            if wall.elapsed() >= self.budget {
                break;
            }
        }
        self.ns_per_iter = measured.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(group: &str, id: &str, b: &Bencher) {
    let ns = b.ns_per_iter;
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    };
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "{name:<50} time: {value:>10.3} {unit}/iter  ({} iters)",
        b.iters
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (the shim adapts automatically).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&self.name, &id.id, &b);
        self
    }

    /// Benchmarks `f` under `id` with an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&self.name, &id.id, &b);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report("", name, &b);
        self
    }
}

/// Groups bench functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

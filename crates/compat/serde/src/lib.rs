//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! miniature serde: the [`Serialize`]/[`Deserialize`] traits with the real
//! crate's method signatures (the manual impls in `cas-sim` compile
//! unchanged), a data-model [`Serializer`] rich enough for the JSON backend
//! in the sibling `serde_json` shim, and re-exported derive macros from
//! `serde_derive`. Deserialization is supported only for the primitives the
//! workspace actually deserialises (`f64`); derived `Deserialize` impls
//! return an "unsupported" error rather than parsing.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization-side traits and errors.
pub mod ser {
    /// Trait all serializer error types implement.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Compound serializer for sequences.
    pub trait SerializeSeq {
        /// Successful result type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one element.
        fn serialize_element<T: super::Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for structs (and struct variants).
    pub trait SerializeStruct {
        /// Successful result type.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Serializes one named field.
        fn serialize_field<T: super::Serialize + ?Sized>(
            &mut self,
            name: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialization-side traits and errors.
pub mod de {
    /// Trait all deserializer error types implement.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A data format that can serialize the serde data model (JSON-oriented
/// subset: everything the workspace's types need).
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Sequence sub-serializer.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct as its inner value.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// A data format that can deserialize values (primitive subset).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
    /// Deserializes an `f64`.
    fn deserialize_f64(self) -> Result<f64, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    /// Deserializes a `String`.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

/// A value serializable into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value deserializable from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_f64()
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

macro_rules! impl_ser_int {
    ($($t:ty => $method:ident as $cast:ty),* $(,)?) => {
        $(impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        })*
    };
}

impl_ser_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<'a, S, T>(
    serializer: S,
    iter: impl Iterator<Item = &'a T>,
    len: usize,
) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
{
    use ser::SerializeSeq as _;
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), N)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use ser::SerializeSeq as _;
                let mut seq = serializer.serialize_seq(Some(0 $(+ { let _ = stringify!($name); 1 })+))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        })*
    };
}

impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

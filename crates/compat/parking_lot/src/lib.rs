//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Matches the subset of the `parking_lot` API the workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`) and an
//! [`RwLock`] with the same convention. Poisoning is swallowed, which is
//! exactly parking_lot's behaviour.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
